//! Accelerator algorithm identification (paper Section 4.1).
//!
//! The same algorithm can be implemented in idiosyncratic ways — CRC with
//! different widths, polynomials, bit orders; LPM with different trie
//! shapes — so Clara *learns* to recognize an algorithm's "inherent
//! logical workflow". This module:
//!
//! 1. generates a labeled training corpus of implementation **variants**
//!    (CRC, LPM, crypto kernels) plus non-accelerator distractors,
//!    standing in for the paper's 600+ Click elements and 9000+ crawled
//!    programs;
//! 2. extracts features via Sequential Pattern Extraction — frequent
//!    instruction-category n-grams with high support in a positive class
//!    and high confidence against the negatives — augmented with manual
//!    features (bitwise-operation density, pointer-chasing score);
//! 3. trains one binary SVM per accelerator (plus kNN/DT/GBDT/DNN/AutoML
//!    baselines for Figure 9) and labels new NFs' loop regions.

use std::collections::{BTreeMap, HashSet};

use nf_ir::{
    ApiCall, BinOp, BlockId, Cfg, FunctionBuilder, Inst, MemRef, Module, Operand, PktField, Pred,
    StateKind, Ty,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tinyml::gbdt::{GbdtClassifier, GbdtConfig};
use tinyml::knn::Knn;
use tinyml::mlp::{Loss, Mlp, MlpConfig};
use tinyml::svm::{MultiSvm, SvmConfig};
use tinyml::tree::{ClassificationTree, TreeConfig};

/// Accelerator classes recognized by the identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgoClass {
    /// No accelerator opportunity.
    None,
    /// CRC / checksum-style bitwise loop → CRC engine.
    Crc,
    /// Longest-prefix-match walk → LPM engine / flow cache.
    Lpm,
    /// Block-cipher/digest-style mixing rounds → crypto engine.
    Crypto,
}

impl AlgoClass {
    /// Dense label index.
    pub fn label(self) -> usize {
        match self {
            AlgoClass::None => 0,
            AlgoClass::Crc => 1,
            AlgoClass::Lpm => 2,
            AlgoClass::Crypto => 3,
        }
    }

    /// Inverse of [`AlgoClass::label`].
    pub fn from_label(l: usize) -> AlgoClass {
        match l {
            1 => AlgoClass::Crc,
            2 => AlgoClass::Lpm,
            3 => AlgoClass::Crypto,
            _ => AlgoClass::None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgoClass::None => "none",
            AlgoClass::Crc => "crc",
            AlgoClass::Lpm => "lpm",
            AlgoClass::Crypto => "crypto",
        }
    }

    /// Number of classes.
    pub const COUNT: usize = 4;
}

// ---------------------------------------------------------------------
// Variant corpus generation
// ---------------------------------------------------------------------

/// Generates one CRC implementation variant.
///
/// Variation axes: width, polynomial, bit order (reflected), chunk size
/// (bit-serial vs nibble), *streaming* input (load payload words inside
/// the loop, as packet-integrity CRCs do) and table-free multiply mixing.
pub fn crc_variant(rng: &mut StdRng) -> Module {
    if rng.gen_bool(0.33) {
        return crc_fold_variant(rng);
    }
    let width: u32 = *[8u32, 16, 32].get(rng.gen_range(0usize..3)).expect("in range");
    let poly = i64::from(rng.gen_range(1u32..1 << (width - 1)) | 1);
    let reflected = rng.gen_bool(0.5);
    let step: u32 = if rng.gen_bool(0.3) { 4 } else { 1 }; // Nibble or bit serial.
    let streaming = rng.gen_bool(0.4); // Data loaded inside the loop.
    let with_mul = rng.gen_bool(0.3); // Table-free multiply mix.
    let iters = i64::from((width / step.min(width)).max(4));
    let mask = ((1i64 << width) - 1).max(0xff);
    build_bit_loop_module(
        "crc_variant",
        rng,
        |fb, key, i, crc, _patches_val| {
            // The next input word: preloaded key or streamed payload.
            let data = if streaming {
                let w = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(4)));
                fb.bin(BinOp::Xor, Ty::I32, w, key)
            } else {
                key
            };
            // Extract the next input chunk.
            let sh = if step == 1 {
                fb.bin(BinOp::LShr, Ty::I32, data, i)
            } else {
                let i4 = fb.bin(BinOp::Shl, Ty::I32, i, Operand::imm(2));
                fb.bin(BinOp::LShr, Ty::I32, data, i4)
            };
            let chunk0 = fb.bin(BinOp::And, Ty::I32, sh, Operand::imm((1 << step) - 1));
            let chunk = if with_mul {
                let m = fb.bin(BinOp::Mul, Ty::I32, chunk0, Operand::imm(0x04c1));
                fb.bin(BinOp::And, Ty::I32, m, Operand::imm((1 << step) - 1))
            } else {
                chunk0
            };
            // Top bit(s) of the running CRC.
            let top = if reflected {
                fb.bin(BinOp::And, Ty::I32, crc, Operand::imm((1 << step) - 1))
            } else {
                let t = fb.bin(
                    BinOp::LShr,
                    Ty::I32,
                    crc,
                    Operand::imm(i64::from(width) - i64::from(step)),
                );
                fb.bin(BinOp::And, Ty::I32, t, Operand::imm((1 << step) - 1))
            };
            let fb_mix = fb.bin(BinOp::Xor, Ty::I32, top, chunk);
            let shifted = if reflected {
                fb.bin(BinOp::LShr, Ty::I32, crc, Operand::imm(i64::from(step)))
            } else {
                let s = fb.bin(BinOp::Shl, Ty::I32, crc, Operand::imm(i64::from(step)));
                fb.bin(BinOp::And, Ty::I32, s, Operand::imm(mask))
            };
            let xored = fb.bin(BinOp::Xor, Ty::I32, shifted, Operand::imm(poly));
            let taken = fb.icmp(Pred::Ne, Ty::I32, fb_mix, Operand::imm(0));
            fb.select(Ty::I32, taken, xored, shifted)
        },
        iters,
    )
}

/// A byte-folding CRC32 variant: `crc = (crc >> 8) ^ mix(crc ^ word)`
/// with a multiply-based mixing step (the table-free folding style found
/// in packet-integrity checks).
fn crc_fold_variant(rng: &mut StdRng) -> Module {
    let poly = i64::from(rng.gen_range(0x100u32..0xffff) | 1);
    let final_xor = i64::from(rng.gen::<u32>() | 1);
    let streaming = rng.gen_bool(0.6);
    let rounds = i64::from(rng.gen_range(6u8..16));
    build_bit_loop_module(
        "crc_fold",
        rng,
        move |fb, key, _i, crc, _| {
            let word = if streaming {
                let w = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(4)));
                fb.bin(BinOp::Xor, Ty::I32, w, key)
            } else {
                key
            };
            let x = fb.bin(BinOp::Xor, Ty::I32, crc, word);
            let s1 = fb.bin(BinOp::LShr, Ty::I32, x, Operand::imm(8));
            let a = fb.bin(BinOp::And, Ty::I32, x, Operand::imm(0xff));
            let m = fb.bin(BinOp::Mul, Ty::I32, a, Operand::imm(poly));
            let s2 = fb.bin(BinOp::Shl, Ty::I32, m, Operand::imm(4));
            let mix = fb.bin(BinOp::Xor, Ty::I32, s1, s2);
            fb.bin(BinOp::Xor, Ty::I32, mix, Operand::imm(final_xor))
        },
        rounds,
    )
}

/// Generates one LPM implementation variant.
pub fn lpm_variant(rng: &mut StdRng) -> Module {
    match rng.gen_range(0..3) {
        0 => trie_walk_module("lpm_trie1", rng, 1),
        1 => trie_walk_module("lpm_trie2", rng, 2),
        _ => range_scan_module("lpm_range", rng),
    }
}

/// Generates one crypto-kernel variant (cipher/digest mixing rounds).
pub fn crypto_variant(rng: &mut StdRng) -> Module {
    let rounds = i64::from(rng.gen_range(8u8..20));
    let k1 = i64::from(rng.gen::<u32>() | 1);
    let k2 = i64::from(rng.gen::<u32>() | 1);
    let rot = i64::from(rng.gen_range(3u8..13));
    build_bit_loop_module(
        "crypto_variant",
        rng,
        |fb, key, i, state, _| {
            // ARX round: add round key, rotate, xor with mixed input.
            let added = fb.bin(BinOp::Add, Ty::I32, state, Operand::imm(k1));
            let l = fb.bin(BinOp::Shl, Ty::I32, added, Operand::imm(rot));
            let r = fb.bin(BinOp::LShr, Ty::I32, added, Operand::imm(32 - rot));
            let rotated = fb.bin(BinOp::Or, Ty::I32, l, r);
            let mixed_in = fb.bin(BinOp::Mul, Ty::I32, key, Operand::imm(k2));
            let with_i = fb.bin(BinOp::Add, Ty::I32, mixed_in, i);
            fb.bin(BinOp::Xor, Ty::I32, rotated, with_i)
        },
        rounds,
    )
}

/// Builds a module whose core is a bounded loop folding `key` into an
/// accumulator via `round` (shared scaffold for CRC/crypto variants).
fn build_bit_loop_module(
    name: &str,
    rng: &mut StdRng,
    round: impl Fn(&mut FunctionBuilder, Operand, Operand, Operand, ()) -> Operand,
    iters: i64,
) -> Module {
    let mut m = Module::new(format!("{name}_{}", rng.gen::<u16>()));
    let g_out = m.add_global("result", StateKind::Scalar, 4, 1);
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let head = fb.block();
    let body = fb.block();
    let latch = fb.block();
    let after = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let a = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let b = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(0)));
    let key = fb.bin(BinOp::Xor, Ty::I32, a, b);
    fb.br(head);
    fb.switch_to(head);
    let i = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0)), (latch, Operand::imm(0))],
    );
    let acc = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0xffff)), (latch, Operand::imm(0))],
    );
    let more = fb.icmp(Pred::ULt, Ty::I32, i, Operand::imm(iters.max(2)));
    fb.cond_br(more, body, after);
    fb.switch_to(body);
    let acc_next = round(&mut fb, key, i, acc, ());
    fb.br(latch);
    fb.switch_to(latch);
    let i_next = fb.bin(BinOp::Add, Ty::I32, i, Operand::imm(1));
    fb.br(head);
    fb.switch_to(after);
    fb.store(Ty::I32, acc, MemRef::global(g_out));
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
    fb.ret(None);
    let mut f = fb.finish();
    click_model::elements::helpers::set_phi_incoming(&mut f, head, 0, latch, i_next);
    click_model::elements::helpers::set_phi_incoming(&mut f, head, 1, latch, acc_next);
    m.funcs.push(f);
    m
}

/// A trie-walk LPM variant with the given stride in bits.
fn trie_walk_module(name: &str, rng: &mut StdRng, stride: u8) -> Module {
    let track_best = rng.gen_bool(0.7);
    let best_in_mem = rng.gen_bool(0.5);
    let mut m = Module::new(format!("{name}_{}", rng.gen::<u16>()));
    let g_trie = m.add_global("nodes", StateKind::Trie, 16, 512);
    let g_out = m.add_global("nexthop", StateKind::Scalar, 4, 1);
    let depth_limit = i64::from(rng.gen_range(12u8..28));
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let head = fb.block();
    let body = fb.block();
    let latch = fb.block();
    let after = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    fb.br(head);
    fb.switch_to(head);
    let node = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0)), (latch, Operand::imm(0))],
    );
    let depth = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0)), (latch, Operand::imm(0))],
    );
    let more = fb.icmp(Pred::ULt, Ty::I32, depth, Operand::imm(depth_limit));
    fb.cond_br(more, body, after);
    fb.switch_to(body);
    // Some implementations track the longest valid prefix inside the walk
    // — either spilled to memory or carried in a register.
    if track_best {
        let valid = fb.load(Ty::I32, MemRef::global_at(g_trie, node, 12));
        let hop = fb.load(Ty::I32, MemRef::global_at(g_trie, node, 8));
        let has = fb.icmp(Pred::Ne, Ty::I32, valid, Operand::imm(0));
        let best = fb.select(Ty::I32, has, hop, Operand::imm(0));
        if best_in_mem {
            fb.store(Ty::I32, best, MemRef::global(g_out));
        }
    }
    // Pointer chasing: children loaded from the current node.
    let c0 = fb.load(Ty::I32, MemRef::global_at(g_trie, node, 0));
    let c1 = fb.load(Ty::I32, MemRef::global_at(g_trie, node, 4));
    let shift = fb.bin(BinOp::Sub, Ty::I32, Operand::imm(31), depth);
    let bit_w = fb.bin(BinOp::LShr, Ty::I32, dst, shift);
    let bit = fb.bin(BinOp::And, Ty::I32, bit_w, Operand::imm(1));
    let go1 = fb.icmp(Pred::Ne, Ty::I32, bit, Operand::imm(0));
    let child = fb.select(Ty::I32, go1, c1, c0);
    let dead = fb.icmp(Pred::Eq, Ty::I32, child, Operand::imm(0));
    let d_raw = fb.bin(BinOp::Add, Ty::I32, depth, Operand::imm(i64::from(stride)));
    let d_next = fb.select(Ty::I32, dead, Operand::imm(depth_limit), d_raw);
    fb.br(latch);
    fb.switch_to(latch);
    let node_next = fb.select(Ty::I32, dead, node, child);
    fb.br(head);
    fb.switch_to(after);
    let hop = fb.load(Ty::I32, MemRef::global_at(g_trie, node, 8));
    fb.store(Ty::I32, hop, MemRef::global(g_out));
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
    fb.ret(None);
    let mut f = fb.finish();
    click_model::elements::helpers::set_phi_incoming(&mut f, head, 0, latch, node_next);
    click_model::elements::helpers::set_phi_incoming(&mut f, head, 1, latch, d_next);
    m.funcs.push(f);
    m
}

/// A range-scan LPM variant (compare against sorted interval bounds).
fn range_scan_module(name: &str, rng: &mut StdRng) -> Module {
    let mut m = Module::new(format!("{name}_{}", rng.gen::<u16>()));
    let g_lo = m.add_global("range_lo", StateKind::Array, 8, 128);
    let g_out = m.add_global("nexthop", StateKind::Scalar, 4, 1);
    let rules = i64::from(rng.gen_range(16u8..120));
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let head = fb.block();
    let body = fb.block();
    let hit = fb.block();
    let latch = fb.block();
    let after = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    fb.br(head);
    fb.switch_to(head);
    let i = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0)), (latch, Operand::imm(0))],
    );
    let more = fb.icmp(Pred::ULt, Ty::I32, i, Operand::imm(rules));
    fb.cond_br(more, body, after);
    fb.switch_to(body);
    let lo = fb.load(Ty::I32, MemRef::global_at(g_lo, i, 0));
    let hi = fb.load(Ty::I32, MemRef::global_at(g_lo, i, 4));
    let ge = fb.icmp(Pred::UGe, Ty::I32, dst, lo);
    let le = fb.icmp(Pred::ULe, Ty::I32, dst, hi);
    let both = fb.select(Ty::I1, ge, le, Operand::imm(0));
    fb.cond_br(both, hit, latch);
    fb.switch_to(hit);
    fb.store(Ty::I32, i, MemRef::global(g_out));
    fb.br(latch);
    fb.switch_to(latch);
    let i_next = fb.bin(BinOp::Add, Ty::I32, i, Operand::imm(1));
    fb.br(head);
    fb.switch_to(after);
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
    fb.ret(None);
    let mut f = fb.finish();
    click_model::elements::helpers::set_phi_incoming(&mut f, head, 0, latch, i_next);
    m.funcs.push(f);
    m
}

/// Generates the labeled training corpus.
pub fn labeled_corpus(per_class: usize, seed: u64) -> Vec<(Module, AlgoClass)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..per_class {
        out.push((crc_variant(&mut rng), AlgoClass::Crc));
        out.push((lpm_variant(&mut rng), AlgoClass::Lpm));
        out.push((crypto_variant(&mut rng), AlgoClass::Crypto));
    }
    // Negatives: distribution-guided random programs (many contain loops
    // that are *not* accelerator algorithms).
    for m in nf_synth::synth_corpus(per_class * 2, true, seed ^ 0x9e37) {
        out.push((m, AlgoClass::None));
    }
    out
}

// ---------------------------------------------------------------------
// Feature extraction (SPE + manual features)
// ---------------------------------------------------------------------

fn category(inst: &Inst) -> char {
    match inst {
        Inst::Bin { op, .. } => match op {
            BinOp::Add | BinOp::Sub => 'a',
            BinOp::Mul => 'm',
            BinOp::UDiv | BinOp::URem => 'd',
            BinOp::And | BinOp::Or => 'b',
            BinOp::Xor => 'x',
            BinOp::Shl | BinOp::LShr | BinOp::AShr => 's',
        },
        Inst::Icmp { .. } => 'c',
        Inst::Cast { .. } => 'z',
        Inst::Select { .. } => 'e',
        Inst::Load { .. } => 'l',
        Inst::Store { .. } => 't',
        Inst::Call { .. } => 'k',
        Inst::Phi { .. } => 'p',
    }
}

/// The natural-loop regions of a module's handler, one block set per
/// back edge (merged when they share a header).
pub fn loop_regions(module: &Module) -> Vec<Vec<BlockId>> {
    let Some(func) = module.handler() else {
        return Vec::new();
    };
    let cfg = Cfg::build(func);
    let mut regions: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for (latch, header) in cfg.back_edges() {
        // Natural loop body: header + everything reaching the latch
        // without passing the header.
        let mut body: Vec<bool> = vec![false; cfg.len()];
        body[header.index()] = true;
        body[latch.index()] = true;
        let mut queue = std::collections::VecDeque::from([latch]);
        while let Some(b) = queue.pop_front() {
            for &p in &cfg.preds[b.index()] {
                if !body[p.index()] {
                    body[p.index()] = true;
                    queue.push_back(p);
                }
            }
        }
        let blocks: Vec<BlockId> = body
            .iter()
            .enumerate()
            .filter_map(|(i, &inb)| inb.then_some(BlockId(i as u32)))
            .collect();
        if let Some(existing) = regions.iter_mut().find(|(h, _)| *h == header) {
            for b in blocks {
                if !existing.1.contains(&b) {
                    existing.1.push(b);
                }
            }
        } else {
            regions.push((header, blocks));
        }
    }
    regions.into_iter().map(|(_, blocks)| blocks).collect()
}

/// The category string of a block region.
fn region_string(module: &Module, region: &[BlockId]) -> String {
    let Some(func) = module.handler() else {
        return String::new();
    };
    let set: HashSet<BlockId> = region.iter().copied().collect();
    let mut s = String::new();
    for b in &func.blocks {
        if !set.contains(&b.id) {
            continue;
        }
        for inst in &b.insts {
            s.push(category(inst));
        }
        s.push('|');
    }
    s
}

/// Manual features over a block region (or the whole function when the
/// region is empty).
fn manual_features(module: &Module, region: &[BlockId]) -> Vec<f64> {
    let Some(func) = module.handler() else {
        return vec![0.0; 8];
    };
    let loop_set: HashSet<BlockId> = region.iter().copied().collect();
    let use_loop = !loop_set.is_empty();

    let mut total = 0f64;
    let mut bitwise = 0f64;
    let mut xor = 0f64;
    let mut shift = 0f64;
    let mut loads = 0f64;
    let mut cmps = 0f64;
    let mut chase = 0f64;
    // Values derived from loads (pointer-chasing detection). Two passes so
    // loop-carried derivations (phi incomings defined later in block
    // order) are caught.
    let mut load_defs: HashSet<nf_ir::ValueId> = HashSet::new();
    let mut derived: HashSet<nf_ir::ValueId> = HashSet::new();
    for pass in 0..2 {
        let count = pass == 1;
        for b in &func.blocks {
            if use_loop && !loop_set.contains(&b.id) {
                continue;
            }
            for inst in &b.insts {
                if count {
                    total += 1.0;
                    match category(inst) {
                        'b' => bitwise += 1.0,
                        'x' => {
                            bitwise += 1.0;
                            xor += 1.0;
                        }
                        's' => shift += 1.0,
                        'c' => cmps += 1.0,
                        'l' => loads += 1.0,
                        _ => {}
                    }
                }
                let from_load = inst.operands().iter().any(|o| {
                    o.as_value()
                        .is_some_and(|v| load_defs.contains(&v) || derived.contains(&v))
                });
                if let Some(dst) = inst.dst() {
                    match inst {
                        Inst::Load { mem, .. } => {
                            load_defs.insert(dst);
                            // A load whose index is load-derived = chasing.
                            if count {
                                if let MemRef::Global {
                                    index: Some(idx), ..
                                } = mem
                                {
                                    if idx.as_value().is_some_and(|v| {
                                        load_defs.contains(&v) || derived.contains(&v)
                                    }) {
                                        chase += 1.0;
                                    }
                                }
                            }
                        }
                        _ if from_load => {
                            derived.insert(dst);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    let t = total.max(1.0);
    vec![
        bitwise / t,
        xor / t,
        shift / t,
        cmps / t,
        loads / t,
        chase / t.min(8.0),
        f64::from(u8::from(use_loop)),
        (total / 32.0).min(4.0),
    ]
}

/// Mined n-gram patterns with per-class discrimination power.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpePatterns {
    patterns: Vec<String>,
}

impl SpePatterns {
    /// Mines the top discriminative n-grams (n = 2..=4) from a labeled
    /// corpus: patterns with high support in some positive class and high
    /// confidence against the rest.
    pub fn mine(corpus: &[(Module, AlgoClass)], top_k: usize) -> SpePatterns {
        let mut per_class: BTreeMap<usize, BTreeMap<String, u32>> = BTreeMap::new();
        let mut class_sizes: BTreeMap<usize, u32> = BTreeMap::new();
        for (m, class) in corpus {
            for region in candidate_regions(m) {
                let s = region_string(m, &region);
                *class_sizes.entry(class.label()).or_insert(0) += 1;
                let grams = ngram_set(&s);
                let entry = per_class.entry(class.label()).or_default();
                for g in grams {
                    *entry.entry(g).or_insert(0) += 1;
                }
            }
        }
        let mut scored: Vec<(f64, String)> = Vec::new();
        for (&class, grams) in &per_class {
            if class == AlgoClass::None.label() {
                continue;
            }
            let n_pos = f64::from(*class_sizes.get(&class).unwrap_or(&1));
            for (g, &count) in grams {
                let support = f64::from(count) / n_pos;
                if support < 0.4 {
                    continue; // Must occur in many positive programs.
                }
                let neg: u32 = per_class
                    .iter()
                    .filter(|(&c, _)| c != class)
                    .map(|(_, other)| other.get(g).copied().unwrap_or(0))
                    .sum();
                let n_neg: u32 = class_sizes
                    .iter()
                    .filter(|(&c, _)| c != class)
                    .map(|(_, &n)| n)
                    .sum();
                let neg_rate = f64::from(neg) / f64::from(n_neg.max(1));
                let confidence = support / (support + neg_rate + 1e-9);
                scored.push((confidence * support, g.clone()));
            }
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let mut patterns: Vec<String> = Vec::new();
        for (_, g) in scored {
            if !patterns.contains(&g) {
                patterns.push(g);
            }
            if patterns.len() >= top_k {
                break;
            }
        }
        SpePatterns { patterns }
    }

    /// Number of mined patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when mining found nothing.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The feature vector of one block region of a module: mined-pattern
    /// frequencies plus the manual features.
    pub fn features(&self, module: &Module, region: &[BlockId]) -> Vec<f64> {
        let s = region_string(module, region);
        let len = s.len().max(1) as f64;
        let mut v: Vec<f64> = self
            .patterns
            .iter()
            .map(|p| count_occurrences(&s, p) as f64 / len * 16.0)
            .collect();
        v.extend(manual_features(module, region));
        v
    }
}

/// The classification units of a module: each natural loop, or the whole
/// handler when loopless.
pub fn candidate_regions(module: &Module) -> Vec<Vec<BlockId>> {
    let regions = loop_regions(module);
    if regions.is_empty() {
        let all: Vec<BlockId> = module
            .handler()
            .map(|f| f.blocks.iter().map(|b| b.id).collect())
            .unwrap_or_default();
        vec![all]
    } else {
        regions
    }
}

fn ngram_set(s: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    let bytes: Vec<char> = s.chars().collect();
    for n in 2..=4usize {
        for w in bytes.windows(n) {
            if w.contains(&'|') {
                continue;
            }
            out.insert(w.iter().collect());
        }
    }
    out
}

fn count_occurrences(s: &str, pat: &str) -> usize {
    if pat.is_empty() || s.len() < pat.len() {
        return 0;
    }
    let sb: Vec<char> = s.chars().collect();
    let pb: Vec<char> = pat.chars().collect();
    sb.windows(pb.len()).filter(|w| *w == pb.as_slice()).count()
}

// ---------------------------------------------------------------------
// Classifiers
// ---------------------------------------------------------------------

/// The classifier family (Figure 9's contenders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// Clara's SVM.
    ClaraSvm,
    /// k-nearest neighbours.
    Knn,
    /// Fully-connected network.
    Dnn,
    /// Single decision tree.
    Dt,
    /// Gradient-boosted trees.
    Gbdt,
    /// AutoML pipeline search.
    AutoMl,
}

impl ClassifierKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::ClaraSvm => "Clara (SVM)",
            ClassifierKind::Knn => "kNN",
            ClassifierKind::Dnn => "DNN",
            ClassifierKind::Dt => "DT",
            ClassifierKind::Gbdt => "GBDT",
            ClassifierKind::AutoMl => "AutoML",
        }
    }
}

#[derive(Serialize, Deserialize)]
enum ClfModel {
    Svm(MultiSvm),
    Knn(Knn),
    Dnn(Mlp),
    Dt(ClassificationTree),
    Gbdt(GbdtClassifier),
    AutoMl(tinyml::automl::AutoMlClassifier),
}

/// A trained algorithm identifier.
#[derive(Serialize, Deserialize)]
pub struct AlgoIdentifier {
    patterns: SpePatterns,
    standardizer: tinyml::dataset::Standardizer,
    model: ClfModel,
    kind: ClassifierKind,
}

impl AlgoIdentifier {
    /// Trains on a labeled corpus.
    ///
    /// # Panics
    ///
    /// Panics if `corpus` is empty.
    pub fn train(
        corpus: &[(Module, AlgoClass)],
        kind: ClassifierKind,
        seed: u64,
    ) -> AlgoIdentifier {
        assert!(!corpus.is_empty(), "empty corpus");
        let patterns = SpePatterns::mine(corpus, 24);
        let mut raw: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for (m, class) in corpus {
            for region in candidate_regions(m) {
                raw.push(patterns.features(m, &region));
                labels.push(class.label());
            }
        }
        let standardizer = tinyml::dataset::Standardizer::fit(&raw);
        let x = standardizer.transform(&raw);

        let model = match kind {
            ClassifierKind::ClaraSvm => ClfModel::Svm(MultiSvm::fit(
                &x,
                &labels,
                AlgoClass::COUNT,
                &SvmConfig {
                    lambda: 1e-4,
                    epochs: 80,
                    seed,
                },
            )),
            ClassifierKind::Knn => ClfModel::Knn(Knn::fit(
                &x,
                &labels.iter().map(|&l| l as f64).collect::<Vec<_>>(),
                3,
            )),
            ClassifierKind::Dnn => {
                let mut m = Mlp::new(MlpConfig {
                    inputs: x[0].len(),
                    hidden: vec![32, 16],
                    outputs: AlgoClass::COUNT,
                    loss: Loss::Softmax,
                    lr: 0.02,
                    epochs: 60,
                    seed,
                });
                m.fit(&x, &labels.iter().map(|&l| l as f64).collect::<Vec<_>>());
                ClfModel::Dnn(m)
            }
            ClassifierKind::Dt => ClfModel::Dt(ClassificationTree::fit(
                &x,
                &labels,
                AlgoClass::COUNT,
                &TreeConfig::default(),
            )),
            ClassifierKind::Gbdt => ClfModel::Gbdt(GbdtClassifier::fit(
                &x,
                &labels,
                AlgoClass::COUNT,
                &GbdtConfig {
                    rounds: 40,
                    ..GbdtConfig::default()
                },
            )),
            ClassifierKind::AutoMl => ClfModel::AutoMl(tinyml::automl::AutoMlClassifier::search(
                &x,
                &labels,
                AlgoClass::COUNT,
                8,
                seed,
            )),
        };
        AlgoIdentifier {
            patterns,
            standardizer,
            model,
            kind,
        }
    }

    /// The classifier family used.
    pub fn kind(&self) -> ClassifierKind {
        self.kind
    }

    /// The raw (un-standardized) feature vector of a module's first
    /// candidate region (for visualization, e.g. Figure 10a).
    pub fn features(&self, module: &Module) -> Vec<f64> {
        let regions = candidate_regions(module);
        self.patterns.features(module, &regions[0])
    }

    fn classify_region(&self, module: &Module, region: &[BlockId]) -> AlgoClass {
        let mut f = self.patterns.features(module, region);
        self.standardizer.apply(&mut f);
        let label = match &self.model {
            ClfModel::Svm(m) => m.classify(&f),
            ClfModel::Knn(m) => m.classify(&f),
            ClfModel::Dnn(m) => m.classify(&f),
            ClfModel::Dt(m) => m.classify(&f),
            ClfModel::Gbdt(m) => m.classify(&f),
            ClfModel::AutoMl(m) => m.classify(&f),
        };
        AlgoClass::from_label(label)
    }

    /// Classifies each loop region of a module; returns the accelerator
    /// class and the union of the positively classified regions (the
    /// blocks a Clara port would hand to the engine).
    pub fn identify(&self, module: &Module) -> (AlgoClass, Vec<BlockId>) {
        let mut found = AlgoClass::None;
        let mut blocks: Vec<BlockId> = Vec::new();
        for region in loop_regions(module) {
            let class = self.classify_region(module, &region);
            if class != AlgoClass::None && (found == AlgoClass::None || class == found) {
                found = class;
                for b in region {
                    if !blocks.contains(&b) {
                        blocks.push(b);
                    }
                }
            }
        }
        (found, blocks)
    }
}

/// Matches an NF module against the accelerator variant catalog.
///
/// Where [`AlgoIdentifier`] learns the *class* of an algorithm from its
/// loop structure, this is the exact complement: a static scan for the
/// defining constants of named catalog variants ([`clara_accel::CATALOG`]),
/// so a port can be told not just "this is CRC" but "this is `crc32c`,
/// which the target device's menu does (not) implement". Returns matches
/// in catalog order.
pub fn match_catalog(module: &Module) -> Vec<&'static clara_accel::Variant> {
    clara_accel::match_constants(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyml::metrics::micro_precision_recall;

    #[test]
    fn catalog_matching_names_reference_kernels() {
        for v in clara_accel::CATALOG.iter().filter(|v| v.poly != 0) {
            let m = clara_accel::reference_module(v);
            let hits = match_catalog(&m);
            assert!(
                hits.iter().any(|h| h.name == v.name),
                "{} not recovered from its reference kernel",
                v.name
            );
        }
        // aggcounter's bucket index is a golden-ratio multiply — the
        // matcher correctly names it hash-lookup3, and nothing else.
        let agg = click_model::elements::aggcounter().module;
        let hits: Vec<&str> = match_catalog(&agg).iter().map(|v| v.name).collect();
        assert_eq!(hits, ["hash-lookup3"]);
        // A header-rewriting NF with no algorithmic constants stays empty.
        let plain = click_model::elements::udpipencap().module;
        assert!(match_catalog(&plain).is_empty());
    }

    #[test]
    fn variant_modules_verify() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            for m in [
                crc_variant(&mut rng),
                lpm_variant(&mut rng),
                crypto_variant(&mut rng),
            ] {
                nf_ir::verify::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            }
        }
    }

    #[test]
    fn variants_execute_within_step_limits() {
        use trafgen::{Trace, WorkloadSpec};
        let mut rng = StdRng::seed_from_u64(2);
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 5, 1);
        for _ in 0..5 {
            for m in [
                crc_variant(&mut rng),
                lpm_variant(&mut rng),
                crypto_variant(&mut rng),
            ] {
                let mut machine = click_model::Machine::new(&m).expect("verifies");
                for p in &trace.pkts {
                    machine.run(p).unwrap_or_else(|e| panic!("{}: {e}", m.name));
                }
            }
        }
    }

    #[test]
    fn spe_mining_finds_crc_grams() {
        let corpus = labeled_corpus(20, 3);
        let pats = SpePatterns::mine(&corpus, 24);
        assert!(!pats.is_empty(), "no patterns mined");
        // CRC loops are xor/shift dense; some mined pattern must involve
        // 'x' or 's'.
        assert!(
            pats.patterns
                .iter()
                .any(|p| p.contains('x') || p.contains('s')),
            "{:?}",
            pats.patterns
        );
    }

    #[test]
    fn svm_identifies_held_out_variants() {
        let train = labeled_corpus(25, 4);
        let test = labeled_corpus(12, 5);
        let id = AlgoIdentifier::train(&train, ClassifierKind::ClaraSvm, 4);
        let truth: Vec<usize> = test.iter().map(|(_, c)| c.label()).collect();
        let preds: Vec<usize> = test.iter().map(|(m, _)| id.identify(m).0.label()).collect();
        let pr = micro_precision_recall(&truth, &preds, AlgoClass::None.label());
        assert!(pr.precision > 0.8, "precision {:.2}", pr.precision);
        assert!(pr.recall > 0.7, "recall {:.2}", pr.recall);
    }

    #[test]
    fn identifies_real_elements() {
        let train = labeled_corpus(25, 6);
        let id = AlgoIdentifier::train(&train, ClassifierKind::ClaraSvm, 6);
        let (c, region) = id.identify(&click_model::elements::cmsketch().module);
        assert_eq!(c, AlgoClass::Crc, "cmsketch should look like CRC");
        assert!(!region.is_empty());
        let (c, _) = id.identify(&click_model::elements::iplookup(256).module);
        assert_eq!(c, AlgoClass::Lpm, "iplookup should look like LPM");
        let (c, _) = id.identify(&click_model::elements::aggcounter().module);
        assert_eq!(c, AlgoClass::None, "aggcounter is no accelerator");
    }

    #[test]
    fn baselines_train() {
        let train = labeled_corpus(10, 7);
        for kind in [
            ClassifierKind::Knn,
            ClassifierKind::Dt,
            ClassifierKind::Gbdt,
        ] {
            let id = AlgoIdentifier::train(&train, kind, 7);
            let (c, _) = id.identify(&train[0].0);
            let _ = c;
        }
    }
}
