//! Memory access coalescing (paper Section 4.4).
//!
//! Clara computes, for each stateful variable, an *access vector* over
//! the NF's code blocks (how the variable's accesses distribute across
//! blocks), clusters variables with similar vectors via K-means, and
//! suggests packing each cluster contiguously so it can be fetched with
//! one coalesced access. Variables never accessed together (`good_pkt`
//! vs `bad_pkt` in the paper's tcpgen example) land in different
//! clusters.

use std::collections::BTreeMap;

use click_model::{Event, Machine};
use nf_ir::{GlobalId, Module, StateKind};
use nic_sim::{CoalescePlan, PortConfig};
use tinyml::kmeans::KMeans;
use trafgen::Trace;

/// A coalescing variable: a scalar global (the paper's "global variables").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Var(pub GlobalId);

/// Per-variable access vectors over code blocks.
#[derive(Debug, Clone)]
pub struct AccessVectors {
    /// The variables, in module order.
    pub vars: Vec<Var>,
    /// `vectors[v][b]` = normalized access share of variable `v` from
    /// block `b`.
    pub vectors: Vec<Vec<f64>>,
    /// Raw access totals per variable.
    pub totals: Vec<f64>,
}

/// Collects access vectors by running the NF over the trace on the host
/// (the paper's profiling step).
///
/// # Panics
///
/// Panics if the module fails verification.
pub fn access_vectors(module: &Module, trace: &Trace) -> AccessVectors {
    let vars: Vec<Var> = module
        .globals
        .iter()
        .filter(|g| g.kind == StateKind::Scalar)
        .map(|g| Var(g.id))
        .collect();
    let n_blocks = module.handler().map_or(0, |f| f.blocks.len());
    let index_of: BTreeMap<GlobalId, usize> =
        vars.iter().enumerate().map(|(i, v)| (v.0, i)).collect();

    let mut counts = vec![vec![0.0f64; n_blocks]; vars.len()];
    let mut machine = Machine::new(module).expect("module verifies");
    for pkt in &trace.pkts {
        let t = machine.run(pkt).expect("no step limit");
        let mut cur_block = 0usize;
        for ev in &t.events {
            match ev {
                Event::Block(b) => cur_block = b.index(),
                Event::State { global, .. } => {
                    if let Some(&vi) = index_of.get(global) {
                        counts[vi][cur_block] += 1.0;
                    }
                }
                _ => {}
            }
        }
    }
    let totals: Vec<f64> = counts.iter().map(|c| c.iter().sum()).collect();
    let vectors = counts
        .into_iter()
        .zip(totals.iter())
        .map(|(c, &t)| {
            if t <= 0.0 {
                c
            } else {
                c.into_iter().map(|x| x / t).collect()
            }
        })
        .collect();
    AccessVectors {
        vars,
        vectors,
        totals,
    }
}

/// Clara's K-means coalescing suggestion.
///
/// Clusters variables by access-vector similarity for each candidate
/// cluster count, then keeps the clustering that minimizes profiled
/// memory accesses (the paper's "cutoff threshold to determine a suitable
/// inter-cluster distance", chosen by validation).
pub fn suggest_coalescing(module: &Module, trace: &Trace, seed: u64) -> CoalescePlan {
    let av = access_vectors(module, trace);
    if av.vars.len() < 2 {
        return CoalescePlan::default();
    }
    let rec = nic_sim::record_workload(module, trace, |_| {});
    let cfg = nic_sim::NicConfig::default();
    let mut best = CoalescePlan::default();
    let mut best_cost = eval_recorded(module, &rec, &cfg, &best);
    for k in 1..=av.vars.len().min(6) {
        let km = KMeans::fit(&av.vectors, k, seed);
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (vi, &c) in km.assignment.iter().enumerate() {
            groups.entry(c).or_default().push(vi);
        }
        // Variables never accessed in the same blocks must not share a
        // pack (the paper's good_pkt/bad_pkt example), even where the
        // beat-granular cost model is indifferent to the extra bytes.
        let mut clusters: Vec<Vec<(GlobalId, u32)>> = Vec::new();
        for members in groups.values() {
            for comp in co_access_components(members, &av.vectors) {
                // Only multi-variable clusters are worth packing.
                if comp.len() >= 2 {
                    clusters.push(comp.into_iter().map(|vi| (av.vars[vi].0, 0)).collect());
                }
            }
        }
        let plan = CoalescePlan { clusters };
        let cost = eval_recorded(module, &rec, &cfg, &plan);
        if cost < best_cost {
            best_cost = cost;
            best = plan;
        }
    }
    best
}

/// Splits a candidate cluster into connected components of co-access:
/// two variables are linked when their access vectors overlap (they are
/// accessed from at least one common block).
fn co_access_components(members: &[usize], vectors: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let overlap = |a: usize, b: usize| {
        vectors[a]
            .iter()
            .zip(vectors[b].iter())
            .any(|(x, y)| *x > 0.0 && *y > 0.0)
    };
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut seen = vec![false; members.len()];
    for start in 0..members.len() {
        if seen[start] {
            continue;
        }
        let mut comp = vec![members[start]];
        seen[start] = true;
        let mut frontier = vec![start];
        while let Some(i) = frontier.pop() {
            for (j, seen_j) in seen.iter_mut().enumerate() {
                if !*seen_j && overlap(members[i], members[j]) {
                    *seen_j = true;
                    comp.push(members[j]);
                    frontier.push(j);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Expert emulation (Section 5.8): exhaustively tries every partition of
/// the hottest `k` variables and keeps the plan with the fewest profiled
/// memory accesses (a proxy for latency at saturation).
pub fn exhaustive_coalescing(
    module: &Module,
    trace: &Trace,
    cfg: &nic_sim::NicConfig,
    k: usize,
) -> CoalescePlan {
    let rec = nic_sim::record_workload(module, trace, |_| {});
    let av = access_vectors(module, trace);
    // Hottest k variables.
    let mut order: Vec<usize> = (0..av.vars.len()).collect();
    order.sort_by(|&a, &b| av.totals[b].partial_cmp(&av.totals[a]).expect("finite"));
    order.truncate(k.min(av.vars.len()));
    if order.len() < 2 {
        return CoalescePlan::default();
    }

    let mut best_plan = CoalescePlan::default();
    let mut best_cost = eval_recorded(module, &rec, cfg, &best_plan);
    // Enumerate set partitions via restricted-growth strings.
    let n = order.len();
    let mut rgs = vec![0usize; n];
    loop {
        let nclusters = rgs.iter().copied().max().unwrap_or(0) + 1;
        let mut clusters: Vec<Vec<(GlobalId, u32)>> = vec![Vec::new(); nclusters];
        for (pos, &vi) in order.iter().enumerate() {
            clusters[rgs[pos]].push((av.vars[vi].0, 0));
        }
        let plan = CoalescePlan {
            clusters: clusters.into_iter().filter(|c| c.len() >= 2).collect(),
        };
        let cost = eval_recorded(module, &rec, cfg, &plan);
        if cost < best_cost {
            best_cost = cost;
            best_plan = plan;
        }
        if !next_rgs(&mut rgs) {
            break;
        }
    }
    best_plan
}

/// Total profiled memory accesses per packet under a plan (lower = better
/// packing).
pub fn eval_plan(
    module: &Module,
    trace: &Trace,
    cfg: &nic_sim::NicConfig,
    plan: &CoalescePlan,
) -> f64 {
    let rec = nic_sim::record_workload(module, trace, |_| {});
    eval_recorded(module, &rec, cfg, plan)
}

/// [`eval_plan`] over pre-recorded interpreter traces (sweep-friendly).
pub fn eval_recorded(
    module: &Module,
    rec: &nic_sim::RecordedWorkload,
    cfg: &nic_sim::NicConfig,
    plan: &CoalescePlan,
) -> f64 {
    let port = PortConfig::naive().with_coalesce(plan.clone());
    let wp = nic_sim::profile_recorded(module, rec, &port, cfg);
    wp.channel_demand(cfg, &port).iter().sum()
}

/// Advances a restricted-growth string to the next set partition.
fn next_rgs(rgs: &mut [usize]) -> bool {
    let n = rgs.len();
    for i in (1..n).rev() {
        let max_prefix = rgs[..i].iter().copied().max().unwrap_or(0);
        if rgs[i] <= max_prefix {
            rgs[i] += 1;
            for r in rgs.iter_mut().skip(i + 1) {
                *r = 0;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafgen::WorkloadSpec;

    fn tcp_trace() -> Trace {
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        Trace::generate(&spec, 300, 1)
    }

    #[test]
    fn access_vectors_cover_all_scalars() {
        let e = click_model::elements::tcpgen();
        let av = access_vectors(&e.module, &tcp_trace());
        assert_eq!(av.vars.len(), 8); // tcpgen has eight scalar globals.
                                      // Co-accessed variables have similar vectors: sport/dport are
                                      // always written together in the SYN block.
        let sport = av.vars.iter().position(|v| v.0 == GlobalId(4)).unwrap();
        let dport = av.vars.iter().position(|v| v.0 == GlobalId(5)).unwrap();
        assert_eq!(av.vectors[sport], av.vectors[dport]);
    }

    #[test]
    fn kmeans_groups_coaccessed_variables() {
        let e = click_model::elements::tcpgen();
        let plan = suggest_coalescing(&e.module, &tcp_trace(), 2);
        assert!(!plan.clusters.is_empty(), "no clusters suggested");
        // sport (g4) and dport (g5) must share a cluster.
        let c_sport = plan.cluster_of(GlobalId(4), 0);
        let c_dport = plan.cluster_of(GlobalId(5), 0);
        assert!(c_sport.is_some());
        assert_eq!(c_sport, c_dport, "sport/dport split: {plan:?}");
        // good_pkt (g6) and bad_pkt (g7) are never accessed together; they
        // must not share a cluster.
        let c_good = plan.cluster_of(GlobalId(6), 0);
        let c_bad = plan.cluster_of(GlobalId(7), 0);
        if let (Some(a), Some(b)) = (c_good, c_bad) {
            assert_ne!(a, b, "good/bad packed together: {plan:?}");
        }
    }

    #[test]
    fn coalescing_reduces_channel_demand() {
        let e = click_model::elements::tcpgen();
        let trace = tcp_trace();
        let cfg = nic_sim::NicConfig::default();
        let none = eval_plan(&e.module, &trace, &cfg, &CoalescePlan::default());
        let plan = suggest_coalescing(&e.module, &trace, 3);
        let packed = eval_plan(&e.module, &trace, &cfg, &plan);
        assert!(packed < none, "packed {packed} vs none {none}");
    }

    #[test]
    fn expert_is_at_least_as_good_as_kmeans() {
        let e = click_model::elements::webtcp();
        let trace = tcp_trace();
        let cfg = nic_sim::NicConfig::default();
        let clara = suggest_coalescing(&e.module, &trace, 4);
        let clara_cost = eval_plan(&e.module, &trace, &cfg, &clara);
        let expert = exhaustive_coalescing(&e.module, &trace, &cfg, 7);
        let expert_cost = eval_plan(&e.module, &trace, &cfg, &expert);
        assert!(
            expert_cost <= clara_cost + 1e-9,
            "expert {expert_cost} vs clara {clara_cost}"
        );
    }

    #[test]
    fn rgs_enumerates_bell_number_of_partitions() {
        let mut rgs = vec![0usize; 4];
        let mut count = 1;
        while next_rgs(&mut rgs) {
            count += 1;
        }
        assert_eq!(count, 15); // Bell(4).
    }
}
