//! Error type for the Clara facade.
//!
//! The facade's public entry points ([`crate::Clara::analyze`],
//! [`crate::Clara::save`]/[`crate::Clara::load`],
//! [`crate::scaleout::ScaleoutModel::predict`]) never panic on user
//! input; every user-visible failure funnels into [`ClaraError`], which
//! the CLI binaries render and map to a nonzero exit code.

use std::fmt;
use std::path::PathBuf;

/// `Result` alias for facade operations.
pub type Result<T> = std::result::Result<T, ClaraError>;

/// Everything that can go wrong at the Clara facade boundary.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClaraError {
    /// A filesystem operation failed.
    Io {
        /// Path being read or written.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// A file or value had the wrong shape (bad JSON, missing fields).
    Format {
        /// Path of the offending file, when one is involved.
        path: Option<PathBuf>,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A model file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file.
        found: u64,
        /// Version this build reads and writes.
        supported: u64,
    },
    /// The module under analysis failed IR verification.
    InvalidModule {
        /// Module name.
        name: String,
        /// Verifier diagnostic.
        detail: String,
    },
    /// The workload trace has no packets to analyze.
    EmptyTrace,
    /// A trained model produced an unusable estimate.
    Prediction {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for ClaraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaraError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            ClaraError::Format { path: Some(p), detail } => {
                write!(f, "{}: {detail}", p.display())
            }
            ClaraError::Format { path: None, detail } => write!(f, "{detail}"),
            ClaraError::UnsupportedVersion { found, supported } => write!(
                f,
                "model format version {found} is not supported (this build reads version \
                 {supported}); re-train and re-save the model"
            ),
            ClaraError::InvalidModule { name, detail } => {
                write!(f, "module `{name}` failed verification: {detail}")
            }
            ClaraError::EmptyTrace => {
                write!(f, "workload trace is empty; generate at least one packet")
            }
            ClaraError::Prediction { detail } => write!(f, "prediction failed: {detail}"),
        }
    }
}

impl std::error::Error for ClaraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClaraError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
