//! Error type for the Clara facade.
//!
//! The facade's public entry points ([`crate::Clara::analyze`],
//! [`crate::Clara::save`]/[`crate::Clara::load`],
//! [`crate::scaleout::ScaleoutModel::predict`]) never panic on user
//! input; every user-visible failure funnels into [`ClaraError`], which
//! the CLI binaries render and map to a nonzero exit code.

use std::fmt;
use std::path::PathBuf;

/// `Result` alias for facade operations.
pub type Result<T> = std::result::Result<T, ClaraError>;

/// Everything that can go wrong at the Clara facade boundary.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClaraError {
    /// A filesystem operation failed.
    Io {
        /// Path being read or written.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// A file or value had the wrong shape (bad JSON, missing fields).
    Format {
        /// Path of the offending file, when one is involved.
        path: Option<PathBuf>,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A model file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the file.
        found: u64,
        /// Version this build reads and writes.
        supported: u64,
    },
    /// The module under analysis failed IR verification.
    InvalidModule {
        /// Module name.
        name: String,
        /// Verifier diagnostic.
        detail: String,
    },
    /// The workload trace has no packets to analyze.
    EmptyTrace,
    /// A trained model produced an unusable estimate.
    Prediction {
        /// Human-readable description.
        detail: String,
    },
    /// A persistent cache artifact failed verification (bad header,
    /// checksum mismatch, or unreadable body).
    ///
    /// The engine itself never surfaces this — corrupt artifacts fall
    /// back to recomputation silently — but explicit integrity checks
    /// ([`crate::engine::Engine::verify_disk_cache`], `clara
    /// cache-verify`) report what they found.
    CacheCorrupt {
        /// Path of the offending artifact.
        path: PathBuf,
        /// What failed to verify.
        detail: String,
    },
    /// The run completed with partial results: some engine tasks
    /// exhausted their retry budget (or hit a stage deadline) and were
    /// dropped from the output.
    Degraded {
        /// Tasks that failed permanently.
        failed: usize,
        /// Tasks the run attempted in total.
        total: usize,
    },
    /// The serving layer failed: the daemon could not bind its address,
    /// a client could not reach or keep a connection to the server, or
    /// the load generator saw unexpected (non-`overloaded`) request
    /// failures.
    Serve {
        /// Human-readable description.
        detail: String,
    },
    /// A device manifest failed schema validation (or a request named a
    /// backend that is not loaded). Carries the dotted path of the
    /// offending field, so a bad manifest names its own defect.
    Manifest {
        /// Where the manifest came from (file path or `builtin:<name>`).
        origin: String,
        /// Dotted path of the offending field (`memory[2].latency_cycles`).
        field: String,
        /// Human-readable reason.
        detail: String,
    },
    /// The quantization oracle (`clara quantcheck`) found NFs whose
    /// fixed-point predictions drifted past the pinned tolerance of the
    /// f64 reference (or whose suggested core counts flipped between
    /// precisions). A minimized repro is written under `artifact_dir`
    /// when one is configured.
    Quantization {
        /// Corpus NFs that violated the tolerance.
        violations: usize,
        /// Corpus NFs checked in total.
        checked: usize,
        /// First violation, human-readable.
        detail: String,
        /// Where the minimized repro was written, if anywhere.
        artifact_dir: Option<PathBuf>,
    },
    /// The placement planner (`clara place`, serve `op:"place"`) failed:
    /// the ILP instance is infeasible on the chosen device, the
    /// branch-and-bound search exhausted its node budget, or the request
    /// named an NF outside the corpus.
    Placement {
        /// What failed.
        kind: PlacementFailure,
        /// Human-readable description (names the NF and the device).
        detail: String,
    },
    /// The differential oracle (`clara difftest`) found seeds whose
    /// execution layers disagree (or whose raw/optimized profiles
    /// differ). Minimized repros are written under `artifact_dir` when
    /// one is configured.
    Divergence {
        /// Seeds that diverged.
        found: usize,
        /// Seeds checked in total.
        checked: usize,
        /// Where minimized repros were written, if anywhere.
        artifact_dir: Option<PathBuf>,
    },
}

/// Why a placement request failed ([`ClaraError::Placement`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementFailure {
    /// No feasible assignment exists: some structure fits in no memory
    /// level of the chosen device.
    Infeasible,
    /// The branch-and-bound search exhausted its node budget before
    /// proving optimality.
    SolverTimeout,
    /// The request named an NF that is not in the corpus.
    UnknownNf,
}

impl ClaraError {
    /// The CLI process exit code for this error.
    ///
    /// The mapping is part of the CLI contract (documented in `--help`):
    /// `2` usage errors, `3` degraded runs, `4` cache corruption, `5`
    /// I/O failures, `6` difftest divergences, `7` serve failures
    /// (bind/connect/unexpected request errors), `8` invalid device
    /// manifests or unknown backends, `9` quantization-tolerance
    /// violations, `10` placement failures (infeasible instance, solver
    /// timeout, unknown NF), `1` everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            ClaraError::Degraded { .. } => 3,
            ClaraError::CacheCorrupt { .. } => 4,
            ClaraError::Io { .. } => 5,
            ClaraError::Divergence { .. } => 6,
            ClaraError::Serve { .. } => 7,
            ClaraError::Manifest { .. } => 8,
            ClaraError::Quantization { .. } => 9,
            ClaraError::Placement { .. } => 10,
            _ => 1,
        }
    }
}

impl fmt::Display for ClaraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaraError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            ClaraError::Format { path: Some(p), detail } => {
                write!(f, "{}: {detail}", p.display())
            }
            ClaraError::Format { path: None, detail } => write!(f, "{detail}"),
            ClaraError::UnsupportedVersion { found, supported } => write!(
                f,
                "model format version {found} is not supported (this build reads versions \
                 up to {supported}); re-train and re-save the model"
            ),
            ClaraError::InvalidModule { name, detail } => {
                write!(f, "module `{name}` failed verification: {detail}")
            }
            ClaraError::EmptyTrace => {
                write!(f, "workload trace is empty; generate at least one packet")
            }
            ClaraError::Prediction { detail } => write!(f, "prediction failed: {detail}"),
            ClaraError::CacheCorrupt { path, detail } => {
                write!(f, "corrupt cache artifact {}: {detail}", path.display())
            }
            ClaraError::Degraded { failed, total } => write!(
                f,
                "run degraded: {failed} of {total} engine tasks failed permanently \
                 (see the run report's engine.task_failures counter)"
            ),
            ClaraError::Serve { detail } => write!(f, "serve: {detail}"),
            ClaraError::Manifest {
                origin,
                field,
                detail,
            } => {
                write!(f, "manifest {origin}: field `{field}`: {detail}")
            }
            ClaraError::Quantization {
                violations,
                checked,
                detail,
                artifact_dir,
            } => {
                write!(
                    f,
                    "quantcheck: {violations} of {checked} NF(s) exceeded the quantization \
                     tolerance; first: {detail}"
                )?;
                if let Some(dir) = artifact_dir {
                    write!(f, "; minimized repro in {}", dir.display())?;
                }
                Ok(())
            }
            ClaraError::Placement { kind, detail } => {
                let what = match kind {
                    PlacementFailure::Infeasible => "infeasible",
                    PlacementFailure::SolverTimeout => "solver timeout",
                    PlacementFailure::UnknownNf => "unknown NF",
                };
                write!(f, "placement ({what}): {detail}")
            }
            ClaraError::Divergence {
                found,
                checked,
                artifact_dir,
            } => {
                write!(f, "difftest: {found} of {checked} seed(s) diverged")?;
                if let Some(dir) = artifact_dir {
                    write!(f, "; minimized repros in {}", dir.display())?;
                }
                Ok(())
            }
        }
    }
}

impl From<clara_hal::ManifestError> for ClaraError {
    fn from(e: clara_hal::ManifestError) -> ClaraError {
        ClaraError::Manifest {
            origin: e.origin,
            field: e.field,
            detail: e.detail,
        }
    }
}

impl std::error::Error for ClaraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClaraError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let degraded = ClaraError::Degraded { failed: 1, total: 4 };
        let corrupt = ClaraError::CacheCorrupt {
            path: PathBuf::from("x.clc"),
            detail: "checksum mismatch".into(),
        };
        let io = ClaraError::Io {
            path: PathBuf::from("y"),
            source: std::io::Error::other("boom"),
        };
        let other = ClaraError::EmptyTrace;
        let diverged = ClaraError::Divergence {
            found: 2,
            checked: 500,
            artifact_dir: Some(PathBuf::from("artifacts")),
        };
        let serve = ClaraError::Serve {
            detail: "could not bind 127.0.0.1:80".into(),
        };
        assert_eq!(degraded.exit_code(), 3);
        assert_eq!(corrupt.exit_code(), 4);
        assert_eq!(io.exit_code(), 5);
        assert_eq!(other.exit_code(), 1);
        assert_eq!(diverged.exit_code(), 6);
        assert_eq!(serve.exit_code(), 7);
        let manifest = ClaraError::Manifest {
            origin: "dev.toml".into(),
            field: "cores.count".into(),
            detail: "a device needs at least one core".into(),
        };
        assert_eq!(manifest.exit_code(), 8);
        let quant = ClaraError::Quantization {
            violations: 1,
            checked: 27,
            detail: "cmsketch: block 3 drifted 0.9".into(),
            artifact_dir: Some(PathBuf::from("artifacts")),
        };
        assert_eq!(quant.exit_code(), 9);
        let placement = ClaraError::Placement {
            kind: PlacementFailure::Infeasible,
            detail: "mazunat: state exceeds tiny-device memory".into(),
        };
        assert_eq!(placement.exit_code(), 10);
        assert!(placement.to_string().contains("infeasible"));
        assert!(placement.to_string().contains("mazunat"));
        let timeout = ClaraError::Placement {
            kind: PlacementFailure::SolverTimeout,
            detail: "nat: budget of 1 nodes exhausted".into(),
        };
        assert_eq!(timeout.exit_code(), 10);
        assert!(timeout.to_string().contains("solver timeout"));
        assert!(quant.to_string().contains("1 of 27"));
        assert!(quant.to_string().contains("cmsketch"));
        assert!(manifest.to_string().contains("dev.toml"));
        assert!(manifest.to_string().contains("cores.count"));
        assert!(serve.to_string().contains("could not bind"));
        assert!(degraded.to_string().contains("1 of 4"));
        assert!(corrupt.to_string().contains("x.clc"));
        assert!(diverged.to_string().contains("2 of 500"));
        assert!(diverged.to_string().contains("artifacts"));
    }
}
