//! Deterministic parallel corpus-evaluation engine.
//!
//! Clara's training pipeline spends nearly all of its time in two
//! embarrassingly parallel fan-outs: compiling a synthesized corpus with
//! the vendor compiler (`nfcc`) and profiling a corpus × workload matrix
//! on the simulator (`nic-sim`). This module provides the shared
//! machinery all of them run through:
//!
//! - **a fixed worker pool** ([`par_map`]) built on `std::thread::scope`
//!   — no work-stealing runtime, no dependency. Worker count comes from
//!   the `CLARA_THREADS` environment variable, falling back to the
//!   machine's available parallelism; [`set_threads`] overrides both
//!   (used by tests to compare serial and parallel runs in-process);
//! - **a compile memo cache** ([`compile_cached`]): each distinct module
//!   is compiled at most once per process, keyed on its content
//!   fingerprint ([`nic_sim::module_fingerprint`]);
//! - **a profile cache** ([`profile_cached`]): setup-free profiling runs
//!   are memoized on `(module, trace, port, NIC config)` fingerprints,
//!   so `Clara::train`, `Clara::analyze`, and the bench binaries reuse
//!   each other's profiling work within a process;
//! - **[`EngineStats`]**: per-stage task counts and wall/CPU time plus
//!   cache hit rates, printed by the bench binaries.
//!
//! # Observability
//!
//! The engine is wired through [`clara_obs`]: every stage opens a span
//! (visible in [`clara_obs::RunReport`] when recording is enabled), the
//! cache hit/miss counts live in the `engine.compile_cache.*` /
//! `engine.profile_cache.*` counters (which [`EngineStats`] reads), and
//! each stage adds `engine.stage.<name>.tasks` plus volatile
//! `wall_ns`/`cpu_ns` and per-worker `engine.worker.<i>.tasks` counters.
//! With recording disabled the only residual cost is the always-on cache
//! counters — four relaxed atomic adds per cached call.
//!
//! # Determinism
//!
//! Parallel runs are bit-identical to serial runs. [`par_map`] assigns
//! tasks by index and returns results in input order, so the only
//! nondeterminism a worker pool could introduce — result ordering — is
//! removed; every task is a pure function of its input (vendor compiles
//! and profiling runs share no mutable state), and both caches key on
//! the full input content, so a cache hit returns exactly what
//! recomputation would. `tests/engine_determinism.rs` asserts the
//! bit-identity end to end.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use clara_obs as obs;
use nf_ir::Module;
use nfcc::NicModule;
use nic_sim::{module_fingerprint, NicConfig, PortConfig, WorkloadProfile};
use serde::Serialize;
use trafgen::{Trace, WorkloadSpec};

// ---- worker pool -------------------------------------------------------

/// `set_threads` override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count for this process, overriding `CLARA_THREADS`
/// and the detected parallelism. `0` removes the override.
///
/// The knob also drives [`tinyml::parallel`], the in-training pool the
/// LSTM uses for gradient lanes, so one setting governs all workers.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
    tinyml::parallel::set_threads(n);
}

/// The worker count the engine will use: [`set_threads`] override, else
/// `CLARA_THREADS`, else the machine's available parallelism.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("CLARA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on the worker pool, returning results in input
/// order (bit-identical to a serial map). `stage` labels the work in
/// [`EngineStats`].
pub fn par_map<T, R, F>(stage: &'static str, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let _span = obs::span!(stage, "tasks={}", items.len());
    // Workers attach their span context here so task-opened spans
    // (compiles, profiling runs, model fits) nest under this stage
    // exactly as they would on the calling thread.
    let span_parent = _span.handle();
    let started = Instant::now();
    let workers = threads().min(items.len().max(1));
    let busy_ns = AtomicU64::new(0);
    let timed = |i: usize, t: &T| {
        let t0 = Instant::now();
        let r = f(i, t);
        busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    };

    let out = if workers <= 1 {
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| timed(i, t)).collect();
        if obs::enabled() {
            obs::volatile_counter("engine.worker.0.tasks").add(items.len() as u64);
        }
        out
    } else {
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|s| {
            for w in 0..workers {
                let next = &next;
                let collected = &collected;
                let timed = &timed;
                s.spawn(move || {
                    let _ctx = obs::attach(span_parent);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, timed(i, item)));
                    }
                    if obs::enabled() {
                        obs::volatile_counter(&format!("engine.worker.{w}.tasks"))
                            .add(local.len() as u64);
                    }
                    collected.lock().expect("worker poisoned").extend(local);
                });
            }
        });
        let mut pairs = collected.into_inner().expect("worker poisoned");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    };

    record_stage(
        stage,
        items.len() as u64,
        started.elapsed(),
        Duration::from_nanos(busy_ns.into_inner()),
    );
    out
}

/// Times a serial stage under a label in [`EngineStats`], with a span.
pub fn time_stage<R>(stage: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = obs::span(stage);
    let started = Instant::now();
    let r = f();
    let wall = started.elapsed();
    record_stage(stage, 1, wall, wall);
    r
}

// ---- caches ------------------------------------------------------------

/// Each entry is a single-flight slot: the map lock is only held to look
/// the slot up, and the slot's `OnceLock` guarantees exactly one thread
/// runs the expensive computation while racing threads block on it —
/// which both avoids duplicate work and keeps the hit/miss counters a
/// pure function of the work requested (a property the deterministic
/// run-report test relies on).
type Slot<V> = Arc<OnceLock<V>>;
static COMPILE_CACHE: OnceLock<Mutex<HashMap<u64, Slot<Arc<NicModule>>>>> = OnceLock::new();
/// (module fp, trace fp, port fp, nic-config fp) → profile.
type ProfileKey = (u64, u64, u64, u64);
static PROFILE_CACHE: OnceLock<Mutex<HashMap<ProfileKey, Slot<WorkloadProfile>>>> = OnceLock::new();

/// Cache hit/miss counts live in the obs registry so run reports and
/// [`EngineStats`] read the same cells; the `OnceLock`-cached handles
/// make the steady-state cost one relaxed atomic add.
fn cache_counter(cell: &'static OnceLock<obs::Counter>, name: &'static str) -> &'static obs::Counter {
    cell.get_or_init(|| obs::counter(name))
}

static COMPILE_HITS: OnceLock<obs::Counter> = OnceLock::new();
static COMPILE_MISSES: OnceLock<obs::Counter> = OnceLock::new();
static PROFILE_HITS: OnceLock<obs::Counter> = OnceLock::new();
static PROFILE_MISSES: OnceLock<obs::Counter> = OnceLock::new();

fn compile_hits() -> &'static obs::Counter {
    cache_counter(&COMPILE_HITS, "engine.compile_cache.hits")
}
fn compile_misses() -> &'static obs::Counter {
    cache_counter(&COMPILE_MISSES, "engine.compile_cache.misses")
}
fn profile_hits() -> &'static obs::Counter {
    cache_counter(&PROFILE_HITS, "engine.profile_cache.hits")
}
fn profile_misses() -> &'static obs::Counter {
    cache_counter(&PROFILE_MISSES, "engine.profile_cache.misses")
}

/// Content fingerprint of any serializable value (for cache keys).
pub fn value_fingerprint<T: Serialize>(v: &T) -> u64 {
    let json = serde_json::to_string(v).unwrap_or_default();
    nic_sim::fingerprint_bytes(json.as_bytes())
}

/// Memoized [`nfcc::compile_module`]: each distinct module compiles
/// exactly once per process; repeat calls share the compiled result.
///
/// Compilation runs outside the cache lock, so concurrent misses on
/// *different* modules still compile in parallel. Threads racing on the
/// *same* module single-flight on the entry's `OnceLock`: one compiles
/// (counted as the miss), the rest block and count as hits.
pub fn compile_cached(module: &Module) -> Arc<NicModule> {
    let fp = module_fingerprint(module);
    let cache = COMPILE_CACHE.get_or_init(Mutex::default);
    let slot = {
        let mut guard = cache.lock().expect("cache poisoned");
        Arc::clone(guard.entry(fp).or_default())
    };
    let mut compiled = false;
    let nic = Arc::clone(slot.get_or_init(|| {
        compiled = true;
        nfcc::compile_module_shared(module)
    }));
    if compiled {
        compile_misses().incr();
    } else {
        compile_hits().incr();
    }
    nic
}

/// Memoized setup-free profiling: [`nic_sim::profile_workload`] with the
/// result cached on `(module, trace, port, cfg)` content fingerprints,
/// and the vendor compile shared through [`compile_cached`].
///
/// Only profiling runs with **no machine setup** are cacheable this way;
/// callers that install state first (LPM rules, firewall entries) must
/// keep calling [`nic_sim::profile_workload`] with their setup closure.
pub fn profile_cached(
    module: &Module,
    trace: &Trace,
    port: &PortConfig,
    cfg: &NicConfig,
) -> WorkloadProfile {
    let key = (
        module_fingerprint(module),
        value_fingerprint(trace),
        value_fingerprint(port),
        value_fingerprint(cfg),
    );
    let cache = PROFILE_CACHE.get_or_init(Mutex::default);
    let slot = {
        let mut guard = cache.lock().expect("cache poisoned");
        Arc::clone(guard.entry(key).or_default())
    };
    let mut profiled = false;
    let wp = slot
        .get_or_init(|| {
            profiled = true;
            let rec = nic_sim::record_workload(module, trace, |_| {});
            let nic = compile_cached(module);
            nic_sim::profile_recorded_compiled(module, &nic, &rec, port, cfg)
        })
        .clone();
    if profiled {
        profile_misses().incr();
    } else {
        profile_hits().incr();
    }
    wp
}

/// Drops both memo caches (tests use this to exercise cold paths).
pub fn clear_caches() {
    if let Some(c) = COMPILE_CACHE.get() {
        c.lock().expect("cache poisoned").clear();
    }
    if let Some(c) = PROFILE_CACHE.get() {
        c.lock().expect("cache poisoned").clear();
    }
}

// ---- corpus × workload matrix ------------------------------------------

/// Profiles every `(module, workload)` pair of a corpus × workload
/// matrix on the worker pool, returning profiles in row-major order
/// (module-major, workload-minor).
///
/// Each cell gets a deterministic trace seed `seed ^ (i * W + j)` (`i`
/// module index, `j` workload index, `W` workload count), so the matrix
/// is a pure function of `(modules, workloads, pkts, seed, port, cfg)`
/// regardless of worker count or schedule.
pub fn profile_matrix(
    modules: &[Module],
    workloads: &[WorkloadSpec],
    pkts: usize,
    seed: u64,
    port: &PortConfig,
    cfg: &NicConfig,
) -> Vec<WorkloadProfile> {
    let w = workloads.len();
    let cells: Vec<(usize, usize)> = (0..modules.len())
        .flat_map(|i| (0..w).map(move |j| (i, j)))
        .collect();
    par_map("profile-matrix", &cells, |_, &(i, j)| {
        let trace = Trace::generate(&workloads[j], pkts, seed ^ ((i * w + j) as u64));
        profile_cached(&modules[i], &trace, port, cfg)
    })
}

// ---- statistics --------------------------------------------------------

/// Accumulated cost of one engine stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Tasks executed under this label.
    pub tasks: u64,
    /// Wall-clock time spent in the stage.
    pub wall: Duration,
    /// Summed task execution time across workers (≈ CPU time; exceeds
    /// `wall` when the stage ran in parallel).
    pub cpu: Duration,
}

static STAGES: OnceLock<Mutex<BTreeMap<&'static str, StageStat>>> = OnceLock::new();

fn record_stage(stage: &'static str, tasks: u64, wall: Duration, cpu: Duration) {
    {
        let mut guard = STAGES
            .get_or_init(Mutex::default)
            .lock()
            .expect("stats poisoned");
        let s = guard.entry(stage).or_default();
        s.tasks += tasks;
        s.wall += wall;
        s.cpu += cpu;
    }
    // Mirror into the obs registry only while recording: the formatted
    // names allocate, and a disabled layer must stay allocation-free.
    if obs::enabled() {
        obs::counter(&format!("engine.stage.{stage}.tasks")).add(tasks);
        obs::volatile_counter(&format!("engine.stage.{stage}.wall_ns"))
            .add(wall.as_nanos() as u64);
        obs::volatile_counter(&format!("engine.stage.{stage}.cpu_ns")).add(cpu.as_nanos() as u64);
    }
}

/// A snapshot of the engine's counters, printable via `Display`.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Worker count the engine is configured for.
    pub threads: usize,
    /// Compile-cache hits.
    pub compile_hits: u64,
    /// Compile-cache misses (actual vendor compiles run).
    pub compile_misses: u64,
    /// Profile-cache hits.
    pub profile_hits: u64,
    /// Profile-cache misses (actual profiling runs).
    pub profile_misses: u64,
    /// Per-stage task counts and times, sorted by stage name.
    pub stages: Vec<(&'static str, StageStat)>,
}

impl EngineStats {
    /// Reads the current counters.
    pub fn snapshot() -> EngineStats {
        let stages = STAGES
            .get_or_init(Mutex::default)
            .lock()
            .expect("stats poisoned")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        EngineStats {
            threads: threads(),
            compile_hits: compile_hits().value(),
            compile_misses: compile_misses().value(),
            profile_hits: profile_hits().value(),
            profile_misses: profile_misses().value(),
            stages,
        }
    }

    /// Zeroes all counters and stage records (caches stay warm). This
    /// also resets the whole [`clara_obs`] registry — spans and every
    /// metric across the workspace — so one reset yields one clean run
    /// report.
    pub fn reset() {
        obs::reset();
        if let Some(s) = STAGES.get() {
            s.lock().expect("stats poisoned").clear();
        }
    }

    /// Total wall-clock time across stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|(_, s)| s.wall).sum()
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine: {} thread(s); compile cache {} hit / {} miss; profile cache {} hit / {} miss",
            self.threads,
            self.compile_hits,
            self.compile_misses,
            self.profile_hits,
            self.profile_misses
        )?;
        for (name, s) in &self.stages {
            writeln!(
                f,
                "  stage {name:<18} {:>6} tasks  wall {:>9.3?}  cpu {:>9.3?}",
                s.tasks, s.wall, s.cpu
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_order() {
        let items: Vec<u64> = (0..103).collect();
        set_threads(1);
        let serial = par_map("test-order", &items, |i, &x| x * 3 + i as u64);
        set_threads(4);
        let parallel = par_map("test-order", &items, |i, &x| x * 3 + i as u64);
        set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn compile_cache_hits_on_repeat() {
        let m = click_model::elements::udpcount().module;
        let a = compile_cached(&m);
        let before = compile_hits().value();
        let b = compile_cached(&m);
        assert!(compile_hits().value() > before);
        assert_eq!(a.handler().total_compute(), b.handler().total_compute());
    }

    #[test]
    fn profile_cache_returns_identical_profile() {
        let m = click_model::elements::udpcount().module;
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 60, 9);
        let port = PortConfig::naive();
        let cfg = NicConfig::default();
        let direct = nic_sim::profile_workload(&m, &trace, &port, &cfg, |_| {});
        let cold = profile_cached(&m, &trace, &port, &cfg);
        let warm = profile_cached(&m, &trace, &port, &cfg);
        assert_eq!(direct, cold);
        assert_eq!(cold, warm);
    }

    #[test]
    fn stats_snapshot_accumulates_stages() {
        par_map("test-stat", &[1, 2, 3], |_, x| x + 1);
        let stats = EngineStats::snapshot();
        let (_, s) = stats
            .stages
            .iter()
            .find(|(n, _)| *n == "test-stat")
            .expect("stage recorded");
        assert!(s.tasks >= 3);
    }
}
