//! Deterministic, fault-tolerant parallel corpus-evaluation engine.
//!
//! Clara's training pipeline spends nearly all of its time in two
//! embarrassingly parallel fan-outs: compiling a synthesized corpus with
//! the vendor compiler (`nfcc`) and profiling a corpus × workload matrix
//! on the simulator (`nic-sim`). This module provides the shared
//! machinery all of them run through:
//!
//! - **a fixed worker pool** ([`par_map`]/[`try_par_map`]) built on
//!   `std::thread::scope` — no work-stealing runtime, no dependency;
//! - **fault tolerance**: every task runs under `catch_unwind` with a
//!   bounded, deterministic retry schedule and an optional per-stage
//!   deadline; stages return the successes plus a structured
//!   [`TaskFailure`] list ([`StageOutcome`]) instead of aborting;
//! - **fault injection** ([`FaultPlan`], `CLARA_FAULTS`): seeded,
//!   deterministic panics/errors/stalls on chosen tasks — the test
//!   substrate for the machinery above;
//! - **two memo caches** behind the [`Engine`] handle
//!   ([`Engine::compile_cached`], [`Engine::profile_cached`]): each
//!   distinct module compiles at most once per process, and setup-free
//!   profiling runs are memoized on `(module, trace, port, NIC config)`
//!   fingerprints. With a cache directory configured
//!   ([`EngineOptions::cache_dir`] or `CLARA_CACHE_DIR`) both are layered
//!   over a persistent content-addressed artifact store (the `diskcache`
//!   module) that survives the process;
//! - **[`EngineStats`]**: per-stage task counts and wall/CPU time plus
//!   cache hit rates, printed by the bench binaries.
//!
//! # Configuration
//!
//! [`EngineOptions`] bundles the worker count, retry budget, stage
//! deadline, fault plan, and cache directory; [`configure`] installs a
//! process-wide default (done by `Clara::train` from
//! [`crate::ClaraConfig`]). Environment variables override the
//! configured options, and **this module is the workspace's only env-read
//! site** for engine knobs: `CLARA_THREADS` (worker count; beaten only by
//! the [`set_threads`] test override), `CLARA_FAULTS`
//! (`<seed>:<rate>[:<depth>]`), and `CLARA_CACHE_DIR`.
//!
//! # Determinism
//!
//! Parallel runs are bit-identical to serial runs. [`par_map`] assigns
//! tasks by index and returns results in input order; every task is a
//! pure function of its input, and all caches key on the full input
//! content, so a cache hit returns exactly what recomputation would —
//! including, for the disk cache, a replay of the deterministic
//! telemetry the original computation produced. Retries rerun the same
//! pure task, and fault-injection decisions hash `(seed, stage, index,
//! attempt)` — never wall-clock or scheduling — so a faulted run whose
//! failures stay within the retry budget is bit-identical to a fault-free
//! run. `tests/engine_determinism.rs` asserts all of this end to end.
//! The one escape hatch is [`EngineOptions::stage_deadline`]: deadline
//! expiry depends on wall-clock time, so runs that hit a deadline are
//! *not* guaranteed deterministic (they are guaranteed to terminate).

use std::collections::{BTreeMap, HashMap};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use clara_obs as obs;
use nf_ir::Module;
use nfcc::NicModule;
use nic_sim::{module_fingerprint, NicConfig, PortConfig, WorkloadProfile};
use serde::Serialize;
use trafgen::{Trace, WorkloadSpec};

use crate::diskcache::{self, DiskCache};
use crate::error::ClaraError;

pub use crate::diskcache::CacheVerifySummary;
pub use crate::faults::{FaultKind, FaultPlan};

// ---- options -----------------------------------------------------------

/// Engine behaviour knobs, installed process-wide with [`configure`] (or
/// per-run via [`crate::ClaraConfigBuilder::engine`]).
///
/// `#[non_exhaustive]`: construct via [`EngineOptions::builder`] or
/// `EngineOptions::default()` plus the builder.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct EngineOptions {
    /// Worker count for [`par_map`] stages. `None` = use the machine's
    /// available parallelism. Overridden by `CLARA_THREADS` and
    /// [`set_threads`].
    pub workers: Option<usize>,
    /// Extra attempts granted to a failing task before it is reported as
    /// a permanent [`TaskFailure`] (so a task runs at most
    /// `retries + 1` times). Retries are immediate — no backoff, no
    /// wall-clock randomness.
    pub retries: u32,
    /// Wall-clock budget for one stage. Attempts that would start after
    /// the stage has run this long fail with
    /// [`TaskError::DeadlineExceeded`] instead. `None` = no deadline.
    pub stage_deadline: Option<Duration>,
    /// Deterministic fault-injection plan. Overridden by `CLARA_FAULTS`.
    pub faults: Option<FaultPlan>,
    /// Directory for the persistent artifact cache. `None` disables it.
    /// Overridden by `CLARA_CACHE_DIR`.
    pub cache_dir: Option<PathBuf>,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            workers: None,
            retries: 2,
            stage_deadline: None,
            faults: None,
            cache_dir: None,
        }
    }
}

impl EngineOptions {
    /// Fluent builder seeded with the defaults.
    pub fn builder() -> EngineOptionsBuilder {
        EngineOptionsBuilder {
            opts: EngineOptions::default(),
        }
    }
}

/// Fluent builder for [`EngineOptions`].
#[derive(Debug, Clone, Default)]
pub struct EngineOptionsBuilder {
    opts: EngineOptions,
}

impl EngineOptionsBuilder {
    /// Sets the worker count (`None` behaviour: omit the call).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.opts.workers = Some(n);
        self
    }

    /// Sets the per-task retry budget.
    #[must_use]
    pub fn retries(mut self, n: u32) -> Self {
        self.opts.retries = n;
        self
    }

    /// Sets the per-stage wall-clock deadline.
    #[must_use]
    pub fn stage_deadline(mut self, d: Duration) -> Self {
        self.opts.stage_deadline = Some(d);
        self
    }

    /// Sets the fault-injection plan.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.opts.faults = Some(plan);
        self
    }

    /// Sets the persistent cache directory.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.opts.cache_dir = Some(dir.into());
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> EngineOptions {
        self.opts
    }
}

static CONFIGURED: OnceLock<Mutex<EngineOptions>> = OnceLock::new();

/// Installs `opts` as the process-wide engine defaults (environment
/// overrides still apply on top; see the module docs for precedence).
///
/// Also propagates the worker count to [`tinyml::parallel`] — the
/// in-training pool the LSTM uses for gradient lanes — unless a
/// [`set_threads`] override is active.
pub fn configure(opts: &EngineOptions) {
    *CONFIGURED
        .get_or_init(Mutex::default)
        .lock()
        .expect("options poisoned") = opts.clone();
    if THREAD_OVERRIDE.load(Ordering::SeqCst) == 0 {
        tinyml::parallel::set_threads(opts.workers.unwrap_or(0));
    }
}

/// The currently configured defaults (before environment overrides).
pub fn configured() -> EngineOptions {
    CONFIGURED
        .get_or_init(Mutex::default)
        .lock()
        .expect("options poisoned")
        .clone()
}

/// Options with every override applied — the engine's single source of
/// truth at execution time, resolved fresh per stage so env changes in
/// tests take effect immediately.
struct Resolved {
    workers: usize,
    retries: u32,
    deadline: Option<Duration>,
    faults: Option<FaultPlan>,
    cache: Option<DiskCache>,
}

fn resolved() -> Resolved {
    let opts = configured();
    let faults = std::env::var("CLARA_FAULTS")
        .ok()
        .and_then(|s| FaultPlan::parse(&s))
        .or(opts.faults);
    let cache = std::env::var("CLARA_CACHE_DIR")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .map(PathBuf::from)
        .or(opts.cache_dir)
        .map(DiskCache::new);
    Resolved {
        workers: threads(),
        retries: opts.retries,
        deadline: opts.stage_deadline,
        faults,
        cache,
    }
}

// ---- worker pool -------------------------------------------------------

/// `set_threads` override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count for this process, overriding `CLARA_THREADS`
/// and every configured option. `0` removes the override.
///
/// The knob also drives [`tinyml::parallel`], the in-training pool the
/// LSTM uses for gradient lanes, so one setting governs all workers.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
    tinyml::parallel::set_threads(n);
}

/// The worker count the engine will use: [`set_threads`] override, else
/// `CLARA_THREADS`, else [`EngineOptions::workers`], else the machine's
/// available parallelism.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("CLARA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    if let Some(n) = configured().workers {
        if n >= 1 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

// ---- task outcomes -----------------------------------------------------

/// Why one engine task failed permanently.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaskError {
    /// The task panicked (caught; the worker pool survives).
    Panicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A seeded [`FaultPlan`] injected this failure.
    Injected {
        /// What was injected.
        kind: FaultKind,
    },
    /// The stage's wall-clock deadline expired before the task could
    /// start (another) attempt.
    DeadlineExceeded,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked { detail } => write!(f, "task panicked: {detail}"),
            TaskError::Injected { kind } => write!(f, "injected fault: {kind}"),
            TaskError::DeadlineExceeded => write!(f, "stage deadline exceeded"),
        }
    }
}

/// One task that exhausted its retry budget (or its stage's deadline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Stage label the task ran under.
    pub stage: &'static str,
    /// Task index within the stage.
    pub index: usize,
    /// Attempts actually executed (0 when the deadline expired before
    /// the first attempt).
    pub attempts: u32,
    /// The final attempt's error.
    pub error: TaskError,
}

/// A stage's partial result: per-task successes (input order, `None`
/// where the task failed) plus the structured failure list.
#[derive(Debug)]
pub struct StageOutcome<R> {
    /// One entry per input item, in input order.
    pub results: Vec<Option<R>>,
    /// Permanent failures, in task-index order.
    pub failures: Vec<TaskFailure>,
}

impl<R> StageOutcome<R> {
    /// Number of tasks the stage attempted.
    pub fn total(&self) -> usize {
        self.results.len()
    }

    /// Whether every task succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The successful results, dropping failed slots.
    pub fn successes(self) -> Vec<R> {
        self.results.into_iter().flatten().collect()
    }
}

fn eng_ctr(cell: &'static OnceLock<obs::Counter>, name: &'static str) -> &'static obs::Counter {
    cell.get_or_init(|| obs::counter(name))
}

static RETRIES: OnceLock<obs::Counter> = OnceLock::new();
static TASK_FAILURES: OnceLock<obs::Counter> = OnceLock::new();
static FAULTS_INJECTED: OnceLock<obs::Counter> = OnceLock::new();

// Deterministic counters: retry and injection decisions are pure
// functions of (plan, stage, index, attempt), so their totals are
// worker-count invariant and belong in the deterministic run report.
fn retries_ctr() -> &'static obs::Counter {
    eng_ctr(&RETRIES, "engine.retries")
}
fn task_failures_ctr() -> &'static obs::Counter {
    eng_ctr(&TASK_FAILURES, "engine.task_failures")
}
fn faults_injected_ctr() -> &'static obs::Counter {
    eng_ctr(&FAULTS_INJECTED, "engine.faults_injected")
}

/// Registers the fault-tolerance counters up front so they appear (as
/// zeros) in every run report, faulted or not — keeping report shapes
/// identical across runs.
fn touch_fault_counters() {
    retries_ctr();
    task_failures_ctr();
    faults_injected_ctr();
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one task with panic isolation, fault injection, the retry
/// schedule, and the stage deadline. `started` is the stage's start
/// instant (deadlines are per stage, not per task).
fn run_task<R>(
    stage: &'static str,
    index: usize,
    started: Instant,
    res: &Resolved,
    f: impl Fn() -> R,
) -> Result<R, TaskFailure> {
    let mut attempt: u32 = 0;
    loop {
        if let Some(deadline) = res.deadline {
            if started.elapsed() >= deadline {
                task_failures_ctr().incr();
                return Err(TaskFailure {
                    stage,
                    index,
                    attempts: attempt,
                    error: TaskError::DeadlineExceeded,
                });
            }
        }
        let injected = res
            .faults
            .as_ref()
            .and_then(|p| p.decide(stage, index, attempt));
        if injected.is_some() {
            faults_injected_ctr().incr();
        }
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            match injected {
                Some(FaultKind::Panic) => {
                    std::panic::panic_any(crate::faults::InjectedPanic);
                }
                Some(FaultKind::Error) => {
                    return Err(TaskError::Injected {
                        kind: FaultKind::Error,
                    })
                }
                Some(FaultKind::Stall) => std::thread::sleep(Duration::from_millis(
                    res.faults.as_ref().map_or(0, |p| p.stall_ms),
                )),
                None => {}
            }
            Ok(f())
        }));
        let error = match outcome {
            Ok(Ok(r)) => return Ok(r),
            Ok(Err(e)) => e,
            Err(payload) => {
                if payload.downcast_ref::<crate::faults::InjectedPanic>().is_some() {
                    TaskError::Injected {
                        kind: FaultKind::Panic,
                    }
                } else {
                    TaskError::Panicked {
                        detail: panic_detail(payload.as_ref()),
                    }
                }
            }
        };
        if attempt < res.retries {
            attempt += 1;
            retries_ctr().incr();
            continue;
        }
        task_failures_ctr().incr();
        return Err(TaskFailure {
            stage,
            index,
            attempts: attempt + 1,
            error,
        });
    }
}

/// Maps `f` over `items` on the worker pool with full fault tolerance,
/// returning a [`StageOutcome`] (successes in input order plus the
/// failure list). Bit-identical to a serial map for the tasks that
/// succeed.
pub fn try_par_map<T, R, F>(stage: &'static str, items: &[T], f: F) -> StageOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(stage, items, &f, &resolved())
}

fn par_map_with<T, R, F>(stage: &'static str, items: &[T], f: &F, res: &Resolved) -> StageOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if res.faults.is_some() {
        crate::faults::install_quiet_hook();
    }
    touch_fault_counters();
    let _span = obs::span!(stage, "tasks={}", items.len());
    // Workers attach their span context here so task-opened spans
    // (compiles, profiling runs, model fits) nest under this stage
    // exactly as they would on the calling thread.
    let span_parent = _span.handle();
    let started = Instant::now();
    let workers = res.workers.min(items.len().max(1));
    let busy_ns = AtomicU64::new(0);
    let run_one = |i: usize, t: &T| -> Result<R, TaskFailure> {
        let t0 = Instant::now();
        let r = run_task(stage, i, started, res, || f(i, t));
        busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    };

    let pairs: Vec<(usize, Result<R, TaskFailure>)> = if workers <= 1 {
        let out = items
            .iter()
            .enumerate()
            .map(|(i, t)| (i, run_one(i, t)))
            .collect();
        if obs::enabled() {
            obs::volatile_counter("engine.worker.0.tasks").add(items.len() as u64);
        }
        out
    } else {
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<R, TaskFailure>)>> =
            Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|s| {
            for w in 0..workers {
                let next = &next;
                let collected = &collected;
                let run_one = &run_one;
                s.spawn(move || {
                    let _ctx = obs::attach(span_parent);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, run_one(i, item)));
                    }
                    if obs::enabled() {
                        obs::volatile_counter(&format!("engine.worker.{w}.tasks"))
                            .add(local.len() as u64);
                    }
                    collected.lock().expect("worker poisoned").extend(local);
                });
            }
        });
        let mut pairs = collected.into_inner().expect("worker poisoned");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs
    };

    let mut results = Vec::with_capacity(items.len());
    let mut failures = Vec::new();
    for (_, r) in pairs {
        match r {
            Ok(v) => results.push(Some(v)),
            Err(failure) => {
                results.push(None);
                failures.push(failure);
            }
        }
    }

    record_stage(
        stage,
        items.len() as u64,
        started.elapsed(),
        Duration::from_nanos(busy_ns.into_inner()),
    );
    StageOutcome { results, failures }
}

/// Maps `f` over `items` on the worker pool, returning results in input
/// order (bit-identical to a serial map). `stage` labels the work in
/// [`EngineStats`].
///
/// # Panics
///
/// Panics if any task fails permanently (exhausts its retry budget).
/// Pipelines that must survive partial failure use [`try_par_map`].
pub fn par_map<T, R, F>(stage: &'static str, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let out = try_par_map(stage, items, f);
    assert!(
        out.failures.is_empty(),
        "stage `{stage}`: {} of {} task(s) failed permanently; first: {}",
        out.failures.len(),
        out.results.len(),
        out.failures[0].error
    );
    out.results.into_iter().map(|r| r.expect("complete")).collect()
}

/// Times a serial stage under a label in [`EngineStats`], with a span.
/// No fault machinery: the closure runs exactly once on this thread.
pub fn time_stage<R>(stage: &'static str, f: impl FnOnce() -> R) -> R {
    let _span = obs::span(stage);
    let started = Instant::now();
    let r = f();
    let wall = started.elapsed();
    record_stage(stage, 1, wall, wall);
    r
}

/// Fault-tolerant [`time_stage`]: runs `f` as a single protected task
/// (panic isolation, injection, retries, deadline). Requires `Fn`
/// because a faulted attempt reruns the closure.
///
/// # Errors
///
/// Returns the [`TaskFailure`] when the stage exhausts its retry budget
/// or deadline.
pub fn try_time_stage<R>(stage: &'static str, f: impl Fn() -> R) -> Result<R, TaskFailure> {
    let res = resolved();
    if res.faults.is_some() {
        crate::faults::install_quiet_hook();
    }
    touch_fault_counters();
    let _span = obs::span(stage);
    let started = Instant::now();
    let r = run_task(stage, 0, started, &res, &f);
    let wall = started.elapsed();
    record_stage(stage, 1, wall, wall);
    r
}

// ---- caches ------------------------------------------------------------

/// Each entry is a single-flight slot: the map lock is only held to look
/// the slot up, and the slot's `OnceLock` guarantees exactly one thread
/// runs the expensive computation while racing threads block on it —
/// which both avoids duplicate work and keeps the hit/miss counters a
/// pure function of the work requested (a property the deterministic
/// run-report test relies on). A panicked computation (e.g. an injected
/// fault) leaves the slot uninitialized, so the retry recomputes cleanly.
type Slot<V> = Arc<OnceLock<V>>;
static COMPILE_CACHE: OnceLock<Mutex<HashMap<u64, Slot<Arc<NicModule>>>>> = OnceLock::new();
/// (module fp, trace fp, port fp, nic-config fp, backend fp) → profile.
///
/// The backend fingerprint is the device-manifest component: callers
/// profiling through a HAL backend pass its manifest fingerprint, and
/// the legacy cfg-only surface passes the cfg fingerprint again. Either
/// way, two devices never share a cache entry — in memory or on disk.
type ProfileKey = (u64, u64, u64, u64, u64);
static PROFILE_CACHE: OnceLock<Mutex<HashMap<ProfileKey, Slot<WorkloadProfile>>>> = OnceLock::new();

static COMPILE_HITS: OnceLock<obs::Counter> = OnceLock::new();
static COMPILE_MISSES: OnceLock<obs::Counter> = OnceLock::new();
static PROFILE_HITS: OnceLock<obs::Counter> = OnceLock::new();
static PROFILE_MISSES: OnceLock<obs::Counter> = OnceLock::new();

fn compile_hits() -> &'static obs::Counter {
    eng_ctr(&COMPILE_HITS, "engine.compile_cache.hits")
}
fn compile_misses() -> &'static obs::Counter {
    eng_ctr(&COMPILE_MISSES, "engine.compile_cache.misses")
}
fn profile_hits() -> &'static obs::Counter {
    eng_ctr(&PROFILE_HITS, "engine.profile_cache.hits")
}
fn profile_misses() -> &'static obs::Counter {
    eng_ctr(&PROFILE_MISSES, "engine.profile_cache.misses")
}

/// Content fingerprint of any serializable value (for cache keys).
pub fn value_fingerprint<T: Serialize>(v: &T) -> u64 {
    let json = serde_json::to_string(v).unwrap_or_default();
    nic_sim::fingerprint_bytes(json.as_bytes())
}

/// Handle on the process-global engine: the cache surface plus stats and
/// integrity checks. The handle is zero-sized — it exists so the cache
/// API has a receiver that can grow state later without another surface
/// change — and honours whatever [`configure`] and the environment
/// overrides say at each call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine {
    _priv: (),
}

impl Engine {
    /// A handle on the process-global engine.
    pub fn new() -> Engine {
        Engine { _priv: () }
    }

    /// Memoized [`nfcc::compile_module`]: each distinct module compiles
    /// exactly once per process; repeat calls share the compiled result,
    /// and with a cache directory configured the compiled module
    /// persists across processes.
    ///
    /// Compilation runs outside the cache lock, so concurrent misses on
    /// *different* modules still compile in parallel. Threads racing on
    /// the *same* module single-flight on the entry's `OnceLock`: one
    /// compiles (counted as the miss), the rest block and count as hits.
    pub fn compile_cached(&self, module: &Module) -> Arc<NicModule> {
        compile_cached_impl(module, &resolved())
    }

    /// Memoized setup-free profiling: [`nic_sim::profile_workload`] with
    /// the result cached on `(module, trace, port, cfg)` content
    /// fingerprints (in-process and, when configured, on disk), and the
    /// vendor compile shared through [`Engine::compile_cached`].
    ///
    /// Only profiling runs with **no machine setup** are cacheable this
    /// way; callers that install state first (LPM rules, firewall
    /// entries) must keep calling [`nic_sim::profile_workload`] with
    /// their setup closure.
    pub fn profile_cached(
        &self,
        module: &Module,
        trace: &Trace,
        port: &PortConfig,
        cfg: &NicConfig,
    ) -> WorkloadProfile {
        let backend_fp = value_fingerprint(cfg);
        profile_cached_impl(module, trace, port, cfg, backend_fp, &resolved())
    }

    /// [`Engine::profile_cached`] for a specific device backend: the
    /// cache key incorporates `backend_fp` (a HAL manifest fingerprint),
    /// so the disk cache never serves one device's profile to another —
    /// even for devices whose lowered `NicConfig`s happen to collide.
    pub fn profile_cached_for(
        &self,
        module: &Module,
        trace: &Trace,
        port: &PortConfig,
        cfg: &NicConfig,
        backend_fp: u64,
    ) -> WorkloadProfile {
        profile_cached_impl(module, trace, port, cfg, backend_fp, &resolved())
    }

    /// Drops both in-process memo caches (tests use this to exercise
    /// cold paths). The persistent disk cache, if configured, is left
    /// intact — delete the directory to clear it.
    pub fn clear_caches(&self) {
        if let Some(c) = COMPILE_CACHE.get() {
            c.lock().expect("cache poisoned").clear();
        }
        if let Some(c) = PROFILE_CACHE.get() {
            c.lock().expect("cache poisoned").clear();
        }
    }

    /// Reads the current [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        EngineStats::snapshot()
    }

    /// The configured defaults this handle operates under (environment
    /// overrides are applied per call, not reflected here).
    pub fn options(&self) -> EngineOptions {
        configured()
    }

    /// Checks every artifact in the resolved cache directory against its
    /// header and checksum. Returns `Ok(None)` when no cache directory
    /// is configured.
    ///
    /// # Errors
    ///
    /// Returns [`ClaraError::Io`] when the directory exists but cannot
    /// be read.
    pub fn verify_disk_cache(&self) -> Result<Option<CacheVerifySummary>, ClaraError> {
        match resolved().cache {
            Some(dc) => dc.verify().map(Some),
            None => Ok(None),
        }
    }
}

fn compile_cached_impl(module: &Module, res: &Resolved) -> Arc<NicModule> {
    let fp = module_fingerprint(module);
    let cache = COMPILE_CACHE.get_or_init(Mutex::default);
    let slot = {
        let mut guard = cache.lock().expect("cache poisoned");
        Arc::clone(guard.entry(fp).or_default())
    };
    let mut compiled = false;
    let nic = Arc::clone(slot.get_or_init(|| {
        compiled = true;
        compile_artifact(module, fp, res.cache.as_ref())
    }));
    if compiled {
        compile_misses().incr();
    } else {
        compile_hits().incr();
    }
    nic
}

/// The compile path below the in-process slot: consult the disk cache,
/// else compile while capturing the deterministic telemetry and persist
/// both. Replaying the captured telemetry on a warm hit keeps the
/// deterministic run report byte-identical to a cold run's.
fn compile_artifact(module: &Module, fp: u64, disk: Option<&DiskCache>) -> Arc<NicModule> {
    let Some(dc) = disk else {
        return nfcc::compile_module_shared(module);
    };
    if let Some((nic, tel)) = dc.load::<NicModule>("compile", fp) {
        obs::replay_telemetry(&tel);
        return Arc::new(nic);
    }
    diskcache::recomputes().incr();
    let (nic, tel) = obs::capture_telemetry("cache-compile", &format!("{fp:016x}"), || {
        nfcc::compile_module_shared(module)
    });
    dc.store("compile", fp, nic.as_ref(), &tel);
    nic
}

fn profile_cached_impl(
    module: &Module,
    trace: &Trace,
    port: &PortConfig,
    cfg: &NicConfig,
    backend_fp: u64,
    res: &Resolved,
) -> WorkloadProfile {
    let key = (
        module_fingerprint(module),
        value_fingerprint(trace),
        value_fingerprint(port),
        value_fingerprint(cfg),
        backend_fp,
    );
    let cache = PROFILE_CACHE.get_or_init(Mutex::default);
    let slot = {
        let mut guard = cache.lock().expect("cache poisoned");
        Arc::clone(guard.entry(key).or_default())
    };
    let mut profiled = false;
    let wp = slot
        .get_or_init(|| {
            profiled = true;
            // The vendor compile is hoisted ahead of the disk lookup —
            // and kept OUT of the profile's capture frame. It maintains
            // its own disk artifact; nesting it here would double-count
            // its telemetry on replay and make a warm run's in-memory
            // compile hit/miss pattern diverge from a cold run's.
            let nic = compile_cached_impl(module, res);
            profile_artifact(module, &nic, trace, port, cfg, key, res.cache.as_ref())
        })
        .clone();
    if profiled {
        profile_misses().incr();
    } else {
        profile_hits().incr();
    }
    wp
}

/// Folds the 5-part profile key into the single content address the
/// disk cache files use.
fn profile_disk_key(key: ProfileKey) -> u64 {
    let mut buf = [0u8; 40];
    buf[..8].copy_from_slice(&key.0.to_le_bytes());
    buf[8..16].copy_from_slice(&key.1.to_le_bytes());
    buf[16..24].copy_from_slice(&key.2.to_le_bytes());
    buf[24..32].copy_from_slice(&key.3.to_le_bytes());
    buf[32..].copy_from_slice(&key.4.to_le_bytes());
    nic_sim::fingerprint_bytes(&buf)
}

fn profile_artifact(
    module: &Module,
    nic: &NicModule,
    trace: &Trace,
    port: &PortConfig,
    cfg: &NicConfig,
    key: ProfileKey,
    disk: Option<&DiskCache>,
) -> WorkloadProfile {
    let compute = || {
        let rec = nic_sim::record_workload(module, trace, |_| {});
        nic_sim::profile_recorded_compiled(module, nic, &rec, port, cfg)
    };
    let Some(dc) = disk else { return compute() };
    let dkey = profile_disk_key(key);
    if let Some((wp, tel)) = dc.load::<WorkloadProfile>("profile", dkey) {
        obs::replay_telemetry(&tel);
        return wp;
    }
    diskcache::recomputes().incr();
    let (wp, tel) = obs::capture_telemetry("cache-profile", &format!("{dkey:016x}"), compute);
    dc.store("profile", dkey, &wp, &tel);
    wp
}

// ---- corpus × workload matrix ------------------------------------------

/// Profiles every `(module, workload)` pair of a corpus × workload
/// matrix on the worker pool, returning profiles in row-major order
/// (module-major, workload-minor).
///
/// Each cell gets a deterministic trace seed `seed ^ (i * W + j)` (`i`
/// module index, `j` workload index, `W` workload count), so the matrix
/// is a pure function of `(modules, workloads, pkts, seed, port, cfg)`
/// regardless of worker count or schedule.
///
/// # Panics
///
/// Panics if any cell fails permanently; [`try_profile_matrix`] is the
/// fault-tolerant form.
pub fn profile_matrix(
    modules: &[Module],
    workloads: &[WorkloadSpec],
    pkts: usize,
    seed: u64,
    port: &PortConfig,
    cfg: &NicConfig,
) -> Vec<WorkloadProfile> {
    let out = try_profile_matrix(modules, workloads, pkts, seed, port, cfg);
    assert!(
        out.failures.is_empty(),
        "profile-matrix: {} of {} cell(s) failed permanently; first: {}",
        out.failures.len(),
        out.results.len(),
        out.failures[0].error
    );
    out.results.into_iter().map(|r| r.expect("complete")).collect()
}

/// Fault-tolerant [`profile_matrix`]: cells whose profiling fails
/// permanently come back as `None` in [`StageOutcome::results`] (still
/// row-major) with the failures listed alongside.
pub fn try_profile_matrix(
    modules: &[Module],
    workloads: &[WorkloadSpec],
    pkts: usize,
    seed: u64,
    port: &PortConfig,
    cfg: &NicConfig,
) -> StageOutcome<WorkloadProfile> {
    let res = resolved();
    let backend_fp = value_fingerprint(cfg);
    let w = workloads.len();
    let cells: Vec<(usize, usize)> = (0..modules.len())
        .flat_map(|i| (0..w).map(move |j| (i, j)))
        .collect();
    par_map_with(
        "profile-matrix",
        &cells,
        &|_, &(i, j)| {
            let trace = Trace::generate(&workloads[j], pkts, seed ^ ((i * w + j) as u64));
            profile_cached_impl(&modules[i], &trace, port, cfg, backend_fp, &res)
        },
        &res,
    )
}

// ---- statistics --------------------------------------------------------

/// Accumulated cost of one engine stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Tasks executed under this label.
    pub tasks: u64,
    /// Wall-clock time spent in the stage.
    pub wall: Duration,
    /// Summed task execution time across workers (≈ CPU time; exceeds
    /// `wall` when the stage ran in parallel).
    pub cpu: Duration,
}

static STAGES: OnceLock<Mutex<BTreeMap<&'static str, StageStat>>> = OnceLock::new();

fn record_stage(stage: &'static str, tasks: u64, wall: Duration, cpu: Duration) {
    {
        let mut guard = STAGES
            .get_or_init(Mutex::default)
            .lock()
            .expect("stats poisoned");
        let s = guard.entry(stage).or_default();
        s.tasks += tasks;
        s.wall += wall;
        s.cpu += cpu;
    }
    // Mirror into the obs registry only while recording: the formatted
    // names allocate, and a disabled layer must stay allocation-free.
    if obs::enabled() {
        obs::counter(&format!("engine.stage.{stage}.tasks")).add(tasks);
        obs::volatile_counter(&format!("engine.stage.{stage}.wall_ns"))
            .add(wall.as_nanos() as u64);
        obs::volatile_counter(&format!("engine.stage.{stage}.cpu_ns")).add(cpu.as_nanos() as u64);
    }
}

/// A snapshot of the engine's counters, printable via `Display`.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Worker count the engine is configured for.
    pub threads: usize,
    /// Compile-cache hits.
    pub compile_hits: u64,
    /// Compile-cache misses (actual vendor compiles run).
    pub compile_misses: u64,
    /// Profile-cache hits.
    pub profile_hits: u64,
    /// Profile-cache misses (actual profiling runs).
    pub profile_misses: u64,
    /// Retries performed by the fault-tolerance machinery.
    pub retries: u64,
    /// Tasks that failed permanently.
    pub task_failures: u64,
    /// Faults injected by a configured [`FaultPlan`].
    pub faults_injected: u64,
    /// Persistent-cache artifacts loaded and verified.
    pub disk_hits: u64,
    /// Computations performed because no valid artifact existed.
    pub disk_recomputes: u64,
    /// Artifacts rejected on read (bad header/checksum/body).
    pub disk_corrupt: u64,
    /// Per-stage task counts and times, sorted by stage name.
    pub stages: Vec<(&'static str, StageStat)>,
}

impl EngineStats {
    /// Reads the current counters.
    pub fn snapshot() -> EngineStats {
        let stages = STAGES
            .get_or_init(Mutex::default)
            .lock()
            .expect("stats poisoned")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        EngineStats {
            threads: threads(),
            compile_hits: compile_hits().value(),
            compile_misses: compile_misses().value(),
            profile_hits: profile_hits().value(),
            profile_misses: profile_misses().value(),
            retries: retries_ctr().value(),
            task_failures: task_failures_ctr().value(),
            faults_injected: faults_injected_ctr().value(),
            disk_hits: diskcache::hits().value(),
            disk_recomputes: diskcache::recomputes().value(),
            disk_corrupt: diskcache::corrupt().value(),
            stages,
        }
    }

    /// Zeroes all counters and stage records (caches stay warm). This
    /// also resets the whole [`clara_obs`] registry — spans and every
    /// metric across the workspace — so one reset yields one clean run
    /// report.
    pub fn reset() {
        obs::reset();
        if let Some(s) = STAGES.get() {
            s.lock().expect("stats poisoned").clear();
        }
    }

    /// Total wall-clock time across stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|(_, s)| s.wall).sum()
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine: {} thread(s); compile cache {} hit / {} miss; profile cache {} hit / {} miss",
            self.threads,
            self.compile_hits,
            self.compile_misses,
            self.profile_hits,
            self.profile_misses
        )?;
        if self.disk_hits + self.disk_recomputes + self.disk_corrupt > 0 {
            writeln!(
                f,
                "  disk cache: {} hit / {} recompute / {} corrupt",
                self.disk_hits, self.disk_recomputes, self.disk_corrupt
            )?;
        }
        if self.retries + self.task_failures + self.faults_injected > 0 {
            writeln!(
                f,
                "  fault tolerance: {} retries / {} permanent failures / {} faults injected",
                self.retries, self.task_failures, self.faults_injected
            )?;
        }
        for (name, s) in &self.stages {
            writeln!(
                f,
                "  stage {name:<18} {:>6} tasks  wall {:>9.3?}  cpu {:>9.3?}",
                s.tasks, s.wall, s.cpu
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Explicit options for exercising the task machinery without
    /// touching the process-global configuration (other unit tests call
    /// `Clara::train`, which calls [`configure`], concurrently).
    fn local(workers: usize, retries: u32, faults: Option<FaultPlan>) -> Resolved {
        Resolved {
            workers,
            retries,
            deadline: None,
            faults,
            cache: None,
        }
    }

    #[test]
    fn par_map_matches_serial_order() {
        let items: Vec<u64> = (0..103).collect();
        set_threads(1);
        let serial = par_map("test-order", &items, |i, &x| x * 3 + i as u64);
        set_threads(4);
        let parallel = par_map("test-order", &items, |i, &x| x * 3 + i as u64);
        set_threads(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn compile_cache_hits_on_repeat() {
        let m = click_model::elements::udpcount().module;
        let engine = Engine::new();
        let a = engine.compile_cached(&m);
        let before = compile_hits().value();
        let b = engine.compile_cached(&m);
        assert!(compile_hits().value() > before);
        assert_eq!(a.handler().total_compute(), b.handler().total_compute());
    }

    #[test]
    fn profile_cache_returns_identical_profile() {
        let m = click_model::elements::udpcount().module;
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 60, 9);
        let port = PortConfig::naive();
        let cfg = NicConfig::default();
        let engine = Engine::new();
        let direct = nic_sim::profile_workload(&m, &trace, &port, &cfg, |_| {});
        let cold = engine.profile_cached(&m, &trace, &port, &cfg);
        let warm = engine.profile_cached(&m, &trace, &port, &cfg);
        assert_eq!(direct, cold);
        assert_eq!(cold, warm);
    }

    #[test]
    fn stats_snapshot_accumulates_stages() {
        par_map("test-stat", &[1, 2, 3], |_, x| x + 1);
        let stats = EngineStats::snapshot();
        let (_, s) = stats
            .stages
            .iter()
            .find(|(n, _)| *n == "test-stat")
            .expect("stage recorded");
        assert!(s.tasks >= 3);
    }

    #[test]
    fn faults_within_retry_budget_are_invisible_in_results() {
        let items: Vec<u64> = (0..60).collect();
        let plan = FaultPlan {
            depth: 2,
            ..FaultPlan::new(11, 0.5)
        };
        let clean = par_map_with("test-fault-budget", &items, &|i, &x| x * 7 + i as u64, &local(1, 2, None));
        for workers in [1, 4] {
            let faulted = par_map_with(
                "test-fault-budget",
                &items,
                &|i, &x| x * 7 + i as u64,
                &local(workers, 2, Some(plan.clone())),
            );
            assert!(faulted.is_complete(), "within-budget faults must all retry out");
            assert_eq!(faulted.successes(), clean.results.iter().map(|r| r.unwrap()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn faults_beyond_retry_budget_become_structured_failures() {
        let items: Vec<u64> = (0..40).collect();
        let plan = FaultPlan {
            depth: 9,
            ..FaultPlan::new(23, 0.4)
        };
        let before = task_failures_ctr().value();
        let out = par_map_with("test-fault-perm", &items, &|_, &x| x, &local(4, 2, Some(plan.clone())));
        assert!(!out.failures.is_empty(), "a 40% plan over 40 tasks must select some");
        assert_eq!(out.results.len(), items.len());
        for failure in &out.failures {
            assert_eq!(failure.stage, "test-fault-perm");
            assert_eq!(failure.attempts, 3, "retries=2 means exactly 3 attempts");
            assert!(out.results[failure.index].is_none());
            assert!(matches!(failure.error, TaskError::Injected { .. }));
        }
        // Non-selected tasks still succeeded with correct values.
        for (i, r) in out.results.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, items[i]);
            }
        }
        assert_eq!(
            task_failures_ctr().value(),
            before + out.failures.len() as u64
        );
    }

    #[test]
    fn expired_deadline_fails_tasks_without_running_them() {
        let ran = AtomicUsize::new(0);
        let res = Resolved {
            deadline: Some(Duration::ZERO),
            ..local(1, 2, None)
        };
        let out = par_map_with(
            "test-deadline",
            &[1u32, 2, 3],
            &|_, &x| {
                ran.fetch_add(1, Ordering::Relaxed);
                x
            },
            &res,
        );
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert_eq!(out.failures.len(), 3);
        assert!(out
            .failures
            .iter()
            .all(|f| f.error == TaskError::DeadlineExceeded && f.attempts == 0));
    }

    #[test]
    fn genuine_panics_are_isolated_and_reported() {
        let out = par_map_with(
            "test-panic",
            &[0u32, 1, 2, 3],
            &|_, &x| {
                assert!(x != 2, "task two explodes");
                x * 10
            },
            &local(2, 1, None),
        );
        assert_eq!(out.failures.len(), 1);
        let f = &out.failures[0];
        assert_eq!(f.index, 2);
        assert_eq!(f.attempts, 2);
        assert!(matches!(&f.error, TaskError::Panicked { detail } if detail.contains("explodes")));
        assert_eq!(out.results[3], Some(30));
    }

    #[test]
    fn engine_options_builder_round_trips() {
        let plan = FaultPlan::new(3, 0.1);
        let opts = EngineOptions::builder()
            .workers(8)
            .retries(5)
            .stage_deadline(Duration::from_secs(30))
            .faults(plan.clone())
            .cache_dir("/tmp/clara-cache")
            .build();
        assert_eq!(opts.workers, Some(8));
        assert_eq!(opts.retries, 5);
        assert_eq!(opts.stage_deadline, Some(Duration::from_secs(30)));
        assert_eq!(opts.faults, Some(plan));
        assert_eq!(opts.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/clara-cache")));
        let d = EngineOptions::default();
        assert_eq!((d.workers, d.retries), (None, 2));
    }
}
