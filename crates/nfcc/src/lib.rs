//! `nfcc`: a vendor-style "closed-source" compiler from NIR to a
//! Netronome-like micro-engine ISA.
//!
//! In the Clara paper, the Netronome NFCC compiler is an opaque black box
//! whose instruction selection and optimization behaviour Clara *learns*
//! rather than models analytically. This crate plays that role: it lowers
//! NIR deliberately **context-sensitively**, so per-block instruction
//! counts are not a 1:1 function of the IR opcodes:
//!
//! - the ALU has a built-in shifter: a shift whose sole consumer is a
//!   following ALU op in the same block **fuses** and costs nothing;
//! - small immediates ride along in the instruction word, 16-bit ones
//!   need one `immed`, 32-bit ones two — and a large constant already
//!   materialized earlier in the block is reused;
//! - there is no multiply unit: `mul` expands to 3–7 `mul_step`s by
//!   width, or a single shift for power-of-two constants;
//! - there is no divide unit: `udiv`/`urem` expand to a long software
//!   sequence unless the divisor is a power of two;
//! - a comparison feeding the block terminator fuses into the branch;
//! - `and x, 0xff/0xffff` immediately after a load is free (the memory
//!   unit extracts bytes);
//! - stack slots are register-allocated: the most-used slots live in
//!   GPRs (their loads/stores vanish), the rest spill to local memory —
//!   a *function-level* effect that individual blocks cannot see.
//!
//! Stateful loads/stores, by contrast, map essentially 1:1 onto memory
//! commands — reproducing the paper's observation that memory-access
//! counting is easy (96.4–100%) while compute-instruction counting needs
//! learning.
//!
//! # Examples
//!
//! ```
//! use nf_ir::{FunctionBuilder, BinOp, Operand, Ty};
//!
//! let mut fb = FunctionBuilder::new("f");
//! let p = fb.param(Ty::I32);
//! let bb = fb.entry_block();
//! fb.switch_to(bb);
//! let s = fb.bin(BinOp::Shl, Ty::I32, p, Operand::imm(2));
//! let a = fb.bin(BinOp::Add, Ty::I32, s, p); // shift fuses into this add
//! fb.ret(Some(a));
//! let f = fb.finish();
//! let nic = nfcc::compile_function(&f);
//! // shl+add fused into one ALU op (+1 for the return branch).
//! assert_eq!(nic.blocks[0].compute_count(), 2);
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;
use std::time::Instant;

use clara_obs as obs;
use nf_ir::{BinOp, CastOp, Function, GlobalId, Inst, MemRef, Module, Operand, Term, Ty, ValueId};
use serde::{Deserialize, Serialize};

/// Lazily registered counter handle (registration takes the registry
/// lock; compiles on the hot path only touch the cached atomic).
fn ctr(cell: &'static OnceLock<obs::Counter>, name: &'static str) -> &'static obs::Counter {
    cell.get_or_init(|| obs::counter(name))
}

fn vctr(cell: &'static OnceLock<obs::Counter>, name: &'static str) -> &'static obs::Counter {
    cell.get_or_init(|| obs::volatile_counter(name))
}

static MODULES: OnceLock<obs::Counter> = OnceLock::new();
static FUNCTIONS: OnceLock<obs::Counter> = OnceLock::new();
static BLOCKS: OnceLock<obs::Counter> = OnceLock::new();
static INSTRUCTIONS: OnceLock<obs::Counter> = OnceLock::new();
static ISSUE_CYCLES: OnceLock<obs::Counter> = OnceLock::new();
static REGALLOC_NS: OnceLock<obs::Counter> = OnceLock::new();
static LOWER_NS: OnceLock<obs::Counter> = OnceLock::new();

/// Number of stack slots that fit in general-purpose registers.
pub const GPR_SLOTS: usize = 10;

/// One lowered micro-engine instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum NicInst {
    /// Single-cycle ALU operation (possibly with a fused shift operand).
    Alu {
        /// Mnemonic for the printer.
        mnem: &'static str,
    },
    /// Stand-alone shift.
    AluShf,
    /// Immediate materialization (16 bits per instruction).
    Immed,
    /// One step of the multiply sequence.
    MulStep,
    /// Branch/jump (conditional or not).
    Branch,
    /// Local-memory access (spilled stack slot).
    LocalMem {
        /// True for stores.
        write: bool,
    },
    /// Memory command to the NIC memory hierarchy.
    MemCmd {
        /// Target global (None = packet data in CTM).
        global: Option<GlobalId>,
        /// Transfer size in 32-bit words.
        words: u8,
        /// True for stores.
        write: bool,
    },
    /// Call into a reverse-ported framework library routine.
    LibCall {
        /// The API name.
        api: String,
    },
    /// Context swap / return.
    Ctx,
}

impl NicInst {
    /// Is this a memory access (local or hierarchy)?
    pub fn is_mem(&self) -> bool {
        matches!(self, NicInst::LocalMem { .. } | NicInst::MemCmd { .. })
    }

    /// Is this a library call (costed via reverse porting)?
    pub fn is_libcall(&self) -> bool {
        matches!(self, NicInst::LibCall { .. })
    }

    /// Printer mnemonic.
    pub fn mnemonic(&self) -> String {
        match self {
            NicInst::Alu { mnem } => format!("alu[{mnem}]"),
            NicInst::AluShf => "alu_shf".into(),
            NicInst::Immed => "immed".into(),
            NicInst::MulStep => "mul_step".into(),
            NicInst::Branch => "br".into(),
            NicInst::LocalMem { write: false } => "local_csr_rd".into(),
            NicInst::LocalMem { write: true } => "local_csr_wr".into(),
            NicInst::MemCmd {
                global,
                words,
                write,
            } => {
                let dir = if *write { "write" } else { "read" };
                match global {
                    Some(g) => format!("mem[{dir}, @{}, {words}w]", g.0),
                    None => format!("ctm[{dir}_pkt, {words}w]"),
                }
            }
            NicInst::LibCall { api } => format!("call[{api}]"),
            NicInst::Ctx => "ctx_arb".into(),
        }
    }
}

/// Maps a serialized ALU mnemonic back onto the `&'static str` the
/// lowerer would have produced. The lowerer only ever emits [`BinOp`]
/// names plus this fixed synthetic set, so interning is total over valid
/// inputs; anything else is a corrupt artifact.
fn intern_mnem(s: &str) -> Option<&'static str> {
    if let Some(op) = BinOp::from_name(s) {
        return Some(op.name());
    }
    [
        "div_step", "test", "pred", "mov", "cmov_t", "cmov_f", "addr", "arg",
    ]
    .into_iter()
    .find(|&m| m == s)
}

// Hand-written: the derive cannot conjure the `&'static str` mnemonic,
// which must be re-interned against the lowerer's fixed vocabulary.
// Mirrors the derived `Serialize` shape exactly (unit variants as a bare
// string, struct variants as a single-key map of named fields).
impl Deserialize for NicInst {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let (name, payload) = serde::variant(v)?;
        match name {
            "Alu" => {
                let mnem: String = serde::from_field(payload, "mnem")?;
                let mnem = intern_mnem(&mnem).ok_or_else(|| {
                    serde::Error(format!("unknown ALU mnemonic `{mnem}`"))
                })?;
                Ok(NicInst::Alu { mnem })
            }
            "AluShf" => Ok(NicInst::AluShf),
            "Immed" => Ok(NicInst::Immed),
            "MulStep" => Ok(NicInst::MulStep),
            "Branch" => Ok(NicInst::Branch),
            "LocalMem" => Ok(NicInst::LocalMem {
                write: serde::from_field(payload, "write")?,
            }),
            "MemCmd" => Ok(NicInst::MemCmd {
                global: serde::from_field(payload, "global")?,
                words: serde::from_field(payload, "words")?,
                write: serde::from_field(payload, "write")?,
            }),
            "LibCall" => Ok(NicInst::LibCall {
                api: serde::from_field(payload, "api")?,
            }),
            "Ctx" => Ok(NicInst::Ctx),
            other => Err(serde::Error(format!(
                "unknown variant `{other}` for NicInst"
            ))),
        }
    }
}

/// One lowered basic block.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NicBlock {
    /// Lowered instructions in order.
    pub insts: Vec<NicInst>,
}

impl NicBlock {
    /// Compute (non-memory, non-libcall) instruction count — the quantity
    /// Clara's LSTM predicts per block.
    pub fn compute_count(&self) -> u32 {
        self.insts
            .iter()
            .filter(|i| !i.is_mem() && !i.is_libcall())
            .count() as u32
    }

    /// Memory instruction count (hierarchy + local memory).
    pub fn mem_count(&self) -> u32 {
        self.insts.iter().filter(|i| i.is_mem()).count() as u32
    }

    /// Hierarchy memory commands only (stateful + packet accesses).
    pub fn mem_cmd_count(&self) -> u32 {
        self.insts
            .iter()
            .filter(|i| matches!(i, NicInst::MemCmd { .. }))
            .count() as u32
    }

    /// Total cycles to issue this block (1 per instruction; memory
    /// *latency* is the simulator's concern).
    pub fn issue_cycles(&self) -> u32 {
        self.insts.len() as u32
    }
}

/// A compiled function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NicFunction {
    /// Source function name.
    pub name: String,
    /// One lowered block per source block (same indices).
    pub blocks: Vec<NicBlock>,
    /// Stack slots that were register-allocated (loads/stores free).
    pub reg_slots: Vec<u32>,
}

impl NicFunction {
    /// Total compute instructions over all blocks.
    pub fn total_compute(&self) -> u32 {
        self.blocks.iter().map(NicBlock::compute_count).sum()
    }

    /// Total memory instructions over all blocks.
    pub fn total_mem(&self) -> u32 {
        self.blocks.iter().map(NicBlock::mem_count).sum()
    }
}

/// A compiled module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NicModule {
    /// Module name.
    pub name: String,
    /// Compiled functions (same order as the source module).
    pub funcs: Vec<NicFunction>,
}

impl NicModule {
    /// The compiled packet handler (first function).
    pub fn handler(&self) -> &NicFunction {
        &self.funcs[0]
    }
}

/// Compiles a whole module.
///
/// Compilation is a pure function of the module: no global state is read
/// or written, so concurrent calls from multiple threads are safe and
/// identical inputs always produce identical output. `clara-core`'s
/// evaluation engine relies on both properties to memoize compiles
/// across threads.
pub fn compile_module(module: &Module) -> NicModule {
    let _span = obs::span!("nfcc-compile", "module={}", module.name);
    ctr(&MODULES, "nfcc.modules_compiled").incr();
    NicModule {
        name: module.name.clone(),
        funcs: module.funcs.iter().map(compile_function).collect(),
    }
}

/// Compiles a module into a shareable handle, the entry point used by
/// parallel callers that fan one compile out to many consumers.
pub fn compile_module_shared(module: &Module) -> std::sync::Arc<NicModule> {
    std::sync::Arc::new(compile_module(module))
}

// The engine moves compiled modules across worker threads; keep the
// output type thread-safe by construction.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NicModule>();
};

/// Compiles one function.
pub fn compile_function(func: &Function) -> NicFunction {
    ctr(&FUNCTIONS, "nfcc.functions_compiled").incr();
    // Per-phase wall clock is volatile telemetry: only measured with a
    // report sink active, and excluded from deterministic reports.
    let timed = obs::enabled();
    let t0 = timed.then(Instant::now);
    // Register allocation: rank stack slots by static use count; the top
    // GPR_SLOTS live in registers, the rest spill to local memory.
    let mut slot_uses: HashMap<u32, u32> = HashMap::new();
    for b in &func.blocks {
        for inst in &b.insts {
            if let Inst::Load {
                mem: MemRef::Stack { slot },
                ..
            }
            | Inst::Store {
                mem: MemRef::Stack { slot },
                ..
            } = inst
            {
                *slot_uses.entry(*slot).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(u32, u32)> = slot_uses.into_iter().collect();
    ranked.sort_by_key(|&(slot, uses)| (std::cmp::Reverse(uses), slot));
    let reg_slots: Vec<u32> = ranked
        .iter()
        .take(GPR_SLOTS)
        .map(|&(slot, _)| slot)
        .collect();
    let reg_set: HashSet<u32> = reg_slots.iter().copied().collect();

    // Single-use analysis for shift fusion (within the whole function;
    // fusion itself requires same-block adjacency of definition chains).
    let mut use_counts: HashMap<ValueId, u32> = HashMap::new();
    let count_op = |op: Operand, uses: &mut HashMap<ValueId, u32>| {
        if let Operand::Value(v) = op {
            *uses.entry(v).or_insert(0) += 1;
        }
    };
    for b in &func.blocks {
        for inst in &b.insts {
            for op in inst.operands() {
                count_op(op, &mut use_counts);
            }
        }
        match &b.term {
            Term::CondBr { cond, .. } => count_op(*cond, &mut use_counts),
            Term::Ret { val: Some(v) } => count_op(*v, &mut use_counts),
            _ => {}
        }
    }

    let t1 = timed.then(Instant::now);
    let blocks: Vec<NicBlock> = func
        .blocks
        .iter()
        .map(|b| lower_block(b, &reg_set, &use_counts))
        .collect();
    if let (Some(t0), Some(t1)) = (t0, t1) {
        vctr(&REGALLOC_NS, "nfcc.phase.regalloc_ns").add((t1 - t0).as_nanos() as u64);
        vctr(&LOWER_NS, "nfcc.phase.lower_ns").add(t1.elapsed().as_nanos() as u64);
    }
    ctr(&BLOCKS, "nfcc.blocks_lowered").add(blocks.len() as u64);
    ctr(&INSTRUCTIONS, "nfcc.instructions")
        .add(blocks.iter().map(|b| b.insts.len() as u64).sum());
    ctr(&ISSUE_CYCLES, "nfcc.issue_cycles")
        .add(blocks.iter().map(|b| u64::from(b.issue_cycles())).sum());
    NicFunction {
        name: func.name.clone(),
        blocks,
        reg_slots,
    }
}

fn imm_cost(c: i64, materialized: &mut HashSet<i64>) -> u32 {
    let mag = c.unsigned_abs();
    // Small immediates ride in the instruction word; larger ones are free
    // when already materialized earlier in the block.
    if (c >= 0 && mag < 256) || materialized.contains(&c) {
        0
    } else {
        materialized.insert(c);
        if mag < 65536 {
            1
        } else {
            2
        }
    }
}

fn is_pow2(c: i64) -> bool {
    c > 0 && (c & (c - 1)) == 0
}

fn lower_block(
    block: &nf_ir::Block,
    reg_slots: &HashSet<u32>,
    use_counts: &HashMap<ValueId, u32>,
) -> NicBlock {
    let mut out = NicBlock::default();
    // Values produced by a shift in this block that are fusable (single
    // use) and not yet consumed.
    let mut pending_shift: HashSet<ValueId> = HashSet::new();
    // Values produced by loads (for the free byte-mask peephole).
    let mut loaded: HashSet<ValueId> = HashSet::new();
    // Large constants materialized so far in this block.
    let mut materialized: HashSet<i64> = HashSet::new();
    // The icmp result feeding the terminator, if it can fuse.
    let fused_cmp: Option<ValueId> = match &block.term {
        Term::CondBr {
            cond: Operand::Value(v),
            ..
        } if use_counts.get(v) == Some(&1) => {
            // Fusable only if the icmp is the last instruction of the block.
            match block.insts.last() {
                Some(Inst::Icmp { dst, .. }) if dst == v => Some(*v),
                _ => None,
            }
        }
        _ => None,
    };

    let emit = |out: &mut NicBlock, inst: NicInst| out.insts.push(inst);
    let emit_imm = |out: &mut NicBlock, op: Operand, mat: &mut HashSet<i64>| {
        if let Operand::Const(c) = op {
            for _ in 0..imm_cost(c, mat) {
                out.insts.push(NicInst::Immed);
            }
        }
    };

    for inst in &block.insts {
        match inst {
            Inst::Bin {
                dst,
                op,
                ty,
                lhs,
                rhs,
            } => {
                match op {
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                        emit_imm(&mut out, *lhs, &mut materialized);
                        // A single-use shift fuses into a later ALU op in
                        // this block: emit nothing now, remember it.
                        let single_use = use_counts.get(dst) == Some(&1);
                        if single_use && matches!(rhs, Operand::Const(_)) {
                            pending_shift.insert(*dst);
                        } else {
                            emit_imm(&mut out, *rhs, &mut materialized);
                            emit(&mut out, NicInst::AluShf);
                        }
                    }
                    BinOp::Mul => {
                        emit_imm(&mut out, *lhs, &mut materialized);
                        match rhs {
                            Operand::Const(c) if is_pow2(*c) => {
                                emit(&mut out, NicInst::AluShf);
                            }
                            _ => {
                                emit_imm(&mut out, *rhs, &mut materialized);
                                let steps = match ty {
                                    Ty::I1 | Ty::I8 | Ty::I16 => 3,
                                    Ty::I32 => 4,
                                    Ty::I64 => 7,
                                };
                                for _ in 0..steps {
                                    emit(&mut out, NicInst::MulStep);
                                }
                            }
                        }
                    }
                    BinOp::UDiv | BinOp::URem => match rhs {
                        Operand::Const(c) if is_pow2(*c) => {
                            emit(&mut out, NicInst::AluShf);
                        }
                        _ => {
                            // Software divide loop.
                            let n = match ty {
                                Ty::I1 | Ty::I8 => 18,
                                Ty::I16 => 24,
                                Ty::I32 => 36,
                                Ty::I64 => 68,
                            };
                            for i in 0..n {
                                emit(
                                    &mut out,
                                    if i % 3 == 2 {
                                        NicInst::Branch
                                    } else {
                                        NicInst::Alu { mnem: "div_step" }
                                    },
                                );
                            }
                        }
                    },
                    BinOp::Add | BinOp::Sub | BinOp::And | BinOp::Or | BinOp::Xor => {
                        // Free byte-extract: `and x, 0xff/0xffff` right
                        // after loading x — the memory unit masks.
                        if *op == BinOp::And {
                            if let (Operand::Value(v), Operand::Const(c)) = (lhs, rhs) {
                                if loaded.contains(v) && (*c == 0xff || *c == 0xffff) {
                                    continue;
                                }
                            }
                        }
                        // Consume at most one pending shift for free.
                        let mut fused = false;
                        for side in [lhs, rhs] {
                            if let Operand::Value(v) = side {
                                if !fused && pending_shift.remove(v) {
                                    fused = true;
                                }
                            }
                        }
                        emit_imm(&mut out, *lhs, &mut materialized);
                        emit_imm(&mut out, *rhs, &mut materialized);
                        emit(&mut out, NicInst::Alu { mnem: op.name() });
                    }
                }
            }
            Inst::Icmp { dst, lhs, rhs, .. } => {
                emit_imm(&mut out, *lhs, &mut materialized);
                emit_imm(&mut out, *rhs, &mut materialized);
                if fused_cmp == Some(*dst) {
                    // Fuses with the terminator branch: one test ALU op.
                    emit(&mut out, NicInst::Alu { mnem: "test" });
                } else {
                    // Materialize the predicate into a register.
                    emit(&mut out, NicInst::Alu { mnem: "test" });
                    emit(&mut out, NicInst::Alu { mnem: "pred" });
                }
            }
            Inst::Cast {
                dst: _,
                op,
                from,
                to,
                ..
            } => {
                let wide = *from == Ty::I64 || *to == Ty::I64;
                match op {
                    CastOp::Zext | CastOp::Trunc => {
                        if wide {
                            emit(&mut out, NicInst::Alu { mnem: "mov" });
                        }
                        // 32-bit-register machine: narrow casts are free.
                    }
                    CastOp::Sext => {
                        // Shift-left/shift-right pair; 64-bit adds a move.
                        emit(&mut out, NicInst::AluShf);
                        emit(&mut out, NicInst::AluShf);
                        if wide {
                            emit(&mut out, NicInst::Alu { mnem: "mov" });
                        }
                    }
                }
            }
            Inst::Select { .. } => {
                emit(&mut out, NicInst::Alu { mnem: "cmov_t" });
                emit(&mut out, NicInst::Alu { mnem: "cmov_f" });
            }
            Inst::Phi { incomings, .. } => {
                // Resolved to a move at each predecessor; charge one here.
                let _ = incomings;
                emit(&mut out, NicInst::Alu { mnem: "mov" });
            }
            Inst::Load { dst, ty, mem } => match mem {
                MemRef::Stack { slot } => {
                    if !reg_slots.contains(slot) {
                        emit(&mut out, NicInst::LocalMem { write: false });
                    }
                    loaded.insert(*dst);
                }
                MemRef::Global { global, index, .. } => {
                    if index.is_some() {
                        emit(&mut out, NicInst::Alu { mnem: "addr" });
                    }
                    emit(
                        &mut out,
                        NicInst::MemCmd {
                            global: Some(*global),
                            words: ty.bytes().div_ceil(4) as u8,
                            write: false,
                        },
                    );
                    loaded.insert(*dst);
                }
                MemRef::Pkt { field } => {
                    if let nf_ir::PktField::Payload(off) = field {
                        if *off > 255 {
                            emit(&mut out, NicInst::Immed);
                        }
                    }
                    emit(
                        &mut out,
                        NicInst::MemCmd {
                            global: None,
                            words: ty.bytes().div_ceil(4) as u8,
                            write: false,
                        },
                    );
                    loaded.insert(*dst);
                }
            },
            Inst::Store { ty, val, mem } => {
                emit_imm(&mut out, *val, &mut materialized);
                match mem {
                    MemRef::Stack { slot } => {
                        if !reg_slots.contains(slot) {
                            emit(&mut out, NicInst::LocalMem { write: true });
                        }
                    }
                    MemRef::Global { global, index, .. } => {
                        if index.is_some() {
                            emit(&mut out, NicInst::Alu { mnem: "addr" });
                        }
                        emit(
                            &mut out,
                            NicInst::MemCmd {
                                global: Some(*global),
                                words: ty.bytes().div_ceil(4) as u8,
                                write: true,
                            },
                        );
                    }
                    MemRef::Pkt { field } => {
                        if let nf_ir::PktField::Payload(off) = field {
                            if *off > 255 {
                                emit(&mut out, NicInst::Immed);
                            }
                        }
                        emit(
                            &mut out,
                            NicInst::MemCmd {
                                global: None,
                                words: ty.bytes().div_ceil(4) as u8,
                                write: true,
                            },
                        );
                    }
                }
            }
            Inst::Call { api, args, .. } => {
                // Argument marshalling plus the library call itself; the
                // callee's cost comes from the reverse-ported profile.
                for a in args {
                    emit_imm(&mut out, *a, &mut materialized);
                }
                emit(&mut out, NicInst::Alu { mnem: "arg" });
                emit(
                    &mut out,
                    NicInst::LibCall {
                        api: api.name().to_string(),
                    },
                );
            }
        }
    }

    match &block.term {
        Term::Br { .. } => emit(&mut out, NicInst::Branch),
        Term::CondBr { cond, .. } => {
            match cond {
                Operand::Value(v) if fused_cmp == Some(*v) => {
                    emit(&mut out, NicInst::Branch); // Fused test+branch.
                }
                _ => {
                    emit(&mut out, NicInst::Alu { mnem: "test" });
                    emit(&mut out, NicInst::Branch);
                }
            }
        }
        Term::Ret { .. } => emit(&mut out, NicInst::Ctx),
    }
    out
}

/// Renders a compiled function as assembly text.
pub fn print_asm(func: &NicFunction) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, ".func {}  ; reg_slots={:?}", func.name, func.reg_slots);
    for (i, b) in func.blocks.iter().enumerate() {
        let _ = writeln!(
            s,
            ".bb{}:  ; compute={} mem={}",
            i,
            b.compute_count(),
            b.mem_count()
        );
        for inst in &b.insts {
            let _ = writeln!(s, "    {}", inst.mnemonic());
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_ir::{ApiCall, FunctionBuilder, Pred, StateKind};

    fn single_block(build: impl FnOnce(&mut FunctionBuilder)) -> NicBlock {
        let mut fb = FunctionBuilder::new("t");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        build(&mut fb);
        fb.ret(None);
        let f = fb.finish();
        compile_function(&f).blocks.into_iter().next().unwrap()
    }

    #[test]
    fn shift_fuses_into_single_use_alu_consumer() {
        // shl (single use) + add → 1 ALU (+1 ctx for ret).
        let fused = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let s = fb.bin(BinOp::Shl, Ty::I32, p, Operand::imm(2));
            let _ = fb.bin(BinOp::Add, Ty::I32, s, p);
        });
        assert_eq!(fused.compute_count(), 2);

        // Same shift used twice → no fusion: alu_shf + 2 adds + ctx = 4.
        let unfused = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let s = fb.bin(BinOp::Shl, Ty::I32, p, Operand::imm(2));
            let a = fb.bin(BinOp::Add, Ty::I32, s, p);
            let _ = fb.bin(BinOp::Add, Ty::I32, s, a);
        });
        assert_eq!(unfused.compute_count(), 4);
    }

    #[test]
    fn immediates_cost_by_magnitude_and_dedup() {
        let small = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let _ = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(7));
        });
        assert_eq!(small.compute_count(), 2); // alu + ctx

        let big = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let _ = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(0x12345678));
        });
        assert_eq!(big.compute_count(), 4); // 2 immed + alu + ctx

        // The same 32-bit constant twice is materialized once.
        let dedup = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let a = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(0x12345678));
            let _ = fb.bin(BinOp::Xor, Ty::I32, a, Operand::imm(0x12345678));
        });
        assert_eq!(dedup.compute_count(), 5); // 2 immed + 2 alu + ctx
    }

    #[test]
    fn multiply_expands_by_width() {
        let m16 = single_block(|fb| {
            let p = fb.param(Ty::I16);
            let q = fb.param(Ty::I16);
            let _ = fb.bin(BinOp::Mul, Ty::I16, p, q);
        });
        assert_eq!(m16.compute_count(), 3 + 1);

        let m32 = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let q = fb.param(Ty::I32);
            let _ = fb.bin(BinOp::Mul, Ty::I32, p, q);
        });
        assert_eq!(m32.compute_count(), 4 + 1);

        // Power-of-two multiply is a shift.
        let pow2 = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let _ = fb.bin(BinOp::Mul, Ty::I32, p, Operand::imm(8));
        });
        assert_eq!(pow2.compute_count(), 1 + 1);
    }

    #[test]
    fn divide_is_expensive_software() {
        let d = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let q = fb.param(Ty::I32);
            let _ = fb.bin(BinOp::UDiv, Ty::I32, p, q);
        });
        assert!(d.compute_count() >= 36, "{}", d.compute_count());
        let dp = single_block(|fb| {
            let p = fb.param(Ty::I32);
            let _ = fb.bin(BinOp::UDiv, Ty::I32, p, Operand::imm(16));
        });
        assert_eq!(dp.compute_count(), 2);
    }

    #[test]
    fn cmp_branch_fusion_depends_on_position() {
        // icmp directly feeding condbr as last inst → fused.
        let mut fb = FunctionBuilder::new("f");
        let p = fb.param(Ty::I32);
        let e = fb.entry_block();
        let a = fb.block();
        let b = fb.block();
        fb.switch_to(e);
        let c = fb.icmp(Pred::ULt, Ty::I32, p, Operand::imm(10));
        fb.cond_br(c, a, b);
        fb.switch_to(a);
        fb.ret(None);
        fb.switch_to(b);
        fb.ret(None);
        let f = fb.finish();
        let nic = compile_function(&f);
        // test + branch = 2.
        assert_eq!(nic.blocks[0].compute_count(), 2);

        // icmp separated from the terminator by another inst → not fused.
        let mut fb = FunctionBuilder::new("g");
        let p = fb.param(Ty::I32);
        let e = fb.entry_block();
        let a = fb.block();
        let b = fb.block();
        fb.switch_to(e);
        let c = fb.icmp(Pred::ULt, Ty::I32, p, Operand::imm(10));
        let _ = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(1));
        fb.cond_br(c, a, b);
        fb.switch_to(a);
        fb.ret(None);
        fb.switch_to(b);
        fb.ret(None);
        let f = fb.finish();
        let nic = compile_function(&f);
        // test+pred (2) + add (1) + test+branch (2) = 5.
        assert_eq!(nic.blocks[0].compute_count(), 5);
    }

    #[test]
    fn register_allocation_spills_cold_slots() {
        // 12 slots: the 10 hottest are registers, 2 spill to local memory.
        let mut fb = FunctionBuilder::new("s");
        let p = fb.param(Ty::I32);
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let slots: Vec<u32> = (0..12).map(|_| fb.slot()).collect();
        // Slots 0 and 1 are used once; others used twice (hotter).
        for (i, &s) in slots.iter().enumerate() {
            fb.store(Ty::I32, p, MemRef::stack(s));
            if i >= 2 {
                let _ = fb.load(Ty::I32, MemRef::stack(s));
            }
        }
        fb.ret(None);
        let f = fb.finish();
        let nic = compile_function(&f);
        assert_eq!(nic.reg_slots.len(), GPR_SLOTS);
        assert!(!nic.reg_slots.contains(&0));
        assert!(!nic.reg_slots.contains(&1));
        // Exactly the two cold stores hit local memory.
        assert_eq!(nic.blocks[0].mem_count(), 2);
    }

    #[test]
    fn stateful_accesses_map_one_to_one() {
        let mut m = Module::new("m");
        let g = m.add_global("tbl", StateKind::Array, 4, 64);
        let mut fb = FunctionBuilder::new("f");
        let p = fb.param(Ty::I32);
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let v = fb.load(Ty::I32, MemRef::global_at(g, p, 0));
        let w = fb.bin(BinOp::Add, Ty::I32, v, Operand::imm(1));
        fb.store(Ty::I32, w, MemRef::global_at(g, p, 0));
        fb.ret(None);
        m.funcs.push(fb.finish());
        let nic = compile_module(&m);
        // Exactly 2 memory commands for the 2 IR stateful accesses.
        assert_eq!(nic.handler().blocks[0].mem_cmd_count(), 2);
    }

    #[test]
    fn byte_mask_after_load_is_free() {
        let mut m = Module::new("m");
        let g = m.add_global("tbl", StateKind::Scalar, 4, 1);
        let mut fb = FunctionBuilder::new("f");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let v = fb.load(Ty::I32, MemRef::global(g));
        let _ = fb.bin(BinOp::And, Ty::I32, v, Operand::imm(0xff));
        fb.ret(None);
        m.funcs.push(fb.finish());
        let nic = compile_module(&m);
        // Only the ctx (ret): the mask vanished into the memory command.
        assert_eq!(nic.handler().blocks[0].compute_count(), 1);
    }

    #[test]
    fn api_calls_become_libcalls() {
        let b = single_block(|fb| {
            let _ = fb.call(ApiCall::ChecksumUpdate, vec![]);
        });
        assert_eq!(b.insts.iter().filter(|i| i.is_libcall()).count(), 1);
    }

    #[test]
    fn compilation_is_deterministic() {
        let e = {
            let mut fb = FunctionBuilder::new("d");
            let p = fb.param(Ty::I32);
            let bb = fb.entry_block();
            fb.switch_to(bb);
            let s = fb.bin(BinOp::Shl, Ty::I32, p, Operand::imm(3));
            let x = fb.bin(BinOp::Xor, Ty::I32, s, Operand::imm(0xdead));
            fb.ret(Some(x));
            fb.finish()
        };
        let a = compile_function(&e);
        let b = compile_function(&e);
        assert_eq!(a.blocks[0].insts, b.blocks[0].insts);
    }

    #[test]
    fn asm_printer_includes_counts() {
        let b = {
            let mut fb = FunctionBuilder::new("p");
            let q = fb.param(Ty::I32);
            let bb = fb.entry_block();
            fb.switch_to(bb);
            let _ = fb.bin(BinOp::Add, Ty::I32, q, Operand::imm(1));
            fb.ret(None);
            fb.finish()
        };
        let nic = compile_function(&b);
        let asm = print_asm(&nic);
        assert!(asm.contains(".func p"));
        assert!(asm.contains("alu[add]"));
        assert!(asm.contains("compute=2"));
    }

    #[test]
    fn nic_module_serde_round_trip_is_lossless() {
        let module = NicModule {
            name: "rt".into(),
            funcs: vec![NicFunction {
                name: "f".into(),
                reg_slots: vec![0, 3],
                blocks: vec![NicBlock {
                    insts: vec![
                        NicInst::Alu { mnem: "add" },
                        NicInst::Alu { mnem: "cmov_t" },
                        NicInst::AluShf,
                        NicInst::Immed,
                        NicInst::MulStep,
                        NicInst::Branch,
                        NicInst::LocalMem { write: true },
                        NicInst::MemCmd {
                            global: Some(GlobalId(4)),
                            words: 2,
                            write: false,
                        },
                        NicInst::MemCmd {
                            global: None,
                            words: 1,
                            write: true,
                        },
                        NicInst::LibCall { api: "map_lookup".into() },
                        NicInst::Ctx,
                    ],
                }],
            }],
        };
        let json = serde_json::to_string(&module).unwrap();
        let back: NicModule = serde_json::from_str(&json).unwrap();
        assert_eq!(back.funcs[0].blocks[0].insts, module.funcs[0].blocks[0].insts);
        assert_eq!(back.name, module.name);
        assert_eq!(back.funcs[0].reg_slots, module.funcs[0].reg_slots);
        // Re-serializing reproduces the exact bytes (intern preserved).
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn nic_inst_deserialize_rejects_unknown_mnemonic() {
        let bad = r#"{"Alu":{"mnem":"frobnicate"}}"#;
        assert!(serde_json::from_str::<NicInst>(bad).is_err());
    }
}
