//! Property tests: the vendor compiler upholds its contracts on random
//! well-formed programs.

use nf_ir::InstClass;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stateful and packet memory instructions map 1:1 onto NIC memory
    /// commands — the invariant behind the paper's 96.4-100% counting
    /// accuracy.
    #[test]
    fn mem_cmds_match_ir_memory_ops(seed in 0u64..10_000) {
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let nic = nfcc::compile_module(&m);
        for (f, nf) in m.funcs.iter().zip(nic.funcs.iter()) {
            for (b, nb) in f.blocks.iter().zip(nf.blocks.iter()) {
                let ir_mem = b
                    .insts
                    .iter()
                    .filter(|i| matches!(
                        i.class(),
                        InstClass::StatefulMem | InstClass::PacketMem
                    ))
                    .count() as u32;
                prop_assert_eq!(
                    nb.mem_cmd_count(),
                    ir_mem,
                    "block {:?} of {}", b.id, m.name
                );
            }
        }
    }

    /// Compilation is deterministic and every block costs at least its
    /// terminator.
    #[test]
    fn deterministic_and_nonempty(seed in 0u64..10_000) {
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let a = nfcc::compile_module(&m);
        let b = nfcc::compile_module(&m);
        for (fa, fb) in a.funcs.iter().zip(b.funcs.iter()) {
            prop_assert_eq!(&fa.reg_slots, &fb.reg_slots);
            for (ba, bb) in fa.blocks.iter().zip(fb.blocks.iter()) {
                prop_assert_eq!(&ba.insts, &bb.insts);
                prop_assert!(ba.issue_cycles() >= 1);
            }
        }
    }

    /// Library calls never count as compute or memory (they are costed by
    /// reverse porting), and the printer renders every instruction.
    #[test]
    fn classification_partitions_instructions(seed in 0u64..10_000) {
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let nic = nfcc::compile_module(&m);
        for nf in &nic.funcs {
            for nb in &nf.blocks {
                let libcalls =
                    nb.insts.iter().filter(|i| i.is_libcall()).count() as u32;
                prop_assert_eq!(
                    nb.compute_count() + nb.mem_count() + libcalls,
                    nb.insts.len() as u32
                );
                for i in &nb.insts {
                    prop_assert!(!i.mnemonic().is_empty());
                }
            }
            prop_assert!(!nfcc::print_asm(nf).is_empty());
        }
    }
}
