//! Exact solver for capacitated assignment ILPs.
//!
//! Clara's NF state placement (Section 4.3 of the paper) is an integer
//! linear program: place each stateful data structure `i` (size `s_i`,
//! access frequency `f_i`) into one memory level `j` (latency `L_j`,
//! capacity `C_j`), minimizing `Σ L_j · p_ij · f_i` subject to each
//! structure being placed exactly once and capacities being respected.
//!
//! With costs `c_ij = L_j · f_i` this is a *generalized assignment
//! problem*. Instances are tiny (an NF has a handful of data structures
//! and a NIC has four memory levels), so this crate solves them exactly by
//! depth-first branch and bound with an admissible lower bound; "ILP
//! solving finishes within a few seconds in all cases" (paper Section 5.5)
//! — here, microseconds.
//!
//! The canonical entry points are [`AssignmentProblem::solve_within`]
//! (exact, with a node budget so a pathological instance surfaces as a
//! typed solver-timeout instead of a hang) and
//! [`AssignmentProblem::solve_greedy`] (the cheapest-fitting-bin
//! heuristic the exact solver seeds itself with, exposed so callers can
//! difftest plans against the fallback). The panicking
//! [`AssignmentProblem::solve`] is a deprecated shim kept for one
//! release.
//!
//! # Examples
//!
//! ```
//! use ilp_solver::AssignmentProblem;
//!
//! // Two items, one cheap bin that only fits one of them.
//! let p = AssignmentProblem {
//!     costs: vec![vec![1.0, 10.0], vec![2.0, 10.0]],
//!     sizes: vec![6, 6],
//!     caps: vec![8, 100],
//! };
//! let sol = p.solve_within(1 << 20).unwrap().expect("feasible");
//! assert_eq!(sol.cost, 11.0); // item 0 in cheap bin, item 1 overflowed
//! ```

use std::fmt;

/// A capacitated assignment problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentProblem {
    /// `costs[i][j]`: cost of placing item `i` at location `j`.
    /// Use `f64::INFINITY` to forbid a placement.
    pub costs: Vec<Vec<f64>>,
    /// Item sizes.
    pub sizes: Vec<u64>,
    /// Location capacities.
    pub caps: Vec<u64>,
}

/// Deprecated alias for [`AssignmentProblem`], kept one release so
/// facade-path callers migrate to `clara_core::placement::plan`.
#[deprecated(note = "use AssignmentProblem (or clara_core::placement::plan) instead")]
pub type IlpProblem = AssignmentProblem;

/// A feasible assignment and its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// `assignment[i]` = location chosen for item `i`.
    pub assignment: Vec<usize>,
    /// Total cost of the assignment.
    pub cost: f64,
}

/// Errors for malformed instances or an exhausted search budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IlpError {
    /// `costs` rows have inconsistent lengths or mismatch `caps`.
    ShapeMismatch,
    /// `sizes.len() != costs.len()`.
    SizeMismatch,
    /// The branch-and-bound search exceeded its node budget before
    /// proving optimality (the placement layer reports this as a solver
    /// timeout).
    BudgetExhausted {
        /// The node budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::ShapeMismatch => write!(f, "cost matrix shape mismatch"),
            IlpError::SizeMismatch => write!(f, "sizes length mismatch"),
            IlpError::BudgetExhausted { budget } => {
                write!(f, "search budget of {budget} nodes exhausted")
            }
        }
    }
}

impl std::error::Error for IlpError {}

impl AssignmentProblem {
    /// Validates the instance shape.
    pub fn validate(&self) -> Result<(), IlpError> {
        if self.sizes.len() != self.costs.len() {
            return Err(IlpError::SizeMismatch);
        }
        if self.costs.iter().any(|row| row.len() != self.caps.len()) {
            return Err(IlpError::ShapeMismatch);
        }
        Ok(())
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.sizes.len()
    }

    /// Number of locations.
    pub fn locations(&self) -> usize {
        self.caps.len()
    }

    /// Solves the instance exactly; `Ok(None)` when infeasible.
    ///
    /// The depth-first search visits at most `node_budget` nodes; if the
    /// budget runs out before the search completes, the instance is
    /// reported as [`IlpError::BudgetExhausted`] rather than returning a
    /// possibly suboptimal incumbent. Malformed instances return the
    /// corresponding [`IlpError`] instead of panicking.
    pub fn solve_within(&self, node_budget: u64) -> Result<Option<Solution>, IlpError> {
        self.validate()?;
        let n = self.items();
        if n == 0 {
            return Ok(Some(Solution {
                assignment: Vec::new(),
                cost: 0.0,
            }));
        }

        // Branch on items in decreasing size order (fail fast on capacity).
        let order = branch_order(self);

        // Admissible per-item lower bounds: cheapest location that could
        // fit the item alone.
        let min_cost: Vec<f64> = (0..n)
            .map(|i| {
                (0..self.locations())
                    .filter(|&j| self.sizes[i] <= self.caps[j])
                    .map(|j| self.costs[i][j])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        if min_cost.iter().any(|c| c.is_infinite()) {
            return Ok(None); // Some item fits nowhere.
        }
        // Suffix bounds over the branching order.
        let mut suffix = vec![0.0; n + 1];
        for k in (0..n).rev() {
            suffix[k] = suffix[k + 1] + min_cost[order[k]];
        }

        let mut best: Option<Solution> = greedy(self, &order);
        let mut search = Search {
            p: self,
            order: &order,
            suffix: &suffix,
            remaining: self.caps.clone(),
            assign: vec![usize::MAX; n],
            best,
            budget: node_budget,
            nodes: 0,
        };
        let completed = search.branch(0, 0.0);
        best = search.best;
        if completed {
            Ok(best)
        } else {
            Err(IlpError::BudgetExhausted {
                budget: node_budget,
            })
        }
    }

    /// The greedy fallback: items in decreasing size order, each into the
    /// cheapest location it still fits in. `Ok(None)` when the heuristic
    /// strands an item (the exact solver may still find a feasible
    /// assignment). Never worse than [`AssignmentProblem::solve_within`]
    /// on feasibility-agreeing instances, and never better on cost.
    pub fn solve_greedy(&self) -> Result<Option<Solution>, IlpError> {
        self.validate()?;
        Ok(greedy(self, &branch_order(self)))
    }

    /// Solves the instance exactly; `None` when infeasible.
    ///
    /// # Panics
    ///
    /// Panics if the instance fails [`AssignmentProblem::validate`].
    #[deprecated(note = "use solve_within (typed errors, node budget) instead")]
    pub fn solve(&self) -> Option<Solution> {
        match self.solve_within(u64::MAX) {
            Ok(sol) => sol,
            Err(IlpError::BudgetExhausted { .. }) => unreachable!("unbounded budget"),
            Err(_) => panic!("malformed assignment problem"),
        }
    }

    /// Brute-force optimum (for testing; exponential in items).
    pub fn brute_force(&self) -> Option<Solution> {
        self.validate().expect("malformed assignment problem");
        let n = self.items();
        let t = self.locations();
        if n == 0 {
            return Some(Solution {
                assignment: Vec::new(),
                cost: 0.0,
            });
        }
        let mut best: Option<Solution> = None;
        let mut assign = vec![0usize; n];
        loop {
            // Evaluate.
            let mut used = vec![0u64; t];
            let mut cost = 0.0;
            let mut ok = true;
            for i in 0..n {
                used[assign[i]] += self.sizes[i];
                cost += self.costs[i][assign[i]];
            }
            for (u, c) in used.iter().zip(self.caps.iter()) {
                if u > c {
                    ok = false;
                }
            }
            if ok && cost.is_finite() && best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(Solution {
                    assignment: assign.clone(),
                    cost,
                });
            }
            // Next combination (odometer).
            let mut k = 0;
            loop {
                if k == n {
                    return best;
                }
                assign[k] += 1;
                if assign[k] < t {
                    break;
                }
                assign[k] = 0;
                k += 1;
            }
        }
    }
}

/// Items in decreasing size order: both the branching order and the
/// greedy packing order, so the two strategies explore the same sequence.
fn branch_order(p: &AssignmentProblem) -> Vec<usize> {
    let mut order: Vec<usize> = (0..p.items()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(p.sizes[i]));
    order
}

fn greedy(p: &AssignmentProblem, order: &[usize]) -> Option<Solution> {
    let mut remaining = p.caps.clone();
    let mut assign = vec![usize::MAX; p.items()];
    let mut cost = 0.0;
    for &i in order {
        let mut best_j: Option<usize> = None;
        for (j, rem) in remaining.iter().enumerate() {
            if p.sizes[i] <= *rem
                && p.costs[i][j].is_finite()
                && best_j.is_none_or(|bj| p.costs[i][j] < p.costs[i][bj])
            {
                best_j = Some(j);
            }
        }
        let j = best_j?;
        assign[i] = j;
        remaining[j] -= p.sizes[i];
        cost += p.costs[i][j];
    }
    Some(Solution {
        assignment: assign,
        cost,
    })
}

struct Search<'a> {
    p: &'a AssignmentProblem,
    order: &'a [usize],
    suffix: &'a [f64],
    remaining: Vec<u64>,
    assign: Vec<usize>,
    best: Option<Solution>,
    budget: u64,
    nodes: u64,
}

impl Search<'_> {
    /// Returns `false` when the node budget ran out (search incomplete).
    fn branch(&mut self, depth: usize, cost: f64) -> bool {
        self.nodes += 1;
        if self.nodes > self.budget {
            return false;
        }
        if let Some(b) = &self.best {
            if cost + self.suffix[depth] >= b.cost - 1e-12 {
                return true; // Bound.
            }
        }
        if depth == self.order.len() {
            if self.best.as_ref().is_none_or(|b| cost < b.cost) {
                self.best = Some(Solution {
                    assignment: self.assign.clone(),
                    cost,
                });
            }
            return true;
        }
        let i = self.order[depth];
        // Try locations cheapest-first for this item.
        let mut locs: Vec<usize> = (0..self.p.locations())
            .filter(|&j| self.p.sizes[i] <= self.remaining[j] && self.p.costs[i][j].is_finite())
            .collect();
        locs.sort_by(|&a, &b| {
            self.p.costs[i][a]
                .partial_cmp(&self.p.costs[i][b])
                .expect("finite costs")
        });
        for j in locs {
            self.assign[i] = j;
            self.remaining[j] -= self.p.sizes[i];
            let ok = self.branch(depth + 1, cost + self.p.costs[i][j]);
            self.remaining[j] += self.p.sizes[i];
            self.assign[i] = usize::MAX;
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance_is_trivially_solved() {
        let p = AssignmentProblem {
            costs: vec![],
            sizes: vec![],
            caps: vec![10],
        };
        let s = p.solve_within(1).unwrap().unwrap();
        assert_eq!(s.cost, 0.0);
    }

    #[test]
    fn respects_capacities() {
        // Both items prefer bin 0 but only one fits.
        let p = AssignmentProblem {
            costs: vec![vec![1.0, 5.0], vec![1.0, 3.0]],
            sizes: vec![4, 4],
            caps: vec![4, 100],
        };
        let s = p.solve_within(1 << 20).unwrap().unwrap();
        // Optimal: item 0 in bin 0 (1.0), item 1 in bin 1 (3.0) = 4.0.
        assert_eq!(s.cost, 4.0);
        assert_eq!(s.assignment, vec![0, 1]);
    }

    #[test]
    fn infeasible_returns_none() {
        let p = AssignmentProblem {
            costs: vec![vec![1.0]],
            sizes: vec![10],
            caps: vec![5],
        };
        assert!(p.solve_within(1 << 20).unwrap().is_none());
    }

    #[test]
    fn forbidden_placements_are_skipped() {
        let p = AssignmentProblem {
            costs: vec![vec![f64::INFINITY, 2.0]],
            sizes: vec![1],
            caps: vec![10, 10],
        };
        let s = p.solve_within(1 << 20).unwrap().unwrap();
        assert_eq!(s.assignment, vec![1]);
    }

    #[test]
    fn matches_brute_force_on_fixed_instance() {
        let p = AssignmentProblem {
            costs: vec![
                vec![3.0, 7.0, 11.0],
                vec![2.0, 5.0, 9.0],
                vec![8.0, 4.0, 1.0],
                vec![6.0, 6.0, 2.0],
            ],
            sizes: vec![3, 5, 2, 4],
            caps: vec![6, 6, 6],
        };
        let a = p.solve_within(1 << 20).unwrap().unwrap();
        let b = p.brute_force().unwrap();
        assert!((a.cost - b.cost).abs() < 1e-9, "{} vs {}", a.cost, b.cost);
    }

    #[test]
    fn greedy_is_feasible_but_never_cheaper_than_exact() {
        let p = AssignmentProblem {
            costs: vec![
                vec![3.0, 7.0, 11.0],
                vec![2.0, 5.0, 9.0],
                vec![8.0, 4.0, 1.0],
                vec![6.0, 6.0, 2.0],
            ],
            sizes: vec![3, 5, 2, 4],
            caps: vec![6, 6, 6],
        };
        let g = p.solve_greedy().unwrap().unwrap();
        let e = p.solve_within(1 << 20).unwrap().unwrap();
        assert!(e.cost <= g.cost + 1e-12, "{} vs {}", e.cost, g.cost);
        // Greedy respects capacities too.
        let mut used = vec![0u64; p.locations()];
        for (i, &j) in g.assignment.iter().enumerate() {
            used[j] += p.sizes[i];
        }
        for (u, c) in used.iter().zip(p.caps.iter()) {
            assert!(u <= c);
        }
    }

    #[test]
    fn tiny_node_budget_reports_exhaustion() {
        let p = AssignmentProblem {
            costs: vec![
                vec![3.0, 7.0, 11.0],
                vec![2.0, 5.0, 9.0],
                vec![8.0, 4.0, 1.0],
                vec![6.0, 6.0, 2.0],
            ],
            sizes: vec![3, 5, 2, 4],
            caps: vec![6, 6, 6],
        };
        match p.solve_within(1) {
            Err(IlpError::BudgetExhausted { budget: 1 }) => {}
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn malformed_instance_is_a_typed_error() {
        let p = AssignmentProblem {
            costs: vec![vec![1.0, 2.0]],
            sizes: vec![1, 2],
            caps: vec![5, 5],
        };
        assert_eq!(p.solve_within(1 << 20), Err(IlpError::SizeMismatch));
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn deprecated_solve_still_panics_on_malformed_instance() {
        let p = AssignmentProblem {
            costs: vec![vec![1.0, 2.0]],
            sizes: vec![1, 2],
            caps: vec![5, 5],
        };
        #[allow(deprecated)]
        let _ = p.solve();
    }
}
