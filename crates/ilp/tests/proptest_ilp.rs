//! Property tests: branch-and-bound matches brute force on small instances.

use ilp_solver::AssignmentProblem;
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = AssignmentProblem> {
    (1usize..6, 1usize..4).prop_flat_map(|(n, t)| {
        (
            proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, t..=t), n..=n),
            proptest::collection::vec(1u64..20, n..=n),
            proptest::collection::vec(1u64..40, t..=t),
        )
            .prop_map(|(costs, sizes, caps)| AssignmentProblem { costs, sizes, caps })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solve_matches_brute_force(p in arb_problem()) {
        let exact = p.solve_within(u64::MAX).expect("well-formed instance");
        let brute = p.brute_force();
        match (exact, brute) {
            (Some(a), Some(b)) => {
                prop_assert!((a.cost - b.cost).abs() < 1e-9,
                    "solver {} vs brute {}", a.cost, b.cost);
                // And the reported assignment really has the reported cost
                // and is feasible.
                let mut used = vec![0u64; p.caps.len()];
                let mut cost = 0.0;
                for (i, &j) in a.assignment.iter().enumerate() {
                    used[j] += p.sizes[i];
                    cost += p.costs[i][j];
                }
                for (j, &u) in used.iter().enumerate() {
                    prop_assert!(u <= p.caps[j], "capacity violated at {j}");
                }
                prop_assert!((cost - a.cost).abs() < 1e-9);
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn greedy_never_beats_exact(p in arb_problem()) {
        let exact = p.solve_within(u64::MAX).expect("well-formed instance");
        let greedy = p.solve_greedy().expect("well-formed instance");
        match (exact, greedy) {
            (Some(e), Some(g)) => prop_assert!(
                e.cost <= g.cost + 1e-9, "exact {} vs greedy {}", e.cost, g.cost),
            // Greedy can strand an item the exact solver places; the
            // converse would be a bug.
            (Some(_), None) => {}
            (None, None) => {}
            (None, Some(g)) => prop_assert!(false, "greedy found {g:?} on infeasible instance"),
        }
    }
}
