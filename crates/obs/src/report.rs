//! Run reports: one JSON document per run, spans + metrics.

use std::io;
use std::path::{Path, PathBuf};

use crate::json;
use crate::metrics::{self, HistSummary};
use crate::span;

/// One node of the captured span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (stage label).
    pub name: String,
    /// Free-form detail attached at creation (may be empty).
    pub detail: String,
    /// Start, nanoseconds since the process's telemetry epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the epoch (start for still-open spans).
    pub end_ns: u64,
    /// Nested spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall-clock nanoseconds covered by the span.
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Depth-first search by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// A point-in-time snapshot of the whole telemetry state.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// `(name, value, volatile)` for every registered counter.
    pub counters: Vec<(String, u64, bool)>,
    /// `(name, value, volatile)` for every registered gauge.
    pub gauges: Vec<(String, f64, bool)>,
    /// `(name, summary, volatile)` for every non-empty histogram.
    pub histograms: Vec<(String, HistSummary, bool)>,
    /// Root spans (each with its subtree), in start order.
    pub spans: Vec<SpanNode>,
}

impl RunReport {
    /// Snapshots the current spans and metrics.
    pub fn capture() -> RunReport {
        let recs = span::snapshot();
        // Build the forest bottom-up: records are in start order, so a
        // child's parent always precedes it.
        let mut nodes: Vec<Option<SpanNode>> = recs
            .iter()
            .map(|r| {
                Some(SpanNode {
                    name: r.name.clone(),
                    detail: r.detail.clone(),
                    start_ns: r.start_ns,
                    end_ns: r.end_ns,
                    children: Vec::new(),
                })
            })
            .collect();
        let mut roots = Vec::new();
        for i in (0..recs.len()).rev() {
            let node = nodes[i].take().expect("node taken once");
            let parent = recs[i].parent as usize;
            match parent.checked_sub(1).and_then(|p| nodes.get_mut(p)) {
                Some(Some(p)) => p.children.insert(0, node),
                // Parent slot already consumed (malformed nesting) or 0:
                // treat as a root.
                _ => roots.insert(0, node),
            }
        }
        RunReport {
            counters: metrics::counters_snapshot(),
            gauges: metrics::gauges_snapshot(),
            histograms: metrics::histograms_snapshot(),
            spans: roots,
        }
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _, _)| n == name).map(|&(_, v, _)| v)
    }

    /// Depth-first search across all root spans.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Full JSON serialization: every metric (volatile included) and the
    /// span tree with timestamps. Compact, keys in fixed order.
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    /// Deterministic JSON serialization: volatile metrics and all
    /// timestamps are dropped, and span children are sorted by
    /// `(name, detail)`, so byte-identical work produces byte-identical
    /// output regardless of worker count or scheduling.
    pub fn to_json_deterministic(&self) -> String {
        self.render(false)
    }

    fn render(&self, full: bool) -> String {
        let mut out = String::new();
        out.push('{');
        let mut first = true;

        json::push_key(&mut out, &mut first, "counters");
        out.push('{');
        let mut f = true;
        for (name, v, volatile) in &self.counters {
            if *volatile && !full {
                continue;
            }
            json::push_key(&mut out, &mut f, name);
            json::push_u64(&mut out, *v);
        }
        out.push('}');

        json::push_key(&mut out, &mut first, "gauges");
        out.push('{');
        let mut f = true;
        for (name, v, volatile) in &self.gauges {
            if *volatile && !full {
                continue;
            }
            json::push_key(&mut out, &mut f, name);
            json::push_f64(&mut out, *v);
        }
        out.push('}');

        json::push_key(&mut out, &mut first, "histograms");
        out.push('{');
        let mut f = true;
        for (name, s, volatile) in &self.histograms {
            if *volatile && !full {
                continue;
            }
            json::push_key(&mut out, &mut f, name);
            render_summary(&mut out, s);
        }
        out.push('}');

        json::push_key(&mut out, &mut first, "spans");
        if full {
            render_spans(&mut out, &self.spans, true);
        } else {
            let mut sorted = self.spans.clone();
            sort_spans(&mut sorted);
            render_spans(&mut out, &sorted, false);
        }

        out.push('}');
        out
    }

    /// Writes [`RunReport::to_json`] (plus a trailing newline) to `path`,
    /// creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut json = self.to_json();
        json.push('\n');
        std::fs::write(path, json)
    }
}

fn render_summary(out: &mut String, s: &HistSummary) {
    out.push('{');
    let mut f = true;
    json::push_key(out, &mut f, "count");
    json::push_u64(out, s.count);
    json::push_key(out, &mut f, "max");
    json::push_f64(out, s.max);
    json::push_key(out, &mut f, "mean");
    json::push_f64(out, s.mean);
    json::push_key(out, &mut f, "min");
    json::push_f64(out, s.min);
    json::push_key(out, &mut f, "p50");
    json::push_f64(out, s.p50);
    json::push_key(out, &mut f, "p95");
    json::push_f64(out, s.p95);
    json::push_key(out, &mut f, "p99");
    json::push_f64(out, s.p99);
    out.push('}');
}

fn render_spans(out: &mut String, spans: &[SpanNode], full: bool) {
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut f = true;
        json::push_key(out, &mut f, "children");
        render_spans(out, &s.children, full);
        json::push_key(out, &mut f, "detail");
        json::push_str(out, &s.detail);
        json::push_key(out, &mut f, "name");
        json::push_str(out, &s.name);
        if full {
            json::push_key(out, &mut f, "start_ns");
            json::push_u64(out, s.start_ns);
            json::push_key(out, &mut f, "wall_ns");
            json::push_u64(out, s.wall_ns());
        }
        out.push('}');
    }
    out.push(']');
}

fn sort_spans(spans: &mut [SpanNode]) {
    for s in spans.iter_mut() {
        sort_spans(&mut s.children);
    }
    spans.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.detail.cmp(&b.detail)));
}

// ---- sinks -------------------------------------------------------------

/// Reads the `CLARA_REPORT` sink, if configured (non-empty).
pub fn sink_from_env() -> Option<String> {
    std::env::var("CLARA_REPORT")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

/// Resolves a raw sink string to a concrete file path:
///
/// - `"1"`/`"true"` (bare opt-in) → `default_name` in the current
///   directory;
/// - an existing directory → `<dir>/<default_name>`;
/// - anything else → used as the file path verbatim.
pub fn resolve_sink(raw: &str, default_name: &str) -> PathBuf {
    let raw = raw.trim();
    if raw == "1" || raw.eq_ignore_ascii_case("true") {
        return PathBuf::from(default_name);
    }
    let p = PathBuf::from(raw);
    if p.is_dir() {
        p.join(default_name)
    } else {
        p
    }
}
