//! Hierarchical timed spans.
//!
//! Every open span is appended to one process-global record list; its
//! guard closes it (fills the end timestamp) on drop. Parent links come
//! from a thread-local "current span" by default, or explicitly from a
//! [`SpanHandle`] via [`span_under`] — the explicit form is what keeps
//! the span *tree* identical between serial and parallel runs: work that
//! moves to a spawned thread parents itself to the same handle it would
//! have nested under inline.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One recorded span. Ids are 1-based indices into the record list;
/// parent 0 means "root".
#[derive(Debug, Clone)]
pub(crate) struct SpanRec {
    pub(crate) name: String,
    pub(crate) detail: String,
    pub(crate) parent: u64,
    pub(crate) start_ns: u64,
    pub(crate) end_ns: u64,
}

static SPANS: OnceLock<Mutex<Vec<SpanRec>>> = OnceLock::new();
/// Bumped by [`reset_spans`]; guards from an earlier generation skip
/// their close-out write instead of clobbering a recycled slot.
static GENERATION: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// An addressable reference to an open span, usable across threads.
#[derive(Debug, Clone, Copy)]
pub struct SpanHandle {
    id: u64,
}

impl SpanHandle {
    /// Raw record id (0 for root / disarmed handles).
    pub(crate) fn id(self) -> u64 {
        self.id
    }
}

/// Raw id of the current thread's innermost open span (0 when none).
pub(crate) fn current_id() -> u64 {
    CURRENT.with(Cell::get)
}

/// The current thread's innermost open span (id 0 when none).
pub fn current() -> SpanHandle {
    SpanHandle {
        id: CURRENT.with(Cell::get),
    }
}

/// Closes its span on drop. Obtained from [`span`]/[`span_under`] or the
/// [`crate::span!`] macro; a *disarmed* guard (recording disabled) does
/// nothing.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    id: u64,
    prev: u64,
    gen: u64,
}

impl SpanGuard {
    /// A guard that records nothing (used when the layer is disabled).
    pub fn disarmed() -> SpanGuard {
        SpanGuard {
            id: 0,
            prev: 0,
            gen: 0,
        }
    }

    /// Handle other threads (or later siblings) can parent under.
    pub fn handle(&self) -> SpanHandle {
        SpanHandle { id: self.id }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        CURRENT.with(|c| c.set(self.prev));
        if self.gen != GENERATION.load(Ordering::SeqCst) {
            return; // The record list was reset while this span was open.
        }
        let end = now_ns();
        let mut spans = SPANS.get_or_init(Mutex::default).lock().expect("spans poisoned");
        if let Some(rec) = spans.get_mut(self.id as usize - 1) {
            rec.end_ns = end;
        }
    }
}

fn open(name: &str, detail: &str, parent: u64) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disarmed();
    }
    let start = now_ns();
    let gen = GENERATION.load(Ordering::SeqCst);
    let id = {
        let mut spans = SPANS.get_or_init(Mutex::default).lock().expect("spans poisoned");
        spans.push(SpanRec {
            name: name.to_string(),
            detail: detail.to_string(),
            parent,
            start_ns: start,
            end_ns: 0,
        });
        spans.len() as u64
    };
    let prev = CURRENT.with(|c| c.replace(id));
    SpanGuard { id, prev, gen }
}

/// Opens a span under the current thread's innermost open span.
pub fn span(name: &str) -> SpanGuard {
    open(name, "", CURRENT.with(Cell::get))
}

/// Opens a span with a detail string (prefer the [`crate::span!`] macro,
/// which skips formatting while disabled).
pub fn span_detail(name: &str, detail: &str) -> SpanGuard {
    open(name, detail, CURRENT.with(Cell::get))
}

/// Opens a span under an explicit parent, regardless of which thread is
/// running. This is how spawned branches keep the span tree identical to
/// a serial run.
pub fn span_under(parent: SpanHandle, name: &str) -> SpanGuard {
    open(name, "", parent.id)
}

/// Restores the thread's previous span context on drop (see [`attach`]).
pub struct ContextGuard {
    prev: u64,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Re-parents this thread's span context under `parent` without opening
/// a new span. Worker pools attach each worker to the dispatching
/// stage's span so that spans opened inside tasks nest exactly where
/// they would in a serial run.
pub fn attach(parent: SpanHandle) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(parent.id));
    ContextGuard { prev }
}

/// Drops every recorded span and invalidates outstanding guards.
pub(crate) fn reset_spans() {
    let mut spans = SPANS.get_or_init(Mutex::default).lock().expect("spans poisoned");
    GENERATION.fetch_add(1, Ordering::SeqCst);
    spans.clear();
}

/// Extracts the (closed) span subtree rooted at record `root` as a
/// timestamp-free [`crate::CapturedSpan`] tree.
///
/// Membership is computed by parent links: a record belongs to the
/// subtree when its parent does. Children always carry larger ids than
/// their parent (they open later), so one ascending pass suffices;
/// unrelated spans recorded concurrently by other threads parent outside
/// the subtree and are skipped.
pub(crate) fn extract_subtree(root: u64) -> Option<crate::CapturedSpan> {
    use std::collections::{BTreeMap, BTreeSet};
    let spans = SPANS.get_or_init(Mutex::default).lock().expect("spans poisoned");
    let n = spans.len() as u64;
    if root == 0 || root > n {
        return None;
    }
    let mut members: BTreeSet<u64> = BTreeSet::new();
    members.insert(root);
    let mut kids: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for id in (root + 1)..=n {
        let rec = &spans[(id - 1) as usize];
        if members.contains(&rec.parent) {
            members.insert(id);
            kids.entry(rec.parent).or_default().push(id);
        }
    }
    fn build(id: u64, spans: &[SpanRec], kids: &std::collections::BTreeMap<u64, Vec<u64>>) -> crate::CapturedSpan {
        let rec = &spans[(id - 1) as usize];
        crate::CapturedSpan {
            name: rec.name.clone(),
            detail: rec.detail.clone(),
            children: kids
                .get(&id)
                .map(|c| c.iter().map(|&k| build(k, spans, kids)).collect())
                .unwrap_or_default(),
        }
    }
    Some(build(root, &spans, &kids))
}

/// Re-inserts a captured subtree under `parent` as zero-length spans
/// stamped "now". No-op while recording is disabled (live recording
/// would have recorded nothing either).
pub(crate) fn replay_subtree(parent: u64, node: &crate::CapturedSpan) {
    if !crate::enabled() {
        return;
    }
    let now = now_ns();
    let mut spans = SPANS.get_or_init(Mutex::default).lock().expect("spans poisoned");
    fn push(spans: &mut Vec<SpanRec>, parent: u64, node: &crate::CapturedSpan, now: u64) {
        spans.push(SpanRec {
            name: node.name.clone(),
            detail: node.detail.clone(),
            parent,
            start_ns: now,
            end_ns: now,
        });
        let id = spans.len() as u64;
        for c in &node.children {
            push(spans, id, c, now);
        }
    }
    push(&mut spans, parent, node, now);
}

/// Snapshot of the raw records (open spans get `end_ns = start_ns`).
pub(crate) fn snapshot() -> Vec<SpanRec> {
    let Some(m) = SPANS.get() else { return Vec::new() };
    m.lock()
        .expect("spans poisoned")
        .iter()
        .map(|r| {
            let mut r = r.clone();
            if r.end_ns == 0 {
                r.end_ns = r.start_ns;
            }
            r
        })
        .collect()
}
