//! Capture and replay of deterministic telemetry around memoized work.
//!
//! The engine's persistent artifact cache skips a compile or profiling
//! run on a warm hit — but the skipped work would have produced
//! deterministic counters (`nfcc.modules_compiled`, `nicsim.*`) and
//! spans that the deterministic run report pins byte-for-byte. To keep a
//! warm run's deterministic report identical to a cold run's, the cache
//! stores the telemetry the computation produced and replays it on every
//! hit:
//!
//! - [`capture_telemetry`] runs a closure with a thread-local capture
//!   frame active. Every **deterministic** counter increment made on this
//!   thread is accumulated into the frame, and (while recording is
//!   enabled) a marker span wraps the closure so its span subtree can be
//!   extracted afterwards. Volatile metrics are never captured — they
//!   are timing-derived and excluded from deterministic reports anyway.
//! - [`replay_telemetry`] re-applies the captured counter deltas and
//!   (while recording is enabled) re-inserts the span subtree under the
//!   current span, with zero-length timestamps.
//!
//! Frames nest: an inner capture also feeds every outer frame, so a
//! nested memoized computation attributes its telemetry to both
//! artifacts. With no frame active, [`Counter::add`](crate::Counter::add)
//! pays one thread-local read — the layer stays effectively free.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::span;

/// A span subtree captured with a computation. Only names, details, and
/// structure are kept: timestamps are volatile and are re-stamped (as
/// zero-length spans) on replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapturedSpan {
    /// Span name.
    pub name: String,
    /// Detail string attached at creation.
    pub detail: String,
    /// Nested spans, in start order.
    pub children: Vec<CapturedSpan>,
}

/// Deterministic telemetry produced by one captured computation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapturedTelemetry {
    /// Name-sorted deltas of every deterministic counter the computation
    /// incremented on the capturing thread.
    pub counters: Vec<(String, u64)>,
    /// The marker span's subtree, when recording was enabled.
    pub span: Option<CapturedSpan>,
    /// Whether span recording was enabled during capture. A consumer
    /// that needs spans (recording now enabled) must treat an
    /// `enabled: false` capture as incomplete and recompute.
    pub enabled: bool,
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static FRAMES: RefCell<Vec<BTreeMap<String, u64>>> = const { RefCell::new(Vec::new()) };
}

/// Feeds a deterministic counter increment into every active capture
/// frame on this thread (called by [`crate::Counter::add`]).
pub(crate) fn note_counter(name: &str, n: u64) {
    if n == 0 || DEPTH.with(Cell::get) == 0 {
        return;
    }
    FRAMES.with(|f| {
        for frame in f.borrow_mut().iter_mut() {
            *frame.entry(name.to_string()).or_insert(0) += n;
        }
    });
}

/// Pops the innermost frame even if the computation unwinds (a panicked
/// attempt simply loses its telemetry; the retry recaptures).
struct FrameGuard;

impl Drop for FrameGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        FRAMES.with(|f| {
            f.borrow_mut().pop();
        });
    }
}

/// Runs `f` with a capture frame active and returns its result together
/// with the deterministic telemetry it produced on this thread.
///
/// While recording is enabled, a marker span named `span_name` (with
/// `span_detail`) wraps the closure and is returned — subtree included —
/// as [`CapturedTelemetry::span`]; replaying recreates the identical
/// deterministic span rendering.
pub fn capture_telemetry<R>(
    span_name: &str,
    span_detail: &str,
    f: impl FnOnce() -> R,
) -> (R, CapturedTelemetry) {
    let enabled = crate::enabled();
    let guard = if enabled {
        crate::span_detail(span_name, span_detail)
    } else {
        crate::SpanGuard::disarmed()
    };
    let root_id = guard.handle().id();
    FRAMES.with(|f| f.borrow_mut().push(BTreeMap::new()));
    DEPTH.with(|d| d.set(d.get() + 1));
    let fg = FrameGuard;
    let r = f();
    let counters_map = FRAMES.with(|f| f.borrow().last().cloned().unwrap_or_default());
    drop(fg);
    drop(guard); // close the marker span before extracting its subtree
    let span = if enabled {
        span::extract_subtree(root_id)
    } else {
        None
    };
    (
        r,
        CapturedTelemetry {
            counters: counters_map.into_iter().collect(),
            span,
            enabled,
        },
    )
}

/// Re-applies captured telemetry: counter deltas always, the span
/// subtree only while recording is enabled (mirroring live behaviour —
/// a disabled run records no spans either way).
pub fn replay_telemetry(t: &CapturedTelemetry) {
    for (name, delta) in &t.counters {
        crate::counter(name).add(*delta);
    }
    if crate::enabled() {
        if let Some(s) = &t.span {
            span::replay_subtree(span::current_id(), s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_capture_and_replay() {
        let (out, tel) = capture_telemetry("cap-test", "", || {
            crate::counter("cap.test.det").add(3);
            crate::volatile_counter("cap.test.vol").add(9);
            crate::counter("cap.test.det").incr();
            7u32
        });
        assert_eq!(out, 7);
        assert_eq!(tel.counters, vec![("cap.test.det".to_string(), 4)]);
        let before = crate::counter("cap.test.det").value();
        replay_telemetry(&tel);
        assert_eq!(crate::counter("cap.test.det").value(), before + 4);
    }

    #[test]
    fn nested_frames_feed_outer_captures() {
        let ((), outer) = capture_telemetry("cap-outer", "", || {
            let ((), inner) = capture_telemetry("cap-inner", "", || {
                crate::counter("cap.nested").add(2);
            });
            assert_eq!(inner.counters, vec![("cap.nested".to_string(), 2)]);
        });
        assert_eq!(outer.counters, vec![("cap.nested".to_string(), 2)]);
    }
}
