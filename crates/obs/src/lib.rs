//! `clara-obs`: dependency-free structured telemetry for the Clara
//! workspace.
//!
//! Three primitives, one process-global registry:
//!
//! - **spans** ([`span!`], [`span_under`]): hierarchical timed regions
//!   with start/stop timestamps and parent links. Spans are recorded only
//!   while the layer is [`enable`]d; a disabled span is a single atomic
//!   load and no allocation.
//! - **metrics** ([`counter`], [`gauge`], [`histogram`]): monotonic
//!   counters, last-write gauges, and histogram summaries (`p50`/`p95`/
//!   `max`). Counters and gauges are always live — they are bare atomics,
//!   cheap enough for the simulator's per-profile-run flushes — while
//!   histograms only record samples when enabled (observing allocates).
//! - **[`RunReport`]**: a snapshot of the span tree plus every metric,
//!   serialized to JSON. [`RunReport::to_json_deterministic`] drops all
//!   timing-derived data (and metrics registered as *volatile*) so two
//!   runs that do the same work byte-identically produce byte-identical
//!   reports regardless of worker count — the property
//!   `tests/engine_determinism.rs` pins.
//!
//! # Determinism contract
//!
//! Metrics come in two flavours. *Deterministic* metrics ([`counter`],
//! [`gauge`], [`histogram`]) must only ever receive values that are a
//! pure function of the work performed (task counts, simulated cycles,
//! epoch losses). *Volatile* metrics ([`volatile_counter`],
//! [`volatile_gauge`], [`volatile_histogram`]) may receive wall-clock
//! durations, per-worker attribution, or anything else that varies
//! between identical runs; they appear in [`RunReport::to_json`] but are
//! excluded from the deterministic serialization.
//!
//! # Why not `tracing`?
//!
//! The build environment is offline, and the telemetry must not perturb
//! the engine's bit-identical parallel-vs-serial guarantee; a ~500-line
//! purpose-built layer keeps both properties auditable.

pub mod capture;
mod json;
pub mod metrics;
pub mod report;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

pub use capture::{capture_telemetry, replay_telemetry, CapturedSpan, CapturedTelemetry};
pub use metrics::{
    counter, gauge, histogram, volatile_counter, volatile_gauge, volatile_histogram, Counter,
    Gauge, HistSummary, Histogram,
};
pub use report::{resolve_sink, sink_from_env, RunReport, SpanNode};
pub use span::{attach, current, span, span_detail, span_under, ContextGuard, SpanGuard, SpanHandle};

/// Master switch for the allocation-bearing parts (spans, histograms).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span and histogram recording on (counters/gauges are always on).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns span and histogram recording back off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether span/histogram recording is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every registered metric and drops all recorded spans.
///
/// Metric *handles* stay valid: the registry keeps its entries and zeroes
/// the shared cells in place, so `OnceLock`-cached [`Counter`]s in hot
/// code keep pointing at live storage across resets.
pub fn reset() {
    metrics::reset_all();
    span::reset_spans();
}

/// Opens a span: `span!("name")` or `span!("name", "detail {}", x)`.
///
/// The detail string is only formatted while the layer is enabled, so a
/// disabled call site costs one atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($arg:tt)*) => {
        if $crate::enabled() {
            $crate::span_detail($name, &format!($($arg)*))
        } else {
            $crate::SpanGuard::disarmed()
        }
    };
}
