//! Minimal JSON emission.
//!
//! Byte-compatible with the workspace's `serde_json` stand-in compact
//! renderer (same float formatting via `{:?}`, same escape set), so a
//! report parsed with `serde_json::parse_value` and re-rendered with
//! `serde_json::to_string` reproduces the original bytes — the round-trip
//! property `tests/observability.rs` pins. Kept local because `clara-obs`
//! is dependency-free by design.

use std::fmt::Write as _;

/// Appends a JSON string literal.
pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for an `f64` (`{:?}` is Rust's shortest exact
/// round-trip form; non-finite values become strings, matching the
/// `serde_json` stand-in).
pub(crate) fn push_f64(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("\"NaN\"");
    } else if f == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if f == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        let _ = write!(out, "{f:?}");
    }
}

/// Appends a JSON number for a `u64`.
pub(crate) fn push_u64(out: &mut String, u: u64) {
    let _ = write!(out, "{u}");
}

/// Appends `,` between elements and `"key":` before a value.
pub(crate) fn push_key(out: &mut String, first: &mut bool, key: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_str(out, key);
    out.push(':');
}
