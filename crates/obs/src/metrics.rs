//! Process-global metrics registry: counters, gauges, histograms.
//!
//! Handles are cheap `Arc` clones of the registered cell; hot code caches
//! them in `OnceLock` statics so the steady-state cost of a counter
//! update is a single relaxed atomic add — no lock, no allocation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter. Always live, even when the layer is disabled.
///
/// The handle carries its registered name and volatility so that
/// deterministic increments can feed the active
/// [capture frame](crate::capture_telemetry), if any.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    name: Arc<str>,
    volatile: bool,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
        if !self.volatile {
            crate::capture::note_counter(&self.name, n);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// The name this counter was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A last-write-wins gauge holding an `f64`. Always live.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// A histogram of `f64` samples, summarized as `p50`/`p95`/`p99`/`max`
/// in run reports. Samples are only recorded while the layer is enabled
/// (recording allocates).
#[derive(Clone)]
pub struct Histogram {
    samples: Arc<Mutex<Vec<f64>>>,
}

impl Histogram {
    /// Records a sample (no-op while the layer is disabled).
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        self.samples.lock().expect("histogram poisoned").push(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.lock().expect("histogram poisoned").len()
    }

    /// Summary of the recorded samples, or `None` when empty.
    pub fn summary(&self) -> Option<HistSummary> {
        HistSummary::from_samples(&self.samples.lock().expect("histogram poisoned"))
    }
}

/// Order-independent summary of a histogram's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean (summed in sorted order, so schedule-independent).
    pub mean: f64,
    /// Median (nearest-rank on the sorted samples).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank) — the serving layer's tail-latency
    /// headline number.
    pub p99: f64,
}

impl HistSummary {
    /// Computes a summary from raw samples; `None` when empty.
    ///
    /// The samples are sorted first, which makes every derived statistic
    /// — including the mean's floating-point summation order — a pure
    /// function of the sample *multiset*, not the arrival order.
    pub fn from_samples(samples: &[f64]) -> Option<HistSummary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let rank = |q: f64| sorted[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        Some(HistSummary {
            count: n as u64,
            min: sorted[0],
            max: sorted[n - 1],
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        })
    }
}

// ---- registry ----------------------------------------------------------

struct Registered<T> {
    cell: T,
    volatile: bool,
}

type Registry<T> = OnceLock<Mutex<BTreeMap<String, Registered<T>>>>;

static COUNTERS: Registry<Arc<AtomicU64>> = OnceLock::new();
static GAUGES: Registry<Arc<AtomicU64>> = OnceLock::new();
static HISTOGRAMS: Registry<Arc<Mutex<Vec<f64>>>> = OnceLock::new();

fn register<T: Clone>(reg: &Registry<T>, name: &str, volatile: bool, fresh: impl FnOnce() -> T) -> T {
    let mut guard = reg.get_or_init(Mutex::default).lock().expect("registry poisoned");
    if let Some(r) = guard.get(name) {
        return r.cell.clone();
    }
    let cell = fresh();
    guard.insert(
        name.to_string(),
        Registered {
            cell: cell.clone(),
            volatile,
        },
    );
    cell
}

/// Registers (or looks up) a **deterministic** counter: its value must be
/// a pure function of the work performed, never of timing or scheduling.
pub fn counter(name: &str) -> Counter {
    Counter {
        cell: register(&COUNTERS, name, false, || Arc::new(AtomicU64::new(0))),
        name: Arc::from(name),
        volatile: false,
    }
}

/// Registers (or looks up) a **volatile** counter (timings, per-worker
/// attribution); excluded from deterministic run reports.
pub fn volatile_counter(name: &str) -> Counter {
    Counter {
        cell: register(&COUNTERS, name, true, || Arc::new(AtomicU64::new(0))),
        name: Arc::from(name),
        volatile: true,
    }
}

/// Registers (or looks up) a deterministic gauge.
pub fn gauge(name: &str) -> Gauge {
    Gauge {
        cell: register(&GAUGES, name, false, || Arc::new(AtomicU64::new(0))),
    }
}

/// Registers (or looks up) a volatile gauge.
pub fn volatile_gauge(name: &str) -> Gauge {
    Gauge {
        cell: register(&GAUGES, name, true, || Arc::new(AtomicU64::new(0))),
    }
}

/// Registers (or looks up) a deterministic histogram.
pub fn histogram(name: &str) -> Histogram {
    Histogram {
        samples: register(&HISTOGRAMS, name, false, || Arc::new(Mutex::new(Vec::new()))),
    }
}

/// Registers (or looks up) a volatile histogram.
pub fn volatile_histogram(name: &str) -> Histogram {
    Histogram {
        samples: register(&HISTOGRAMS, name, true, || Arc::new(Mutex::new(Vec::new()))),
    }
}

/// Zeroes all cells in place; registered handles stay valid.
pub(crate) fn reset_all() {
    if let Some(m) = COUNTERS.get() {
        for r in m.lock().expect("registry poisoned").values() {
            r.cell.store(0, Ordering::Relaxed);
        }
    }
    if let Some(m) = GAUGES.get() {
        for r in m.lock().expect("registry poisoned").values() {
            r.cell.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }
    if let Some(m) = HISTOGRAMS.get() {
        for r in m.lock().expect("registry poisoned").values() {
            r.cell.lock().expect("histogram poisoned").clear();
        }
    }
}

/// Name-sorted `(name, value, volatile)` snapshot of all counters.
pub(crate) fn counters_snapshot() -> Vec<(String, u64, bool)> {
    let Some(m) = COUNTERS.get() else { return Vec::new() };
    m.lock()
        .expect("registry poisoned")
        .iter()
        .map(|(k, r)| (k.clone(), r.cell.load(Ordering::Relaxed), r.volatile))
        .collect()
}

/// Name-sorted `(name, value, volatile)` snapshot of all gauges.
pub(crate) fn gauges_snapshot() -> Vec<(String, f64, bool)> {
    let Some(m) = GAUGES.get() else { return Vec::new() };
    m.lock()
        .expect("registry poisoned")
        .iter()
        .map(|(k, r)| (k.clone(), f64::from_bits(r.cell.load(Ordering::Relaxed)), r.volatile))
        .collect()
}

/// Name-sorted `(name, summary, volatile)` snapshot of all non-empty
/// histograms.
pub(crate) fn histograms_snapshot() -> Vec<(String, HistSummary, bool)> {
    let Some(m) = HISTOGRAMS.get() else { return Vec::new() };
    m.lock()
        .expect("registry poisoned")
        .iter()
        .filter_map(|(k, r)| {
            HistSummary::from_samples(&r.cell.lock().expect("histogram poisoned"))
                .map(|s| (k.clone(), s, r.volatile))
        })
        .collect()
}
