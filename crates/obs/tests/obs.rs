//! Unit-level coverage for the telemetry layer itself.
//!
//! Spans, histograms, and `reset` act on process-global state, so every
//! test here serializes on one lock and the metric names are unique per
//! test.

use std::sync::Mutex;

use clara_obs as obs;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn counters_accumulate_and_survive_reset_with_live_handles() {
    let _g = locked();
    let c = obs::counter("test.counter.a");
    c.add(3);
    c.incr();
    assert_eq!(c.value(), 4);
    obs::reset();
    // The handle still points at live (zeroed) storage.
    assert_eq!(c.value(), 0);
    c.add(2);
    assert_eq!(obs::counter("test.counter.a").value(), 2);
}

#[test]
fn gauges_hold_last_write() {
    let _g = locked();
    let g = obs::gauge("test.gauge.a");
    g.set(1.5);
    g.set(-2.25);
    assert_eq!(g.value(), -2.25);
}

#[test]
fn histogram_summary_percentiles() {
    let _g = locked();
    obs::enable();
    let h = obs::histogram("test.hist.a");
    obs::reset();
    for v in 1..=100 {
        h.observe(f64::from(v));
    }
    let s = h.summary().expect("non-empty");
    assert_eq!(s.count, 100);
    assert_eq!(s.min, 1.0);
    assert_eq!(s.max, 100.0);
    assert_eq!(s.p50, 51.0); // nearest-rank on 0-indexed 99 elements
    assert_eq!(s.p95, 95.0);
    assert_eq!(s.p99, 99.0);
    assert!((s.mean - 50.5).abs() < 1e-12);
    obs::disable();
}

#[test]
fn histogram_is_silent_while_disabled() {
    let _g = locked();
    obs::disable();
    let h = obs::histogram("test.hist.disabled");
    h.observe(1.0);
    assert_eq!(h.count(), 0);
}

#[test]
fn span_tree_nesting_and_ordering() {
    let _g = locked();
    obs::enable();
    obs::reset();
    {
        let root = obs::span!("root", "n={}", 2);
        {
            let _a = obs::span("child-a");
            let _aa = obs::span("grandchild");
        }
        let _b = obs::span_under(root.handle(), "child-b");
    }
    let report = obs::RunReport::capture();
    obs::disable();

    assert_eq!(report.spans.len(), 1);
    let root = &report.spans[0];
    assert_eq!(root.name, "root");
    assert_eq!(root.detail, "n=2");
    let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["child-a", "child-b"], "children in start order");
    assert_eq!(root.children[0].children[0].name, "grandchild");
    let gc = &root.children[0].children[0];
    assert!(gc.start_ns >= root.start_ns);
    assert!(gc.end_ns <= root.children[0].end_ns);
    assert!(root.end_ns >= gc.end_ns);
}

#[test]
fn spans_cross_threads_via_handles() {
    let _g = locked();
    obs::enable();
    obs::reset();
    {
        let root = obs::span("xthread-root");
        let h = root.handle();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _c = obs::span_under(h, "spawned-child");
            });
        });
    }
    let report = obs::RunReport::capture();
    obs::disable();
    let root = report.find_span("xthread-root").expect("root recorded");
    assert_eq!(root.children.len(), 1);
    assert_eq!(root.children[0].name, "spawned-child");
}

#[test]
fn disabled_spans_record_nothing() {
    let _g = locked();
    obs::disable();
    obs::reset();
    {
        let _s = obs::span("invisible");
        let _d = obs::span!("also-invisible", "expensive {}", 1);
    }
    assert!(obs::RunReport::capture().spans.is_empty());
}

#[test]
fn deterministic_json_excludes_volatile_and_timestamps() {
    let _g = locked();
    obs::enable();
    obs::reset();
    obs::counter("test.det.work").add(7);
    obs::volatile_counter("test.det.wall_ns").add(123_456);
    {
        let _s = obs::span("det-span");
    }
    let report = obs::RunReport::capture();
    obs::disable();

    let full = report.to_json();
    let det = report.to_json_deterministic();
    assert!(full.contains("test.det.wall_ns"));
    assert!(full.contains("start_ns"));
    assert!(det.contains("\"test.det.work\":7"));
    assert!(!det.contains("test.det.wall_ns"));
    assert!(!det.contains("start_ns"));
    assert!(det.contains("\"name\":\"det-span\""));
}

#[test]
fn deterministic_json_sorts_sibling_spans() {
    let _g = locked();
    obs::enable();
    obs::reset();
    {
        let _b = obs::span("zeta");
    }
    {
        let _a = obs::span("alpha");
    }
    let det = obs::RunReport::capture().to_json_deterministic();
    obs::disable();
    let zeta = det.find("zeta").expect("zeta present");
    let alpha = det.find("alpha").expect("alpha present");
    assert!(alpha < zeta, "siblings sorted by name: {det}");
}

#[test]
fn report_write_creates_parent_dirs() {
    let _g = locked();
    let dir = std::env::temp_dir().join("clara_obs_test_reports");
    std::fs::remove_dir_all(&dir).ok();
    let path = dir.join("nested").join("r.json");
    obs::RunReport::capture().write(&path).expect("writes");
    let body = std::fs::read_to_string(&path).expect("readable");
    assert!(body.starts_with('{') && body.ends_with("}\n"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resolve_sink_rules() {
    let _g = locked();
    let dir = std::env::temp_dir().join("clara_obs_sink_dir");
    std::fs::create_dir_all(&dir).expect("mkdir");
    assert_eq!(
        obs::resolve_sink(dir.to_str().expect("utf8"), "BENCH_x.json"),
        dir.join("BENCH_x.json")
    );
    assert_eq!(
        obs::resolve_sink("1", "BENCH_x.json"),
        std::path::PathBuf::from("BENCH_x.json")
    );
    assert_eq!(
        obs::resolve_sink("out/custom.json", "BENCH_x.json"),
        std::path::PathBuf::from("out/custom.json")
    );
    std::fs::remove_dir_all(&dir).ok();
}
