//! `nf-synth`: distribution-guided random NF program synthesis.
//!
//! Clara needs LLVM/assembly training pairs, but "SmartNIC programs do not
//! exist in abundance", so the paper customizes YarpGen to synthesize
//! Click-shaped programs whose statistical profile matches the real
//! element corpus (Section 3.2, Table 1). This crate plays that role:
//!
//! 1. [`CorpusProfile::measure`] extracts the *shape distribution* of a
//!    real element corpus — which operations, types, operand kinds,
//!    memory regions and API calls appear, how long blocks are, how often
//!    programs branch and loop;
//! 2. [`Synthesizer::generate`] samples random, well-formed, *executable*
//!    NF modules from that distribution (guided mode), or from a uniform
//!    distribution over the same shape universe (the Table 1 baseline).
//!
//! Synthesized modules verify, run under [`click_model::Machine`], and
//! compile under `nfcc` — so they can serve as training data for every
//! one of Clara's learned models.
//!
//! # Examples
//!
//! ```
//! use nf_synth::{CorpusProfile, Synthesizer};
//!
//! let profile = CorpusProfile::measure(&click_model::corpus());
//! let mut synth = Synthesizer::new(profile, 42);
//! let m = synth.generate("sample");
//! assert!(nf_ir::verify::verify_module(&m).is_ok());
//! ```

use std::collections::BTreeMap;

use click_model::NfElement;
use nf_ir::{
    ApiCall, BinOp, CastOp, FunctionBuilder, GlobalId, Inst, MemRef, Module, Operand, PktField,
    Pred, StateKind, Ty,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Immediate-operand magnitude buckets (mirrors the NIC's immediate costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ImmBucket {
    /// Fits in the instruction word.
    Imm8,
    /// Needs one `immed`.
    Imm16,
    /// Needs two `immed`s.
    Imm32,
}

impl ImmBucket {
    fn sample(self, rng: &mut StdRng) -> i64 {
        match self {
            ImmBucket::Imm8 => rng.gen_range(0..256),
            ImmBucket::Imm16 => rng.gen_range(256..65536),
            ImmBucket::Imm32 => rng.gen_range(65536..0x4000_0000),
        }
    }
}

/// Where a load/store points, abstracted for sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegionShape {
    /// A stack slot.
    Stack,
    /// A scalar global.
    GlobalScalar,
    /// An indexed global entry.
    GlobalIndexed,
    /// A packet header/payload field.
    Pkt(PktField),
}

/// Framework API kinds (global ids stripped for sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ApiKind {
    /// Header locators (`ip_header` etc.).
    Header,
    /// `pkt_len` / `timestamp` / `random`.
    Misc,
    /// Hash-map find.
    MapFind,
    /// Hash-map insert.
    MapInsert,
    /// Vector operation.
    Vector,
    /// Checksum update.
    Csum,
}

/// The sampleable shape of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpShape {
    /// A binary ALU operation (with an optional immediate operand).
    Bin {
        /// Operation.
        op: BinOp,
        /// Type.
        ty: Ty,
        /// Immediate bucket of the rhs, or a register operand.
        imm: Option<ImmBucket>,
    },
    /// A comparison.
    Icmp {
        /// Predicate.
        pred: Pred,
        /// Type.
        ty: Ty,
        /// Immediate bucket of the rhs, or a register operand.
        imm: Option<ImmBucket>,
    },
    /// A width cast.
    Cast {
        /// Kind.
        op: CastOp,
        /// From type.
        from: Ty,
        /// To type.
        to: Ty,
    },
    /// A select.
    Select {
        /// Type.
        ty: Ty,
    },
    /// A load.
    Load {
        /// Type.
        ty: Ty,
        /// Region.
        region: RegionShape,
    },
    /// A store.
    Store {
        /// Type.
        ty: Ty,
        /// Region.
        region: RegionShape,
    },
    /// A framework API call.
    Call {
        /// API kind.
        api: ApiKind,
    },
}

fn imm_bucket(op: Operand) -> Option<ImmBucket> {
    match op {
        Operand::Value(_) => None,
        Operand::Const(c) => {
            let mag = c.unsigned_abs();
            Some(if c >= 0 && mag < 256 {
                ImmBucket::Imm8
            } else if mag < 65536 {
                ImmBucket::Imm16
            } else {
                ImmBucket::Imm32
            })
        }
    }
}

fn region_shape(mem: &MemRef) -> RegionShape {
    match mem {
        MemRef::Stack { .. } => RegionShape::Stack,
        MemRef::Global { index: None, .. } => RegionShape::GlobalScalar,
        MemRef::Global { index: Some(_), .. } => RegionShape::GlobalIndexed,
        MemRef::Pkt { field } => RegionShape::Pkt(*field),
    }
}

fn api_kind(api: &ApiCall) -> ApiKind {
    match api {
        ApiCall::IpHeader | ApiCall::TcpHeader | ApiCall::UdpHeader | ApiCall::EthHeader => {
            ApiKind::Header
        }
        ApiCall::PktLen | ApiCall::Timestamp | ApiCall::Random => ApiKind::Misc,
        ApiCall::HashMapFind(_) | ApiCall::HashMapErase(_) => ApiKind::MapFind,
        ApiCall::HashMapInsert(_) => ApiKind::MapInsert,
        // Flow-table calls walk buckets exactly like map calls do;
        // bucket them by access shape so guided synthesis reproduces
        // their memory behaviour without a dedicated kind.
        ApiCall::FlowLookup(_) | ApiCall::FlowRemove(_) => ApiKind::MapFind,
        ApiCall::FlowUpsert(_) => ApiKind::MapInsert,
        ApiCall::FlowChurn(_) => ApiKind::Misc,
        ApiCall::VectorGet(_) | ApiCall::VectorPush(_) | ApiCall::VectorDelete(_) => {
            ApiKind::Vector
        }
        ApiCall::ChecksumUpdate | ApiCall::ChecksumFull => ApiKind::Csum,
        // Send/drop are structural (every generated program ends with
        // one); bucket stray occurrences with the cheap misc calls.
        ApiCall::PktSend | ApiCall::PktDrop => ApiKind::Misc,
    }
}

/// Shape of one instruction of an existing module, if sampleable.
fn shape_of(inst: &Inst) -> Option<OpShape> {
    Some(match inst {
        Inst::Bin { op, ty, rhs, .. } => OpShape::Bin {
            op: *op,
            ty: *ty,
            imm: imm_bucket(*rhs),
        },
        Inst::Icmp { pred, ty, rhs, .. } => OpShape::Icmp {
            pred: *pred,
            ty: *ty,
            imm: imm_bucket(*rhs),
        },
        Inst::Cast { op, from, to, .. } => OpShape::Cast {
            op: *op,
            from: *from,
            to: *to,
        },
        Inst::Select { ty, .. } => OpShape::Select { ty: *ty },
        Inst::Load { ty, mem, .. } => OpShape::Load {
            ty: *ty,
            region: region_shape(mem),
        },
        Inst::Store { ty, mem, .. } => OpShape::Store {
            ty: *ty,
            region: region_shape(mem),
        },
        Inst::Call { api, .. } => OpShape::Call { api: api_kind(api) },
        Inst::Phi { .. } => return None, // Structural, not sampled.
    })
}

/// The statistical profile of a program corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusProfile {
    /// Shape histogram (guided sampling weights).
    pub shapes: BTreeMap<OpShape, u32>,
    /// Mean straight-line instructions per block.
    pub mean_block_len: f64,
    /// Mean blocks per handler.
    pub mean_blocks: f64,
    /// Probability a program contains a loop.
    pub loop_prob: f64,
    /// Probability a program branches (diamond).
    pub branch_prob: f64,
}

impl CorpusProfile {
    /// Measures the shape distribution of a real element corpus.
    ///
    /// # Panics
    ///
    /// Panics if `corpus` is empty.
    pub fn measure(corpus: &[NfElement]) -> CorpusProfile {
        assert!(!corpus.is_empty(), "empty corpus");
        let mut shapes: BTreeMap<OpShape, u32> = BTreeMap::new();
        let mut total_insts = 0usize;
        let mut total_blocks = 0usize;
        let mut with_loop = 0usize;
        let mut with_branch = 0usize;
        for e in corpus {
            let mut loops = 0;
            let mut branches = 0;
            for f in &e.module.funcs {
                total_blocks += f.blocks.len();
                loops += nf_ir::Cfg::build(f).loop_count();
                for b in &f.blocks {
                    total_insts += b.insts.len();
                    if matches!(b.term, nf_ir::Term::CondBr { .. }) {
                        branches += 1;
                    }
                    for i in &b.insts {
                        if let Some(s) = shape_of(i) {
                            *shapes.entry(s).or_insert(0) += 1;
                        }
                    }
                }
            }
            if loops > 0 {
                with_loop += 1;
            }
            if branches > 0 {
                with_branch += 1;
            }
        }
        CorpusProfile {
            shapes,
            mean_block_len: total_insts as f64 / total_blocks.max(1) as f64,
            mean_blocks: total_blocks as f64 / corpus.len() as f64,
            loop_prob: with_loop as f64 / corpus.len() as f64,
            branch_prob: with_branch as f64 / corpus.len() as f64,
        }
    }

    /// The Table 1 baseline: a uniform distribution over the same shape
    /// universe (ignores corpus frequencies).
    pub fn uniform_over(corpus: &[NfElement]) -> CorpusProfile {
        let mut p = CorpusProfile::measure(corpus);
        for w in p.shapes.values_mut() {
            *w = 1;
        }
        p
    }
}

/// A deterministic random program generator.
#[derive(Debug)]
pub struct Synthesizer {
    profile: CorpusProfile,
    rng: StdRng,
    shape_list: Vec<(OpShape, u32)>,
    total_weight: u64,
}

impl Synthesizer {
    /// Creates a generator for the given profile and seed.
    pub fn new(profile: CorpusProfile, seed: u64) -> Synthesizer {
        let shape_list: Vec<(OpShape, u32)> =
            profile.shapes.iter().map(|(s, w)| (*s, *w)).collect();
        let total_weight = shape_list.iter().map(|(_, w)| u64::from(*w)).sum();
        Synthesizer {
            profile,
            rng: StdRng::seed_from_u64(seed),
            shape_list,
            total_weight,
        }
    }

    fn sample_shape(&mut self) -> OpShape {
        let mut x = self.rng.gen_range(0..self.total_weight.max(1));
        for (s, w) in &self.shape_list {
            let w = u64::from(*w);
            if x < w {
                return *s;
            }
            x -= w;
        }
        self.shape_list.last().expect("non-empty shapes").0
    }

    /// Generates one random NF module.
    pub fn generate(&mut self, name: &str) -> Module {
        let mut m = Module::new(name.to_string());
        let g_map = m.add_global("s_map", StateKind::HashMap, 16, 1024);
        let g_arr = m.add_global("s_arr", StateKind::Array, 4, 256);
        let g_sc = m.add_global("s_ctr", StateKind::Scalar, 4, 1);
        let g_vec = m.add_global("s_vec", StateKind::Vector, 8, 64);

        let mut fb = FunctionBuilder::new("process");
        let entry = fb.entry_block();
        fb.switch_to(entry);
        let mut ctx = GenCtx {
            globals: [g_map, g_arr, g_sc, g_vec],
            slots: (0..4).map(|_| fb.slot()).collect(),
            ..GenCtx::default()
        };
        // Seed the value pool from packet fields.
        let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
        let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
        ctx.put(Ty::I32, src);
        ctx.put(Ty::I16, len);

        // Straight-line prelude.
        let prelude = self.poisson_len();
        self.emit_run(&mut fb, &mut ctx, prelude);
        // Optional diamond.
        if self
            .rng
            .gen_bool(self.profile.branch_prob.clamp(0.05, 0.95))
        {
            self.emit_diamond(&mut fb, &mut ctx);
        }
        // Optional bounded loop.
        let mut phi_patches = Vec::new();
        if self.rng.gen_bool(self.profile.loop_prob.clamp(0.05, 0.95)) {
            phi_patches.push(self.emit_loop(&mut fb, &mut ctx));
        }
        // Straight-line epilogue.
        let epilogue = self.poisson_len();
        self.emit_run(&mut fb, &mut ctx, epilogue);
        let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
        fb.ret(None);
        let mut f = fb.finish();
        // Wire the loop-carried induction phis to their latch values.
        for (head, latch, val) in phi_patches {
            click_model::elements::helpers::set_phi_incoming(&mut f, head, 0, latch, val);
        }
        m.funcs.push(f);
        m
    }

    /// Generates `n` modules.
    pub fn generate_many(&mut self, n: usize, prefix: &str) -> Vec<Module> {
        (0..n)
            .map(|i| self.generate(&format!("{prefix}{i}")))
            .collect()
    }

    /// Emits `n` instructions with bursty repetition: real Click elements
    /// contain runs of near-identical statements (header-field writes,
    /// counter updates), so shapes occasionally repeat back to back.
    fn emit_run(&mut self, fb: &mut FunctionBuilder, ctx: &mut GenCtx, n: usize) {
        let mut emitted = 0;
        while emitted < n {
            let shape = self.sample_shape();
            let burst = if self.rng.gen_bool(0.25) {
                self.rng.gen_range(2..6usize)
            } else {
                1
            };
            for _ in 0..burst.min(n - emitted) {
                self.emit(fb, ctx, shape);
                emitted += 1;
            }
        }
    }

    fn poisson_len(&mut self) -> usize {
        // Geometric approximation around the corpus mean block length.
        let mean = self.profile.mean_block_len.clamp(2.0, 24.0);
        let mut n = 1usize;
        while n < 40 && self.rng.gen_bool((1.0 - 1.0 / mean).clamp(0.05, 0.97)) {
            n += 1;
        }
        n
    }

    fn emit_diamond(&mut self, fb: &mut FunctionBuilder, ctx: &mut GenCtx) {
        let cond = match ctx.bool_val {
            Some(c) => c,
            None => {
                let v = ctx.get(Ty::I32, fb, &mut self.rng);
                fb.icmp(Pred::ULt, Ty::I32, v, Operand::imm(1000))
            }
        };
        let then_bb = fb.block();
        let else_bb = fb.block();
        let join = fb.block();
        fb.cond_br(cond, then_bb, else_bb);
        for bb in [then_bb, else_bb] {
            fb.switch_to(bb);
            // Arms only mutate memory; the SSA pool must stay valid at the
            // join, so arm-local values are not pooled.
            let arm_len = (self.poisson_len() / 2).max(1);
            let mut arm_ctx = ctx.clone();
            self.emit_run(fb, &mut arm_ctx, arm_len);
            fb.br(join);
        }
        fb.switch_to(join);
        ctx.bool_val = None;
    }

    fn emit_loop(
        &mut self,
        fb: &mut FunctionBuilder,
        ctx: &mut GenCtx,
    ) -> (nf_ir::BlockId, nf_ir::BlockId, Operand) {
        let pre = fb.current_block().expect("positioned");
        let head = fb.block();
        let body = fb.block();
        let latch = fb.block();
        let after = fb.block();
        let trips = i64::from(self.rng.gen_range(2..12u8));
        fb.br(head);
        fb.switch_to(head);
        let i = fb.phi(
            Ty::I32,
            vec![(pre, Operand::imm(0)), (latch, Operand::imm(0))],
        );
        let more = fb.icmp(Pred::ULt, Ty::I32, i, Operand::imm(trips));
        fb.cond_br(more, body, after);
        fb.switch_to(body);
        let mut body_ctx = ctx.clone();
        body_ctx.put(Ty::I32, i);
        let body_len = (self.poisson_len() / 2).max(2);
        self.emit_run(fb, &mut body_ctx, body_len);
        fb.br(latch);
        fb.switch_to(latch);
        let i_next = fb.bin(BinOp::Add, Ty::I32, i, Operand::imm(1));
        fb.br(head);
        fb.switch_to(after);
        ctx.bool_val = None;
        (head, latch, i_next)
    }

    fn emit(&mut self, fb: &mut FunctionBuilder, ctx: &mut GenCtx, shape: OpShape) {
        let rng = &mut self.rng;
        match shape {
            OpShape::Bin { op, ty, imm } => {
                let lhs = ctx.get(ty, fb, rng);
                let rhs = match imm {
                    Some(b) => Operand::imm(b.sample(rng)),
                    None => ctx.get(ty, fb, rng),
                };
                // Shift amounts range past the type width so every
                // execution layer must agree on the reduction rule
                // (amount mod width); see `nf_ir::opt::eval_bin`.
                let rhs = if op.is_shift() {
                    Operand::imm(rng.gen_range(1..2 * i64::from(ty.bits())))
                } else {
                    rhs
                };
                let v = fb.bin(op, ty, lhs, rhs);
                ctx.put(ty, v);
            }
            OpShape::Icmp { pred, ty, imm } => {
                let lhs = ctx.get(ty, fb, rng);
                let rhs = match imm {
                    Some(b) => Operand::imm(b.sample(rng)),
                    None => ctx.get(ty, fb, rng),
                };
                let v = fb.icmp(pred, ty, lhs, rhs);
                ctx.bool_val = Some(v);
            }
            OpShape::Cast { op, from, to } => {
                let (op, from, to) = match op {
                    CastOp::Trunc if from.bits() <= to.bits() => (CastOp::Zext, to, from),
                    CastOp::Zext | CastOp::Sext if from.bits() >= to.bits() => {
                        (CastOp::Trunc, from, to)
                    }
                    _ => (op, from, to),
                };
                if from == to {
                    return;
                }
                let src = ctx.get(from, fb, rng);
                let v = fb.cast(op, from, to, src);
                ctx.put(to, v);
            }
            OpShape::Select { ty } => {
                let c = match ctx.bool_val {
                    Some(c) => c,
                    None => return,
                };
                let a = ctx.get(ty, fb, rng);
                let b = ctx.get(ty, fb, rng);
                let v = fb.select(ty, c, a, b);
                ctx.put(ty, v);
            }
            OpShape::Load { ty, region } => {
                let mem = ctx.mem(region, ty, fb, rng);
                let v = fb.load(ty, mem);
                ctx.put(ty, v);
            }
            OpShape::Store { ty, region } => {
                let mem = ctx.mem(region, ty, fb, rng);
                let val = ctx.get(ty, fb, rng);
                fb.store(ty, val, mem);
            }
            OpShape::Call { api } => {
                let call = match api {
                    ApiKind::Header => match rng.gen_range(0..3) {
                        0 => ApiCall::IpHeader,
                        1 => ApiCall::TcpHeader,
                        _ => ApiCall::UdpHeader,
                    },
                    ApiKind::Misc => match rng.gen_range(0..3) {
                        0 => ApiCall::PktLen,
                        1 => ApiCall::Timestamp,
                        _ => ApiCall::Random,
                    },
                    ApiKind::MapFind => ApiCall::HashMapFind(ctx.globals[0]),
                    ApiKind::MapInsert => ApiCall::HashMapInsert(ctx.globals[0]),
                    ApiKind::Vector => match rng.gen_range(0..2) {
                        0 => ApiCall::VectorGet(ctx.globals[3]),
                        _ => ApiCall::VectorPush(ctx.globals[3]),
                    },
                    ApiKind::Csum => ApiCall::ChecksumUpdate,
                };
                let args = match &call {
                    ApiCall::HashMapFind(_) | ApiCall::HashMapInsert(_) => {
                        vec![ctx.get(Ty::I32, fb, rng)]
                    }
                    ApiCall::VectorGet(_) | ApiCall::VectorDelete(_) => {
                        vec![ctx.get(Ty::I32, fb, rng)]
                    }
                    _ => vec![],
                };
                if let Some(v) = fb.call(call, args) {
                    ctx.put(Ty::I32, v);
                }
            }
        }
    }
}

/// Generation context: value pools and global handles.
#[derive(Debug, Clone)]
struct GenCtx {
    globals: [GlobalId; 4],
    slots: Vec<u32>,
    pool: BTreeMap<Ty, Vec<Operand>>,
    bool_val: Option<Operand>,
}

impl GenCtx {
    fn put(&mut self, ty: Ty, v: Operand) {
        let list = self.pool.entry(ty).or_default();
        list.push(v);
        if list.len() > 12 {
            list.remove(0);
        }
    }

    fn get(&mut self, ty: Ty, fb: &mut FunctionBuilder, rng: &mut StdRng) -> Operand {
        if let Some(list) = self.pool.get(&ty) {
            if !list.is_empty() {
                return list[rng.gen_range(0..list.len())];
            }
        }
        // Materialize a value of the right type from packet data.
        let v = fb.load(ty, MemRef::pkt(PktField::Payload(rng.gen_range(0u16..16) * 4)));
        self.put(ty, v);
        v
    }

    fn mem(
        &mut self,
        region: RegionShape,
        _ty: Ty,
        fb: &mut FunctionBuilder,
        rng: &mut StdRng,
    ) -> MemRef {
        match region {
            RegionShape::Stack => MemRef::stack(self.slots[rng.gen_range(0..self.slots.len())]),
            RegionShape::GlobalScalar => MemRef::global(self.globals[2]),
            RegionShape::GlobalIndexed => {
                let idx = self.get(Ty::I32, fb, rng);
                let masked = fb.bin(BinOp::And, Ty::I32, idx, Operand::imm(255));
                MemRef::global_at(self.globals[1], masked, 0)
            }
            RegionShape::Pkt(field) => MemRef::pkt(field),
        }
    }
}

impl Default for GenCtx {
    fn default() -> Self {
        GenCtx {
            globals: [GlobalId(0); 4],
            slots: Vec::new(),
            pool: BTreeMap::new(),
            bool_val: None,
        }
    }
}

/// Convenience: synthesize `n` modules guided by the real Click corpus
/// (or the unguided baseline when `guided` is false).
pub fn synth_corpus(n: usize, guided: bool, seed: u64) -> Vec<Module> {
    let corpus = click_model::corpus();
    let profile = if guided {
        CorpusProfile::measure(&corpus)
    } else {
        CorpusProfile::uniform_over(&corpus)
    };
    let mut synth = Synthesizer::new(profile, seed);
    let prefix = if guided { "synth" } else { "base" };
    let modules = synth.generate_many(n, prefix);
    // Apply any pending loop-phi patches (done at generation time inside
    // `generate`, so modules here are already final) and verify.
    for m in &modules {
        nf_ir::verify::verify_module(m).expect("synthesized module must verify");
    }
    modules
}

/// Synthesizes `n` NF modules that target a device's accelerator menu.
///
/// Each module interleaves a corpus-guided synthetic NF with the catalog
/// reference kernel of one menu variant (round-robin over `menu`), so
/// the generated program both *looks* like the real corpus and embeds a
/// constant `clara_core`-style catalog matching can pin to the device's
/// declared hardware. Unknown menu names are skipped; an effectively
/// empty menu yields plain guided synthesis.
pub fn synth_for_menu(menu: &[&str], n: usize, seed: u64) -> Vec<Module> {
    let variants: Vec<&clara_accel::Variant> =
        menu.iter().filter_map(|name| clara_accel::lookup(name)).collect();
    let mut out = synth_corpus(n, true, seed);
    for (i, m) in out.iter_mut().enumerate() {
        let Some(v) = variants.get(i % variants.len().max(1)) else {
            continue;
        };
        // Graft the reference kernel in as a second function: the packet
        // handler stays the synthesized one, but the module now carries
        // the variant's defining constants (and an extra global).
        let mut kernel = clara_accel::reference_module(v);
        let base = GlobalId(m.globals.len() as u32);
        for g in &mut kernel.globals {
            g.id = GlobalId(g.id.0 + base.0);
            g.name = format!("accel_{}", g.name);
        }
        for f in &mut kernel.funcs {
            f.name = format!("accel_{}", f.name);
            for b in &mut f.blocks {
                for inst in &mut b.insts {
                    remap_globals(inst, base);
                }
            }
        }
        m.globals.extend(kernel.globals);
        m.funcs.extend(kernel.funcs);
        m.name = format!("{}_{}", m.name, v.name.replace('-', "_"));
        nf_ir::verify::verify_module(m).expect("menu-targeted module must verify");
    }
    out
}

/// Shifts every global reference in `inst` up by `base` (kernel grafting).
fn remap_globals(inst: &mut Inst, base: GlobalId) {
    let shift = |mem: &mut MemRef| {
        if let MemRef::Global { global, .. } = mem {
            *global = GlobalId(global.0 + base.0);
        }
    };
    match inst {
        Inst::Load { mem, .. } | Inst::Store { mem, .. } => shift(mem),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_model::Machine;
    use trafgen::{Trace, WorkloadSpec};

    #[test]
    fn menu_targeted_modules_carry_their_variant_constants() {
        let menu = ["crc64-ecma", "hash-fnv1a"];
        let mods = synth_for_menu(&menu, 4, 11);
        assert_eq!(mods.len(), 4);
        let trace = Trace::generate(&WorkloadSpec::imix(), 5, 3);
        for (i, m) in mods.iter().enumerate() {
            let want = menu[i % menu.len()];
            assert!(m.name.ends_with(&want.replace('-', "_")), "{}", m.name);
            let hits = clara_accel::match_constants(m);
            assert!(
                hits.iter().any(|v| v.name == want),
                "{}: expected {want}, got {:?}",
                m.name,
                hits.iter().map(|v| v.name).collect::<Vec<_>>()
            );
            // Still an executable NF: the grafted kernel never touches
            // the packet path.
            let mut machine = Machine::new(m).expect("verifies");
            for p in &trace.pkts {
                machine.run(p).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            }
        }
        // Unknown names degrade to plain synthesis, not a panic.
        let plain = synth_for_menu(&["no-such-unit"], 2, 11);
        assert_eq!(plain.len(), 2);
    }

    #[test]
    fn profile_measures_real_corpus() {
        let p = CorpusProfile::measure(&click_model::corpus());
        assert!(p.shapes.len() > 30, "shape universe {}", p.shapes.len());
        assert!(p.mean_block_len > 1.0);
        assert!(p.loop_prob > 0.1 && p.loop_prob < 0.9);
    }

    #[test]
    fn generated_modules_verify_and_execute() {
        let mods = synth_corpus(20, true, 7);
        let trace = Trace::generate(&WorkloadSpec::imix(), 10, 1);
        for m in &mods {
            let mut machine = Machine::new(m).expect("verifies");
            for p in &trace.pkts {
                machine.run(p).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synth_corpus(3, true, 9);
        let b = synth_corpus(3, true, 9);
        assert_eq!(a, b);
        let c = synth_corpus(3, true, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn guided_matches_corpus_better_than_uniform() {
        use nf_ir::ModuleStats;
        let real: Vec<ModuleStats> = click_model::corpus()
            .iter()
            .map(|e| ModuleStats::of_module(&e.module))
            .collect();
        let mut real_agg = ModuleStats::default();
        for s in &real {
            real_agg.merge(s);
        }

        let agg_of = |mods: &[Module]| {
            let mut agg = ModuleStats::default();
            for m in mods {
                agg.merge(&ModuleStats::of_module(m));
            }
            agg
        };
        let guided = agg_of(&synth_corpus(60, true, 3));
        let baseline = agg_of(&synth_corpus(60, false, 3));

        let universe = ModuleStats::token_universe(&[&real_agg, &guided, &baseline]);
        let rd = real_agg.distribution(&universe);
        let gd = guided.distribution(&universe);
        let bd = baseline.distribution(&universe);
        let g_js = tinyml::dist::jensen_shannon(&rd, &gd);
        let b_js = tinyml::dist::jensen_shannon(&rd, &bd);
        assert!(
            g_js < b_js,
            "guided JS {g_js:.4} should beat baseline {b_js:.4}"
        );
        assert!(g_js < 0.25, "guided JS too high: {g_js:.4}");
    }

    #[test]
    fn generated_programs_vary_in_size() {
        let mods = synth_corpus(30, true, 5);
        let sizes: Vec<usize> = mods.iter().map(|m| m.funcs[0].inst_count()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > min, "sizes should vary: {sizes:?}");
    }
}
