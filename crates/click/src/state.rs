//! Runtime storage for stateful NF globals.
//!
//! Data-structure semantics follow the *SmartNIC-style* implementations
//! that Clara reverse-ports (Section 3.3 of the paper): hash maps use a
//! fixed set of buckets (no linear probing past the bucket, no dynamic
//! allocation) and vector deletion only tombstones entries.

use nf_ir::{EvictPolicy, FlowSpec, GlobalId, Module, StateKind};
use serde::{Deserialize, Serialize};

/// Slots per hash bucket (Netronome-style fixed bucket set).
pub const BUCKET_SLOTS: u64 = 4;

/// Seed mixed into each flow table's private eviction RNG stream.
const FLOW_RNG_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GlobalStorage {
    kind: StateKind,
    entry_bytes: u32,
    entries: u32,
    bytes: Vec<u8>,
    /// Occupancy/validity flags (hash maps, flow tables, and vectors).
    occupied: Vec<bool>,
    /// Stored keys (hash maps and flow tables).
    keys: Vec<u64>,
    /// Logical length (vectors) / live entry count (flow tables).
    count: u32,
    /// Flow-table behaviour (`Some` iff `kind == FlowTable`).
    flow: Option<FlowSpec>,
    /// Element-clock tick each entry was last touched (flow tables).
    last_seen: Vec<u64>,
    /// Element-clock tick each entry was created (flow tables).
    created: Vec<u64>,
    /// Lifetime insertions of new entries (flow tables).
    insertions: u64,
    /// Lifetime capacity evictions (flow tables).
    evictions: u64,
    /// Lifetime timeout expirations (flow tables).
    expirations: u64,
    /// Private xorshift state for `EvictPolicy::Random` victims; seeded
    /// deterministically per table so every layer evicts identically.
    rng: u64,
}

/// Lifetime churn counters of one flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowCounters {
    /// New entries inserted.
    pub insertions: u64,
    /// Entries sacrificed to make room in a full bucket.
    pub evictions: u64,
    /// Entries removed by idle/hard timeout.
    pub expirations: u64,
}

impl FlowCounters {
    /// The churn figure [`crate::interp`] returns for `flow_churn`:
    /// entries lost involuntarily (evicted or timed out).
    pub fn churn(&self) -> u64 {
        self.evictions + self.expirations
    }
}

/// Storage for every global of a module.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StateStore {
    globals: Vec<GlobalStorage>,
}

/// Result of a hash-map or vector operation, including the probe count
/// needed for faithful NIC costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult {
    /// Slot index (entry number) the operation resolved to, if any.
    pub slot: Option<u64>,
    /// Number of slots examined.
    pub probes: u32,
    /// Whether the operation found what it was looking for.
    pub hit: bool,
}

fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl StateStore {
    /// Allocates storage for every global in `module`.
    pub fn new(module: &Module) -> StateStore {
        let globals = module
            .globals
            .iter()
            .map(|g| {
                let n = g.entries.max(1);
                GlobalStorage {
                    kind: g.kind,
                    entry_bytes: g.entry_bytes.max(1),
                    entries: n,
                    bytes: vec![0; (g.entry_bytes.max(1) as usize) * n as usize],
                    occupied: vec![false; n as usize],
                    keys: vec![0; n as usize],
                    count: 0,
                    flow: g.flow,
                    last_seen: vec![0; n as usize],
                    created: vec![0; n as usize],
                    insertions: 0,
                    evictions: 0,
                    expirations: 0,
                    rng: mix64(u64::from(g.id.0).wrapping_add(1)) ^ FLOW_RNG_SEED,
                }
            })
            .collect();
        StateStore { globals }
    }

    /// Clears all state (between experiment runs).
    pub fn reset(&mut self) {
        for (i, g) in self.globals.iter_mut().enumerate() {
            g.bytes.iter_mut().for_each(|b| *b = 0);
            g.occupied.iter_mut().for_each(|o| *o = false);
            g.keys.iter_mut().for_each(|k| *k = 0);
            g.count = 0;
            g.last_seen.iter_mut().for_each(|t| *t = 0);
            g.created.iter_mut().for_each(|t| *t = 0);
            g.insertions = 0;
            g.evictions = 0;
            g.expirations = 0;
            g.rng = mix64((i as u64).wrapping_add(1)) ^ FLOW_RNG_SEED;
        }
    }

    fn storage(&self, g: GlobalId) -> Option<&GlobalStorage> {
        self.globals.get(g.index())
    }

    fn storage_mut(&mut self, g: GlobalId) -> Option<&mut GlobalStorage> {
        self.globals.get_mut(g.index())
    }

    /// True when the store has storage for `g`.
    pub fn has(&self, g: GlobalId) -> bool {
        self.storage(g).is_some()
    }

    /// Loads `width` bytes (little-endian) at `(index, offset)` of global
    /// `g`. Out-of-range accesses wrap to the structure size (NF code is
    /// expected to mask indices; wrapping keeps the interpreter total).
    pub fn load(&self, g: GlobalId, index: u64, offset: u32, width: u32) -> u64 {
        let Some(s) = self.storage(g) else {
            return 0;
        };
        let idx = (index % u64::from(s.entries)) as usize;
        let base = idx * s.entry_bytes as usize + (offset as usize % s.entry_bytes as usize);
        let mut v = 0u64;
        for i in 0..width.min(8) as usize {
            let b = s.bytes.get(base + i).copied().unwrap_or(0);
            v |= u64::from(b) << (8 * i);
        }
        v
    }

    /// Stores `width` bytes (little-endian) at `(index, offset)`.
    pub fn store(&mut self, g: GlobalId, index: u64, offset: u32, width: u32, value: u64) {
        let Some(s) = self.storage_mut(g) else {
            return;
        };
        let idx = (index % u64::from(s.entries)) as usize;
        let base = idx * s.entry_bytes as usize + (offset as usize % s.entry_bytes as usize);
        for i in 0..width.min(8) as usize {
            if let Some(b) = s.bytes.get_mut(base + i) {
                *b = ((value >> (8 * i)) & 0xff) as u8;
            }
        }
    }

    fn bucket_range(s: &GlobalStorage, key: u64) -> (u64, u64) {
        let n = u64::from(s.entries);
        let nbuckets = (n / BUCKET_SLOTS).max(1);
        let start = (mix64(key) % nbuckets) * BUCKET_SLOTS;
        (start, (start + BUCKET_SLOTS).min(n))
    }

    /// Hash-map lookup with fixed-bucket semantics.
    pub fn map_find(&self, g: GlobalId, key: u64) -> OpResult {
        let Some(s) = self.storage(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        let (start, end) = Self::bucket_range(s, key);
        let mut probes = 0;
        for slot in start..end {
            probes += 1;
            if s.occupied[slot as usize] && s.keys[slot as usize] == key {
                return OpResult {
                    slot: Some(slot),
                    probes,
                    hit: true,
                };
            }
        }
        OpResult {
            slot: None,
            probes,
            hit: false,
        }
    }

    /// Hash-map insert: reuses the key's slot, else the first free slot of
    /// the bucket, else evicts the first slot (fixed buckets can overflow).
    pub fn map_insert(&mut self, g: GlobalId, key: u64) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        let (start, end) = Self::bucket_range(s, key);
        let mut probes = 0;
        let mut free: Option<u64> = None;
        for slot in start..end {
            probes += 1;
            let si = slot as usize;
            if s.occupied[si] && s.keys[si] == key {
                return OpResult {
                    slot: Some(slot),
                    probes,
                    hit: true,
                };
            }
            if !s.occupied[si] && free.is_none() {
                free = Some(slot);
            }
        }
        let slot = free.unwrap_or(start); // Evict on overflow.
        let si = slot as usize;
        if !s.occupied[si] {
            s.count += 1;
        } else {
            // Evicting: wipe the old entry's value bytes.
            let eb = s.entry_bytes as usize;
            s.bytes[si * eb..(si + 1) * eb]
                .iter_mut()
                .for_each(|b| *b = 0);
        }
        s.occupied[si] = true;
        s.keys[si] = key;
        OpResult {
            slot: Some(slot),
            probes,
            hit: false,
        }
    }

    /// Hash-map erase (tombstones the slot).
    pub fn map_erase(&mut self, g: GlobalId, key: u64) -> OpResult {
        let found = self.map_find(g, key);
        if let (Some(slot), Some(s)) = (found.slot, self.storage_mut(g)) {
            s.occupied[slot as usize] = false;
            s.keys[slot as usize] = 0;
            s.count = s.count.saturating_sub(1);
        }
        found
    }

    /// True when the entry at `si` has outlived its idle or hard timeout
    /// at element-clock tick `now` (a zero timeout disables that check).
    fn flow_expired(s: &GlobalStorage, spec: FlowSpec, si: usize, now: u64) -> bool {
        (spec.idle_timeout > 0 && now.saturating_sub(s.last_seen[si]) > u64::from(spec.idle_timeout))
            || (spec.hard_timeout > 0
                && now.saturating_sub(s.created[si]) > u64::from(spec.hard_timeout))
    }

    /// Tombstones the entry at `si` and wipes its value bytes so a slot
    /// reclaimed later starts from zeroed state on every layer.
    fn flow_wipe(s: &mut GlobalStorage, si: usize) {
        let eb = s.entry_bytes as usize;
        s.bytes[si * eb..(si + 1) * eb].iter_mut().for_each(|b| *b = 0);
        s.occupied[si] = false;
        s.keys[si] = 0;
        s.last_seen[si] = 0;
        s.created[si] = 0;
        s.count = s.count.saturating_sub(1);
    }

    /// Walks the key's bucket, lazily expiring timed-out entries, and
    /// returns `(live key slot, first free slot, probes)`.
    fn flow_probe(s: &mut GlobalStorage, spec: FlowSpec, key: u64, now: u64)
        -> (Option<u64>, Option<u64>, u32) {
        let (start, end) = Self::bucket_range(s, key);
        let mut probes = 0;
        let mut free: Option<u64> = None;
        let mut found: Option<u64> = None;
        for slot in start..end {
            probes += 1;
            let si = slot as usize;
            if s.occupied[si] && Self::flow_expired(s, spec, si, now) {
                Self::flow_wipe(s, si);
                s.expirations += 1;
            }
            if s.occupied[si] {
                if s.keys[si] == key {
                    found = Some(slot);
                }
            } else if free.is_none() {
                free = Some(slot);
            }
        }
        (found, free, probes)
    }

    /// Flow-table lookup: probes the key's bucket (expiring stale entries
    /// in passing) and refreshes `last_seen` on a hit. Mutates — lazy
    /// expiry is how flow tables age without a background sweeper.
    pub fn flow_lookup(&mut self, g: GlobalId, key: u64, now: u64) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult { slot: None, probes: 0, hit: false };
        };
        let Some(spec) = s.flow else {
            return OpResult { slot: None, probes: 0, hit: false };
        };
        let (found, _, probes) = Self::flow_probe(s, spec, key, now);
        if let Some(slot) = found {
            s.last_seen[slot as usize] = now;
        }
        OpResult { slot: found, probes, hit: found.is_some() }
    }

    /// Flow-table insert-or-refresh: refreshes a live entry for the key,
    /// else claims a free (or just-expired) bucket slot, else evicts per
    /// the table's [`EvictPolicy`]. Always lands the key somewhere.
    pub fn flow_upsert(&mut self, g: GlobalId, key: u64, now: u64) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult { slot: None, probes: 0, hit: false };
        };
        let Some(spec) = s.flow else {
            return OpResult { slot: None, probes: 0, hit: false };
        };
        let (found, free, probes) = Self::flow_probe(s, spec, key, now);
        if let Some(slot) = found {
            s.last_seen[slot as usize] = now;
            return OpResult { slot: Some(slot), probes, hit: true };
        }
        let slot = match free {
            Some(slot) => slot,
            None => {
                // Full bucket: sacrifice a victim.
                let (start, end) = Self::bucket_range(s, key);
                let victim = match spec.evict {
                    EvictPolicy::Lru => (start..end)
                        .min_by_key(|&slot| (s.last_seen[slot as usize], slot))
                        .unwrap_or(start),
                    EvictPolicy::Random => {
                        // xorshift64: deterministic per-table stream.
                        let mut x = s.rng;
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        s.rng = x;
                        start + x % (end - start).max(1)
                    }
                };
                Self::flow_wipe(s, victim as usize);
                s.evictions += 1;
                victim
            }
        };
        let si = slot as usize;
        s.occupied[si] = true;
        s.keys[si] = key;
        s.last_seen[si] = now;
        s.created[si] = now;
        s.count += 1;
        s.insertions += 1;
        OpResult { slot: Some(slot), probes, hit: false }
    }

    /// Flow-table removal: tombstones the key's live entry, if any.
    pub fn flow_remove(&mut self, g: GlobalId, key: u64, now: u64) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult { slot: None, probes: 0, hit: false };
        };
        let Some(spec) = s.flow else {
            return OpResult { slot: None, probes: 0, hit: false };
        };
        let (found, _, probes) = Self::flow_probe(s, spec, key, now);
        if let Some(slot) = found {
            Self::flow_wipe(s, slot as usize);
        }
        OpResult { slot: found, probes, hit: found.is_some() }
    }

    /// Lifetime churn counters of a flow table (zeroes for non-flow
    /// globals).
    pub fn flow_counters(&self, g: GlobalId) -> FlowCounters {
        self.storage(g).map_or(FlowCounters::default(), |s| FlowCounters {
            insertions: s.insertions,
            evictions: s.evictions,
            expirations: s.expirations,
        })
    }

    /// Vector element access: valid when `idx < len` and not tombstoned.
    pub fn vec_get(&self, g: GlobalId, idx: u64) -> OpResult {
        let Some(s) = self.storage(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        if idx < u64::from(s.count) && s.occupied[idx as usize] {
            OpResult {
                slot: Some(idx),
                probes: 1,
                hit: true,
            }
        } else {
            OpResult {
                slot: None,
                probes: 1,
                hit: false,
            }
        }
    }

    /// Vector push; wraps to slot 0 when full (pre-sized storage).
    pub fn vec_push(&mut self, g: GlobalId) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        let slot = if s.count < s.entries {
            let slot = u64::from(s.count);
            s.count += 1;
            slot
        } else {
            0 // Full: overwrite the head (no dynamic growth on NIC).
        };
        s.occupied[slot as usize] = true;
        OpResult {
            slot: Some(slot),
            probes: 1,
            hit: true,
        }
    }

    /// Vector delete: *tombstones only* (Netronome semantics — "deletion
    /// calls only mark the entries as invalid").
    pub fn vec_delete(&mut self, g: GlobalId, idx: u64) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        if idx < u64::from(s.count) {
            s.occupied[idx as usize] = false;
            OpResult {
                slot: Some(idx),
                probes: 1,
                hit: true,
            }
        } else {
            OpResult {
                slot: None,
                probes: 1,
                hit: false,
            }
        }
    }

    /// Current logical entry count of a structure.
    pub fn len_of(&self, g: GlobalId) -> u32 {
        self.storage(g).map_or(0, |s| s.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_ir::Module;

    fn store() -> (StateStore, GlobalId, GlobalId) {
        let mut m = Module::new("t");
        let map = m.add_global("map", StateKind::HashMap, 16, 64);
        let vec = m.add_global("vec", StateKind::Vector, 8, 8);
        (StateStore::new(&m), map, vec)
    }

    #[test]
    fn load_store_round_trip() {
        let (mut s, map, _) = store();
        s.store(map, 3, 8, 4, 0xdead_beef);
        assert_eq!(s.load(map, 3, 8, 4), 0xdead_beef);
        assert_eq!(s.load(map, 3, 8, 2), 0xbeef);
        assert_eq!(s.load(map, 4, 8, 4), 0);
    }

    #[test]
    fn map_insert_then_find() {
        let (mut s, map, _) = store();
        let ins = s.map_insert(map, 0x1234);
        assert!(ins.slot.is_some());
        assert!(!ins.hit); // New key.
        let find = s.map_find(map, 0x1234);
        assert_eq!(find.slot, ins.slot);
        assert!(find.hit);
        assert!(find.probes >= 1 && find.probes <= BUCKET_SLOTS as u32);
        // Re-insert is idempotent.
        let again = s.map_insert(map, 0x1234);
        assert_eq!(again.slot, ins.slot);
        assert!(again.hit);
        assert_eq!(s.len_of(map), 1);
    }

    #[test]
    fn map_miss_and_erase() {
        let (mut s, map, _) = store();
        assert!(!s.map_find(map, 7).hit);
        s.map_insert(map, 7);
        assert!(s.map_erase(map, 7).hit);
        assert!(!s.map_find(map, 7).hit);
        assert_eq!(s.len_of(map), 0);
    }

    #[test]
    fn bucket_overflow_evicts() {
        let mut m = Module::new("t");
        // 4 entries = exactly one bucket.
        let map = m.add_global("map", StateKind::HashMap, 16, 4);
        let mut s = StateStore::new(&m);
        for k in 1..=5u64 {
            s.map_insert(map, k);
        }
        // All five keys hashed to the single bucket; one was evicted.
        let hits = (1..=5u64).filter(|&k| s.map_find(map, k).hit).count();
        assert_eq!(hits, 4);
    }

    #[test]
    fn vector_push_get_delete_tombstones() {
        let (mut s, _, vec) = store();
        let a = s.vec_push(vec).slot.unwrap();
        let b = s.vec_push(vec).slot.unwrap();
        assert_eq!((a, b), (0, 1));
        assert!(s.vec_get(vec, 0).hit);
        s.vec_delete(vec, 0);
        assert!(!s.vec_get(vec, 0).hit); // Tombstoned, not shifted.
        assert!(s.vec_get(vec, 1).hit);
        assert_eq!(s.len_of(vec), 2); // Length unchanged by delete.
    }

    #[test]
    fn vector_wraps_when_full() {
        let (mut s, _, vec) = store();
        for _ in 0..8 {
            s.vec_push(vec);
        }
        let wrapped = s.vec_push(vec);
        assert_eq!(wrapped.slot, Some(0));
    }

    #[test]
    fn reset_clears_everything() {
        let (mut s, map, vec) = store();
        s.map_insert(map, 9);
        s.vec_push(vec);
        s.store(map, 0, 0, 4, 77);
        s.reset();
        assert!(!s.map_find(map, 9).hit);
        assert_eq!(s.len_of(vec), 0);
        assert_eq!(s.load(map, 0, 0, 4), 0);
    }

    fn flow_store(idle: u32, hard: u32, evict: nf_ir::EvictPolicy, entries: u32) -> (StateStore, GlobalId) {
        let mut m = Module::new("t");
        let t = m.add_flow_table(
            "flows",
            16,
            entries,
            nf_ir::FlowSpec {
                idle_timeout: idle,
                hard_timeout: hard,
                evict,
            },
        );
        (StateStore::new(&m), t)
    }

    #[test]
    fn flow_upsert_then_lookup_and_remove() {
        let (mut s, t) = flow_store(0, 0, nf_ir::EvictPolicy::Lru, 64);
        let ins = s.flow_upsert(t, 0xabcd, 1);
        assert!(!ins.hit);
        let slot = ins.slot.unwrap();
        let find = s.flow_lookup(t, 0xabcd, 2);
        assert!(find.hit);
        assert_eq!(find.slot, Some(slot));
        // Upsert on a live key refreshes rather than inserting.
        let again = s.flow_upsert(t, 0xabcd, 3);
        assert!(again.hit);
        assert_eq!(s.flow_counters(t).insertions, 1);
        assert!(s.flow_remove(t, 0xabcd, 4).hit);
        assert!(!s.flow_lookup(t, 0xabcd, 5).hit);
    }

    #[test]
    fn flow_idle_timeout_expires_entries() {
        let (mut s, t) = flow_store(10, 0, nf_ir::EvictPolicy::Lru, 64);
        s.flow_upsert(t, 7, 0);
        let slot = s.flow_lookup(t, 7, 5).slot.unwrap();
        s.store(t, slot, 0, 4, 99);
        // Tick 10: age 10, not past the idle limit (refreshes last_seen).
        assert!(s.flow_lookup(t, 7, 10).hit);
        // Tick 21: age 11 since the refresh — expired.
        let miss = s.flow_lookup(t, 7, 21);
        assert!(!miss.hit);
        assert_eq!(s.flow_counters(t).expirations, 1);
        // A reclaimed slot starts zeroed.
        let re = s.flow_upsert(t, 7, 22);
        assert_eq!(s.load(t, re.slot.unwrap(), 0, 4), 0);
    }

    #[test]
    fn flow_hard_timeout_ignores_refreshes() {
        let (mut s, t) = flow_store(0, 10, nf_ir::EvictPolicy::Lru, 64);
        s.flow_upsert(t, 7, 0);
        for now in 1..=10 {
            assert!(s.flow_lookup(t, 7, now).hit, "tick {now}");
        }
        // Constant refreshes cannot save it past the hard limit.
        assert!(!s.flow_lookup(t, 7, 11).hit);
        assert_eq!(s.flow_counters(t).expirations, 1);
    }

    #[test]
    fn flow_lru_evicts_the_stalest_bucket_entry() {
        // 4 entries = one bucket; all keys collide.
        let (mut s, t) = flow_store(0, 0, nf_ir::EvictPolicy::Lru, 4);
        for k in 1..=4u64 {
            s.flow_upsert(t, k, k);
        }
        // Touch 1 so key 2 becomes the LRU victim.
        s.flow_lookup(t, 1, 5);
        s.flow_upsert(t, 99, 6);
        assert!(!s.flow_lookup(t, 2, 7).hit);
        assert!(s.flow_lookup(t, 1, 7).hit);
        assert!(s.flow_lookup(t, 99, 7).hit);
        assert_eq!(s.flow_counters(t).evictions, 1);
    }

    #[test]
    fn flow_random_eviction_is_deterministic() {
        let run = || {
            let (mut s, t) = flow_store(0, 0, nf_ir::EvictPolicy::Random, 4);
            for k in 1..=12u64 {
                s.flow_upsert(t, k, k);
            }
            (1..=12u64)
                .map(|k| s.flow_lookup(t, k, 13).hit)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // Reset replays the identical eviction stream.
        let (mut s, t) = flow_store(0, 0, nf_ir::EvictPolicy::Random, 4);
        for k in 1..=12u64 {
            s.flow_upsert(t, k, k);
        }
        let first: Vec<bool> = (1..=12u64).map(|k| s.flow_lookup(t, k, 13).hit).collect();
        s.reset();
        for k in 1..=12u64 {
            s.flow_upsert(t, k, k);
        }
        let second: Vec<bool> = (1..=12u64).map(|k| s.flow_lookup(t, k, 13).hit).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn flow_reset_clears_counters_and_entries() {
        let (mut s, t) = flow_store(5, 0, nf_ir::EvictPolicy::Lru, 4);
        for k in 0..20u64 {
            s.flow_upsert(t, k, k);
        }
        assert!(s.flow_counters(t).churn() > 0);
        s.reset();
        assert_eq!(s.flow_counters(t), FlowCounters::default());
        assert_eq!(s.len_of(t), 0);
    }
}
