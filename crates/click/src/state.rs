//! Runtime storage for stateful NF globals.
//!
//! Data-structure semantics follow the *SmartNIC-style* implementations
//! that Clara reverse-ports (Section 3.3 of the paper): hash maps use a
//! fixed set of buckets (no linear probing past the bucket, no dynamic
//! allocation) and vector deletion only tombstones entries.

use nf_ir::{GlobalId, Module, StateKind};
use serde::{Deserialize, Serialize};

/// Slots per hash bucket (Netronome-style fixed bucket set).
pub const BUCKET_SLOTS: u64 = 4;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GlobalStorage {
    kind: StateKind,
    entry_bytes: u32,
    entries: u32,
    bytes: Vec<u8>,
    /// Occupancy/validity flags (hash maps and vectors).
    occupied: Vec<bool>,
    /// Stored keys (hash maps).
    keys: Vec<u64>,
    /// Logical length (vectors).
    count: u32,
}

/// Storage for every global of a module.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StateStore {
    globals: Vec<GlobalStorage>,
}

/// Result of a hash-map or vector operation, including the probe count
/// needed for faithful NIC costing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult {
    /// Slot index (entry number) the operation resolved to, if any.
    pub slot: Option<u64>,
    /// Number of slots examined.
    pub probes: u32,
    /// Whether the operation found what it was looking for.
    pub hit: bool,
}

fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl StateStore {
    /// Allocates storage for every global in `module`.
    pub fn new(module: &Module) -> StateStore {
        let globals = module
            .globals
            .iter()
            .map(|g| {
                let n = g.entries.max(1);
                GlobalStorage {
                    kind: g.kind,
                    entry_bytes: g.entry_bytes.max(1),
                    entries: n,
                    bytes: vec![0; (g.entry_bytes.max(1) as usize) * n as usize],
                    occupied: vec![false; n as usize],
                    keys: vec![0; n as usize],
                    count: 0,
                }
            })
            .collect();
        StateStore { globals }
    }

    /// Clears all state (between experiment runs).
    pub fn reset(&mut self) {
        for g in &mut self.globals {
            g.bytes.iter_mut().for_each(|b| *b = 0);
            g.occupied.iter_mut().for_each(|o| *o = false);
            g.keys.iter_mut().for_each(|k| *k = 0);
            g.count = 0;
        }
    }

    fn storage(&self, g: GlobalId) -> Option<&GlobalStorage> {
        self.globals.get(g.index())
    }

    fn storage_mut(&mut self, g: GlobalId) -> Option<&mut GlobalStorage> {
        self.globals.get_mut(g.index())
    }

    /// True when the store has storage for `g`.
    pub fn has(&self, g: GlobalId) -> bool {
        self.storage(g).is_some()
    }

    /// Loads `width` bytes (little-endian) at `(index, offset)` of global
    /// `g`. Out-of-range accesses wrap to the structure size (NF code is
    /// expected to mask indices; wrapping keeps the interpreter total).
    pub fn load(&self, g: GlobalId, index: u64, offset: u32, width: u32) -> u64 {
        let Some(s) = self.storage(g) else {
            return 0;
        };
        let idx = (index % u64::from(s.entries)) as usize;
        let base = idx * s.entry_bytes as usize + (offset as usize % s.entry_bytes as usize);
        let mut v = 0u64;
        for i in 0..width.min(8) as usize {
            let b = s.bytes.get(base + i).copied().unwrap_or(0);
            v |= u64::from(b) << (8 * i);
        }
        v
    }

    /// Stores `width` bytes (little-endian) at `(index, offset)`.
    pub fn store(&mut self, g: GlobalId, index: u64, offset: u32, width: u32, value: u64) {
        let Some(s) = self.storage_mut(g) else {
            return;
        };
        let idx = (index % u64::from(s.entries)) as usize;
        let base = idx * s.entry_bytes as usize + (offset as usize % s.entry_bytes as usize);
        for i in 0..width.min(8) as usize {
            if let Some(b) = s.bytes.get_mut(base + i) {
                *b = ((value >> (8 * i)) & 0xff) as u8;
            }
        }
    }

    fn bucket_range(s: &GlobalStorage, key: u64) -> (u64, u64) {
        let n = u64::from(s.entries);
        let nbuckets = (n / BUCKET_SLOTS).max(1);
        let start = (mix64(key) % nbuckets) * BUCKET_SLOTS;
        (start, (start + BUCKET_SLOTS).min(n))
    }

    /// Hash-map lookup with fixed-bucket semantics.
    pub fn map_find(&self, g: GlobalId, key: u64) -> OpResult {
        let Some(s) = self.storage(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        let (start, end) = Self::bucket_range(s, key);
        let mut probes = 0;
        for slot in start..end {
            probes += 1;
            if s.occupied[slot as usize] && s.keys[slot as usize] == key {
                return OpResult {
                    slot: Some(slot),
                    probes,
                    hit: true,
                };
            }
        }
        OpResult {
            slot: None,
            probes,
            hit: false,
        }
    }

    /// Hash-map insert: reuses the key's slot, else the first free slot of
    /// the bucket, else evicts the first slot (fixed buckets can overflow).
    pub fn map_insert(&mut self, g: GlobalId, key: u64) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        let (start, end) = Self::bucket_range(s, key);
        let mut probes = 0;
        let mut free: Option<u64> = None;
        for slot in start..end {
            probes += 1;
            let si = slot as usize;
            if s.occupied[si] && s.keys[si] == key {
                return OpResult {
                    slot: Some(slot),
                    probes,
                    hit: true,
                };
            }
            if !s.occupied[si] && free.is_none() {
                free = Some(slot);
            }
        }
        let slot = free.unwrap_or(start); // Evict on overflow.
        let si = slot as usize;
        if !s.occupied[si] {
            s.count += 1;
        } else {
            // Evicting: wipe the old entry's value bytes.
            let eb = s.entry_bytes as usize;
            s.bytes[si * eb..(si + 1) * eb]
                .iter_mut()
                .for_each(|b| *b = 0);
        }
        s.occupied[si] = true;
        s.keys[si] = key;
        OpResult {
            slot: Some(slot),
            probes,
            hit: false,
        }
    }

    /// Hash-map erase (tombstones the slot).
    pub fn map_erase(&mut self, g: GlobalId, key: u64) -> OpResult {
        let found = self.map_find(g, key);
        if let (Some(slot), Some(s)) = (found.slot, self.storage_mut(g)) {
            s.occupied[slot as usize] = false;
            s.keys[slot as usize] = 0;
            s.count = s.count.saturating_sub(1);
        }
        found
    }

    /// Vector element access: valid when `idx < len` and not tombstoned.
    pub fn vec_get(&self, g: GlobalId, idx: u64) -> OpResult {
        let Some(s) = self.storage(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        if idx < u64::from(s.count) && s.occupied[idx as usize] {
            OpResult {
                slot: Some(idx),
                probes: 1,
                hit: true,
            }
        } else {
            OpResult {
                slot: None,
                probes: 1,
                hit: false,
            }
        }
    }

    /// Vector push; wraps to slot 0 when full (pre-sized storage).
    pub fn vec_push(&mut self, g: GlobalId) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        let slot = if s.count < s.entries {
            let slot = u64::from(s.count);
            s.count += 1;
            slot
        } else {
            0 // Full: overwrite the head (no dynamic growth on NIC).
        };
        s.occupied[slot as usize] = true;
        OpResult {
            slot: Some(slot),
            probes: 1,
            hit: true,
        }
    }

    /// Vector delete: *tombstones only* (Netronome semantics — "deletion
    /// calls only mark the entries as invalid").
    pub fn vec_delete(&mut self, g: GlobalId, idx: u64) -> OpResult {
        let Some(s) = self.storage_mut(g) else {
            return OpResult {
                slot: None,
                probes: 0,
                hit: false,
            };
        };
        if idx < u64::from(s.count) {
            s.occupied[idx as usize] = false;
            OpResult {
                slot: Some(idx),
                probes: 1,
                hit: true,
            }
        } else {
            OpResult {
                slot: None,
                probes: 1,
                hit: false,
            }
        }
    }

    /// Current logical entry count of a structure.
    pub fn len_of(&self, g: GlobalId) -> u32 {
        self.storage(g).map_or(0, |s| s.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_ir::Module;

    fn store() -> (StateStore, GlobalId, GlobalId) {
        let mut m = Module::new("t");
        let map = m.add_global("map", StateKind::HashMap, 16, 64);
        let vec = m.add_global("vec", StateKind::Vector, 8, 8);
        (StateStore::new(&m), map, vec)
    }

    #[test]
    fn load_store_round_trip() {
        let (mut s, map, _) = store();
        s.store(map, 3, 8, 4, 0xdead_beef);
        assert_eq!(s.load(map, 3, 8, 4), 0xdead_beef);
        assert_eq!(s.load(map, 3, 8, 2), 0xbeef);
        assert_eq!(s.load(map, 4, 8, 4), 0);
    }

    #[test]
    fn map_insert_then_find() {
        let (mut s, map, _) = store();
        let ins = s.map_insert(map, 0x1234);
        assert!(ins.slot.is_some());
        assert!(!ins.hit); // New key.
        let find = s.map_find(map, 0x1234);
        assert_eq!(find.slot, ins.slot);
        assert!(find.hit);
        assert!(find.probes >= 1 && find.probes <= BUCKET_SLOTS as u32);
        // Re-insert is idempotent.
        let again = s.map_insert(map, 0x1234);
        assert_eq!(again.slot, ins.slot);
        assert!(again.hit);
        assert_eq!(s.len_of(map), 1);
    }

    #[test]
    fn map_miss_and_erase() {
        let (mut s, map, _) = store();
        assert!(!s.map_find(map, 7).hit);
        s.map_insert(map, 7);
        assert!(s.map_erase(map, 7).hit);
        assert!(!s.map_find(map, 7).hit);
        assert_eq!(s.len_of(map), 0);
    }

    #[test]
    fn bucket_overflow_evicts() {
        let mut m = Module::new("t");
        // 4 entries = exactly one bucket.
        let map = m.add_global("map", StateKind::HashMap, 16, 4);
        let mut s = StateStore::new(&m);
        for k in 1..=5u64 {
            s.map_insert(map, k);
        }
        // All five keys hashed to the single bucket; one was evicted.
        let hits = (1..=5u64).filter(|&k| s.map_find(map, k).hit).count();
        assert_eq!(hits, 4);
    }

    #[test]
    fn vector_push_get_delete_tombstones() {
        let (mut s, _, vec) = store();
        let a = s.vec_push(vec).slot.unwrap();
        let b = s.vec_push(vec).slot.unwrap();
        assert_eq!((a, b), (0, 1));
        assert!(s.vec_get(vec, 0).hit);
        s.vec_delete(vec, 0);
        assert!(!s.vec_get(vec, 0).hit); // Tombstoned, not shifted.
        assert!(s.vec_get(vec, 1).hit);
        assert_eq!(s.len_of(vec), 2); // Length unchanged by delete.
    }

    #[test]
    fn vector_wraps_when_full() {
        let (mut s, _, vec) = store();
        for _ in 0..8 {
            s.vec_push(vec);
        }
        let wrapped = s.vec_push(vec);
        assert_eq!(wrapped.slot, Some(0));
    }

    #[test]
    fn reset_clears_everything() {
        let (mut s, map, vec) = store();
        s.map_insert(map, 9);
        s.vec_push(vec);
        s.store(map, 0, 0, 4, 77);
        s.reset();
        assert!(!s.map_find(map, 9).hit);
        assert_eq!(s.len_of(vec), 0);
        assert_eq!(s.load(map, 0, 0, 4), 0);
    }
}
