//! A Click-like NF framework model with executable semantics.
//!
//! This crate substitutes for the Click modular router in the Clara
//! reproduction. It provides:
//!
//! - [`PacketView`]: a mutable header-field view of a [`trafgen::Packet`];
//! - [`StateStore`]: runtime storage for an NF's stateful globals, with
//!   Netronome-style fixed-bucket hash maps and tombstoned vectors (the
//!   semantics Clara's *reverse porting* targets, Section 3.3);
//! - [`Machine`]: an interpreter that executes an NF's NIR module packet by
//!   packet, recording an [`ExecTrace`] of basic-block visits, stateful
//!   memory accesses, packet accesses, and framework API events;
//! - [`RefMachine`]: an independently written reference executor for the
//!   same NIR, compared against [`Machine`] event-for-event by the
//!   `clara difftest` oracle;
//! - the NF corpus: all 17 Click programs of the paper's Table 2 plus the
//!   Figure 1 motivation NFs, each defined purely by its NIR module
//!   ([`NfElement`]).
//!
//! Defining elements *only* as IR and executing them through one
//! interpreter guarantees that Clara's static analyses and the simulator's
//! dynamic traces can never disagree about program structure.
//!
//! # Examples
//!
//! ```
//! use click_model::{corpus, Machine};
//! use trafgen::{Trace, WorkloadSpec};
//!
//! let nf = click_model::elements::aggcounter();
//! let mut machine = Machine::new(&nf.module).expect("valid module");
//! let trace = Trace::generate(&WorkloadSpec::large_flows(), 10, 1);
//! for pkt in &trace.pkts {
//!     let t = machine.run(pkt).expect("no step limit");
//!     assert!(!t.events.is_empty());
//! }
//! assert!(corpus().len() >= 17);
//! ```

pub mod chain;
pub mod element;
pub mod elements;
pub mod exec;
pub mod interp;
pub mod packet;
pub mod state;

pub use chain::{Chain, ChainResult};
pub use element::{
    corpus, extended_corpus, motivation_variants, ElementMeta, InsightClass, NfElement,
};
pub use exec::{ApiEvent, Event, ExecTrace, RefMachine, TraceError};
pub use interp::Machine;
pub use packet::{PacketSnapshot, PacketView};
pub use state::{FlowCounters, StateStore};
