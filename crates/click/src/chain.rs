//! Service chains: multiple NF elements processing each packet in turn.
//!
//! "Packet processing often requires the use of multiple NFs" (paper
//! Section 4.5) — a [`Chain`] wires elements in sequence: a packet enters
//! the first element; if it is *sent* (any output port) it continues to
//! the next element; if it is *dropped* the chain ends. The per-element
//! traces are kept separate so each stage can be profiled, placed and
//! ported independently — which is exactly how Clara's per-NF insights
//! compose onto a chain.

use nf_ir::Module;

use crate::exec::{ExecTrace, TraceError};
use crate::interp::Machine;
use crate::packet::{PacketView, Verdict};

/// A linear service chain of NF elements.
#[derive(Debug, Clone)]
pub struct Chain {
    stages: Vec<Machine>,
    names: Vec<String>,
}

/// The outcome of pushing one packet through a chain.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Per-stage execution traces, in order, for the stages that ran.
    pub traces: Vec<ExecTrace>,
    /// Verdict of the last stage that ran.
    pub verdict: Option<Verdict>,
    /// Index of the stage that dropped the packet, if any.
    pub dropped_at: Option<usize>,
}

impl Chain {
    /// Builds a chain from element modules (verifying each).
    ///
    /// # Errors
    ///
    /// Returns the first verification failure.
    pub fn new<'a>(
        modules: impl IntoIterator<Item = &'a Module>,
    ) -> Result<Chain, nf_ir::verify::VerifyError> {
        let mut stages = Vec::new();
        let mut names = Vec::new();
        for m in modules {
            stages.push(Machine::new(m)?);
            names.push(m.name.clone());
        }
        Ok(Chain { stages, names })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Mutable access to one stage's machine (rule installation etc.).
    pub fn stage_mut(&mut self, idx: usize) -> Option<&mut Machine> {
        self.stages.get_mut(idx)
    }

    /// Resets every stage's persistent state.
    pub fn reset(&mut self) {
        for s in &mut self.stages {
            s.reset();
        }
    }

    /// Pushes one packet through the chain.
    ///
    /// Each stage sees the (possibly rewritten) packet produced by the
    /// previous stage: header modifications propagate down the chain.
    pub fn run(&mut self, pkt: &trafgen::Packet) -> Result<ChainResult, TraceError> {
        let mut view = PacketView::new(pkt);
        let mut traces = Vec::with_capacity(self.stages.len());
        let mut verdict = None;
        let mut dropped_at = None;
        for (i, stage) in self.stages.iter_mut().enumerate() {
            // Each stage starts with a fresh verdict on the same view.
            view.verdict = None;
            let (trace, v) = stage.run_view(&mut view)?;
            traces.push(trace);
            verdict = v;
            if v == Some(Verdict::Dropped) {
                dropped_at = Some(i);
                break;
            }
        }
        Ok(ChainResult {
            traces,
            verdict,
            dropped_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements;
    use trafgen::{Trace, WorkloadSpec};

    #[test]
    fn chain_propagates_header_rewrites() {
        // anonipaddr rewrites addresses; aggcounter then counts the
        // rewritten destinations — both stages must run.
        let anon = elements::anonipaddr();
        let agg = elements::aggcounter();
        let mut chain = Chain::new([&anon.module, &agg.module]).expect("verifies");
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 20, 1);
        for p in &trace.pkts {
            let r = chain.run(p).expect("runs");
            assert_eq!(r.traces.len(), 2);
            assert!(r.dropped_at.is_none());
        }
        // The counter stage saw all 20 packets.
        let total = chain.stages[1].state.load(nf_ir::GlobalId(1), 0, 0, 4);
        assert_eq!(total, 20);
    }

    #[test]
    fn drop_in_early_stage_skips_the_rest() {
        // A firewall with no rules drops everything; the counter after it
        // must see nothing.
        let fw = elements::firewall();
        let agg = elements::aggcounter();
        let mut chain = Chain::new([&fw.module, &agg.module]).expect("verifies");
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        let trace = Trace::generate(&spec, 15, 2);
        for p in &trace.pkts {
            let r = chain.run(p).expect("runs");
            assert_eq!(r.dropped_at, Some(0));
            assert_eq!(r.traces.len(), 1);
        }
        assert_eq!(chain.stages[1].state.load(nf_ir::GlobalId(1), 0, 0, 4), 0);
    }

    #[test]
    fn stage_state_is_installable() {
        let fw = elements::firewall();
        let agg = elements::aggcounter();
        let mut chain = Chain::new([&fw.module, &agg.module]).expect("verifies");
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            syn_ratio: 0.0,
            ..WorkloadSpec::large_flows().with_flows(2)
        };
        let trace = Trace::generate(&spec, 12, 3);
        let pfx = u64::from(trace.pkts[0].flow.src_ip >> 12);
        chain
            .stage_mut(0)
            .expect("has stage")
            .state
            .store(nf_ir::GlobalId(1), 0, 0, 4, pfx);
        for p in &trace.pkts {
            chain.run(p).expect("runs");
        }
        // Admitted packets reached the counter.
        let counted = chain.stages[1].state.load(nf_ir::GlobalId(1), 0, 0, 4);
        assert_eq!(counted, 12);
    }

    #[test]
    fn reset_clears_every_stage() {
        let agg = elements::aggcounter();
        let udp = elements::udpcount();
        let mut chain = Chain::new([&agg.module, &udp.module]).expect("verifies");
        let trace = Trace::generate(&WorkloadSpec::imix(), 10, 4);
        for p in &trace.pkts {
            chain.run(p).expect("runs");
        }
        chain.reset();
        assert_eq!(chain.stages[0].state.load(nf_ir::GlobalId(1), 0, 0, 4), 0);
        assert_eq!(chain.stages[1].state.load(nf_ir::GlobalId(2), 0, 0, 4), 0);
    }
}
