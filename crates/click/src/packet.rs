//! Mutable packet header views.

use std::collections::HashMap;

use nf_ir::PktField;
use trafgen::{Packet, Proto};

/// A mutable view of one packet's header fields and payload.
///
/// Header fields are materialized from the immutable trace packet on
/// construction; NF code can then read and rewrite them (NAT address
/// rewriting, TTL decrements, checksum patches). Payload bytes are
/// generated lazily from the packet's deterministic seed, with a sparse
/// overlay for writes.
#[derive(Debug, Clone)]
pub struct PacketView {
    /// The underlying trace packet.
    pub base: Packet,
    fields: HashMap<PktField, u64>,
    payload_overlay: HashMap<u16, u8>,
    /// Output port chosen by `pkt_send` (None until sent/dropped).
    pub verdict: Option<Verdict>,
}

/// What the NF decided to do with the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forwarded to an output port.
    Sent(u16),
    /// Dropped.
    Dropped,
}

impl PacketView {
    /// Builds the view, materializing header fields from the trace packet.
    pub fn new(pkt: &Packet) -> PacketView {
        let mut fields = HashMap::new();
        let f = pkt.flow;
        let ip_len = u64::from(pkt.size.saturating_sub(14));
        fields.insert(PktField::EthDst, 0x00aa_bb01);
        fields.insert(PktField::EthSrc, 0x00cc_dd02);
        fields.insert(PktField::EthType, 0x0800);
        fields.insert(PktField::IpVhl, 0x45);
        fields.insert(PktField::IpTos, 0);
        fields.insert(PktField::IpLen, ip_len);
        fields.insert(PktField::IpId, u64::from(pkt.seq & 0xffff));
        fields.insert(PktField::IpTtl, u64::from(pkt.ttl));
        fields.insert(PktField::IpProto, u64::from(f.proto.number()));
        fields.insert(PktField::IpCsum, 0xbeef);
        fields.insert(PktField::IpSrc, u64::from(f.src_ip));
        fields.insert(PktField::IpDst, u64::from(f.dst_ip));
        match f.proto {
            Proto::Tcp => {
                fields.insert(PktField::TcpSport, u64::from(f.src_port));
                fields.insert(PktField::TcpDport, u64::from(f.dst_port));
                fields.insert(PktField::TcpSeq, u64::from(pkt.seq));
                fields.insert(PktField::TcpAck, u64::from(pkt.seq.wrapping_add(1)));
                fields.insert(PktField::TcpOff, 0x50);
                fields.insert(PktField::TcpFlags, u64::from(pkt.tcp_flags));
                fields.insert(PktField::TcpWin, 0xffff);
                fields.insert(PktField::TcpCsum, 0xcafe);
            }
            Proto::Udp => {
                fields.insert(PktField::UdpSport, u64::from(f.src_port));
                fields.insert(PktField::UdpDport, u64::from(f.dst_port));
                fields.insert(PktField::UdpLen, u64::from(pkt.size.saturating_sub(34)));
                fields.insert(PktField::UdpCsum, 0xfeed);
            }
        }
        PacketView {
            base: *pkt,
            fields,
            payload_overlay: HashMap::new(),
            verdict: None,
        }
    }

    /// Reads a header field or payload word (0 for absent fields, e.g.
    /// TCP fields of a UDP packet).
    pub fn get(&self, field: PktField) -> u64 {
        match field {
            PktField::Payload(off) => {
                let mut word = 0u64;
                for i in 0..4u16 {
                    let b = self
                        .payload_overlay
                        .get(&(off + i))
                        .copied()
                        .unwrap_or_else(|| self.base.payload_byte(off + i));
                    word = (word << 8) | u64::from(b);
                }
                word
            }
            _ => self.fields.get(&field).copied().unwrap_or(0),
        }
    }

    /// Writes a header field or payload word.
    pub fn set(&mut self, field: PktField, value: u64) {
        match field {
            PktField::Payload(off) => {
                for i in 0..4u16 {
                    let byte = ((value >> (8 * (3 - i))) & 0xff) as u8;
                    self.payload_overlay.insert(off + i, byte);
                }
            }
            _ => {
                self.fields.insert(field, value);
            }
        }
    }

    /// Packet length in bytes.
    pub fn len(&self) -> u16 {
        self.base.size
    }

    /// Packets are never empty (minimum 64-byte frames).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> u16 {
        self.base.payload_len()
    }

    /// A deterministic snapshot of every observable packet output: header
    /// fields and payload-overlay bytes in sorted order, plus the
    /// verdict. Two executions emitted the same packet iff their
    /// snapshots are equal — this is what "emitted packets agree" means
    /// for the difftest oracle.
    pub fn snapshot(&self) -> PacketSnapshot {
        let mut fields: Vec<(PktField, u64)> = self.fields.iter().map(|(f, v)| (*f, *v)).collect();
        fields.sort_unstable();
        let mut payload: Vec<(u16, u8)> = self
            .payload_overlay
            .iter()
            .map(|(off, b)| (*off, *b))
            .collect();
        payload.sort_unstable();
        PacketSnapshot {
            fields,
            payload,
            verdict: self.verdict,
        }
    }
}

/// Canonical, order-independent image of a packet's observable outputs
/// (see [`PacketView::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSnapshot {
    /// Header fields, sorted by field.
    pub fields: Vec<(PktField, u64)>,
    /// Rewritten payload bytes, sorted by offset.
    pub payload: Vec<(u16, u8)>,
    /// What the NF decided to do with the packet.
    pub verdict: Option<Verdict>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafgen::{FlowKey, TCP_SYN};

    fn pkt() -> Packet {
        Packet {
            flow: FlowKey {
                src_ip: 0x0a000001,
                dst_ip: 0xc0a80101,
                src_port: 1234,
                dst_port: 80,
                proto: Proto::Tcp,
            },
            flow_id: 0,
            size: 128,
            tcp_flags: TCP_SYN,
            seq: 42,
            ttl: 64,
            payload_seed: 9,
        }
    }

    #[test]
    fn fields_materialize_from_packet() {
        let v = PacketView::new(&pkt());
        assert_eq!(v.get(PktField::IpSrc), 0x0a000001);
        assert_eq!(v.get(PktField::TcpDport), 80);
        assert_eq!(v.get(PktField::IpLen), 128 - 14);
        assert_eq!(v.get(PktField::IpTtl), 64);
    }

    #[test]
    fn writes_are_visible() {
        let mut v = PacketView::new(&pkt());
        v.set(PktField::IpDst, 0x0a000099);
        assert_eq!(v.get(PktField::IpDst), 0x0a000099);
    }

    #[test]
    fn udp_packet_has_no_tcp_fields() {
        let mut p = pkt();
        p.flow.proto = Proto::Udp;
        p.tcp_flags = 0;
        let v = PacketView::new(&p);
        assert_eq!(v.get(PktField::TcpSeq), 0);
        assert_eq!(v.get(PktField::UdpSport), 1234);
    }

    #[test]
    fn payload_words_read_and_write() {
        let mut v = PacketView::new(&pkt());
        let orig = v.get(PktField::Payload(4));
        v.set(PktField::Payload(4), 0xdeadbeef);
        assert_eq!(v.get(PktField::Payload(4)), 0xdeadbeef);
        assert_ne!(orig, 0xdeadbeef_u64.wrapping_add(1));
        // Adjacent unwritten bytes still come from the seed.
        let _ = v.get(PktField::Payload(8));
    }
}
