//! The NF element type and the evaluated corpus registry.

use nf_ir::Module;
use serde::{Deserialize, Serialize};

/// The classes of offloading insights Clara generates (Table 2's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InsightClass {
    /// Cross-platform instruction/memory prediction (circle).
    Prediction,
    /// Accelerator algorithm identification (triangle).
    AlgorithmId,
    /// Framework-API reverse porting (solid triangle).
    ReversePorting,
    /// Multicore scale-out factor analysis (solid circle).
    ScaleOut,
    /// NF state placement (diamond).
    Placement,
    /// Variable reordering / access coalescing (solid diamond).
    Coalescing,
    /// NF colocation analysis (crossed circle).
    Colocation,
}

impl InsightClass {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            InsightClass::Prediction => "prediction",
            InsightClass::AlgorithmId => "algo-id",
            InsightClass::ReversePorting => "reverse-port",
            InsightClass::ScaleOut => "scale-out",
            InsightClass::Placement => "placement",
            InsightClass::Coalescing => "coalescing",
            InsightClass::Colocation => "colocation",
        }
    }
}

/// Metadata mirroring the paper's Table 2 columns.
#[derive(Debug, Clone, Serialize)]
pub struct ElementMeta {
    /// Element name as in Table 2.
    pub name: &'static str,
    /// Lines of (Click C++) code reported by the paper.
    pub paper_loc: u32,
    /// Whether the element keeps cross-packet state.
    pub stateful: bool,
    /// Insight classes the paper applies to this element.
    pub insights: Vec<InsightClass>,
    /// One-line description.
    pub description: &'static str,
}

/// An NF element: its NIR module plus Table 2 metadata.
///
/// Elements carry no behaviour of their own — [`crate::Machine`] interprets
/// the module, so analysis and execution share one definition.
#[derive(Debug, Clone, Serialize)]
pub struct NfElement {
    /// The element's IR (first function = packet handler).
    pub module: Module,
    /// Table 2 metadata.
    pub meta: ElementMeta,
}

impl NfElement {
    /// The element name.
    pub fn name(&self) -> &'static str {
        self.meta.name
    }
}

/// The full Table 2 corpus: all 17 evaluated Click programs.
pub fn corpus() -> Vec<NfElement> {
    use crate::elements::*;
    vec![
        anonipaddr(),
        tcpack(),
        udpipencap(),
        forcetcp(),
        tcpresp(),
        tcpgen(),
        aggcounter(),
        timefilter(),
        cmsketch(),
        wepdecap(),
        iplookup(256),
        iprewriter(),
        ipclassifier(),
        dnsproxy(),
        mazunat(),
        udpcount(),
        webgen(),
    ]
}

/// The extended corpus: Table 2 plus the motivation NFs and the extra
/// elements this library ships beyond the paper (load balancer, rate
/// limiter, VLAN tagger, SYN-cookie proxy, GRE tunnel, flow exporter,
/// web-TCP bookkeeping).
pub fn extended_corpus() -> Vec<NfElement> {
    use crate::elements::*;
    let mut v = corpus();
    v.extend([
        webtcp(),
        dpi(),
        firewall(),
        heavy_hitter(),
        loadbalancer(8),
        ratelimiter(),
        vlantag(),
        syncookie(),
        gretunnel(),
        flowstats(),
        natchurn(),
        fwstate(),
        conntrack(),
        dnscache(),
        flowlimiter(),
    ]);
    v
}

/// The five Figure 1 motivation NFs (base versions; variants are built by
/// the benchmarks through port configurations and workloads).
pub fn motivation_variants() -> Vec<NfElement> {
    use crate::elements::*;
    vec![
        mazunat(),      // NAT
        dpi(),          // DPI
        firewall(),     // FW
        iplookup(256),  // LPM
        heavy_hitter(), // HH
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use trafgen::{Trace, WorkloadSpec};

    #[test]
    fn corpus_has_seventeen_elements_with_unique_names() {
        let c = corpus();
        assert_eq!(c.len(), 17);
        let mut names: Vec<&str> = c.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn every_corpus_module_verifies() {
        for e in corpus() {
            nf_ir::verify::verify_module(&e.module)
                .unwrap_or_else(|err| panic!("{}: {err}", e.name()));
        }
    }

    #[test]
    fn every_corpus_element_executes_on_traffic() {
        let spec = WorkloadSpec::imix();
        let trace = Trace::generate(&spec, 50, 42);
        for e in corpus() {
            let mut m = Machine::new(&e.module).expect("valid");
            for p in &trace.pkts {
                let t = m.run(p).unwrap_or_else(|err| panic!("{}: {err}", e.name()));
                assert!(t.steps > 0, "{} did nothing", e.name());
            }
        }
    }

    #[test]
    fn stateful_flag_matches_module_globals() {
        for e in corpus() {
            assert_eq!(
                e.meta.stateful,
                !e.module.globals.is_empty(),
                "{} statefulness mismatch",
                e.name()
            );
        }
    }

    #[test]
    fn motivation_nfs_execute() {
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 20, 7);
        for e in motivation_variants() {
            let mut m = Machine::new(&e.module).expect("valid");
            for p in &trace.pkts {
                m.run(p).unwrap_or_else(|err| panic!("{}: {err}", e.name()));
            }
        }
    }
}
