//! Executable Click-element semantics: the reference executor and the
//! execution traces every executor records per packet.
//!
//! [`RefMachine`] is "layer A" of the `clara difftest` oracle — an
//! independently structured evaluator for the same NIR that
//! [`crate::Machine`] interprets. It shares only the pieces that are
//! *defined* to be single-sourced (the ALU semantics in `nf_ir::opt` and
//! the framework-API model in the interpreter's `do_call`); control
//! flow, SSA evaluation, phi resolution, masking, and memory addressing
//! are re-derived here, so a bug in either implementation shows up as a
//! trace divergence instead of silently biasing Clara's profiles.

use std::collections::BTreeMap;

use nf_ir::{verify, ApiCall, BlockId, Function, GlobalId, Inst, MemRef, Module, Operand, Term};
use serde::{Deserialize, Serialize};
use trafgen::Packet;

use crate::interp::{self, DEFAULT_STEP_LIMIT};
use crate::packet::{PacketView, Verdict};
use crate::state::StateStore;

/// One framework-API event with enough detail for faithful NIC costing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiEvent {
    /// Which API was invoked.
    pub call: ApiCall,
    /// Number of bucket/entry probes performed (hash map / vector walks).
    pub probes: u32,
    /// Whether a lookup hit (find) or an insert found space.
    pub hit: bool,
    /// Bytes of packet data processed (checksums, header parses).
    pub bytes: u32,
}

/// One event of an execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Entered a basic block.
    Block(BlockId),
    /// A load/store to a stateful global.
    State {
        /// The global.
        global: GlobalId,
        /// Dynamic entry index (0 for scalars).
        index: u64,
        /// Byte offset within the entry (identifies the *variable*, which
        /// drives memory-coalescing analysis).
        offset: u32,
        /// Access width in bytes.
        bytes: u32,
        /// True for stores.
        write: bool,
    },
    /// A packet-data access (headers or payload).
    Pkt {
        /// Access width in bytes.
        bytes: u32,
        /// True for stores.
        write: bool,
    },
    /// A framework API call.
    Api(ApiEvent),
}

/// Everything recorded while processing one packet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Events in program order.
    pub events: Vec<Event>,
    /// Total interpreted IR instructions (a step-count sanity metric).
    pub steps: u64,
    /// The function's return value, if any.
    pub ret: Option<u64>,
}

impl ExecTrace {
    /// Block-visit sequence (loop iterations appear repeatedly).
    pub fn block_visits(&self) -> Vec<BlockId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Block(b) => Some(*b),
                _ => None,
            })
            .collect()
    }

    /// Number of stateful accesses (optionally only to one global).
    pub fn state_access_count(&self, global: Option<GlobalId>) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                Event::State { global: g, .. } => global.is_none_or(|want| *g == want),
                _ => false,
            })
            .count()
    }

    /// All API events.
    pub fn api_events(&self) -> impl Iterator<Item = &ApiEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Api(a) => Some(a),
            _ => None,
        })
    }
}

/// Interpreter failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The per-packet step limit was exceeded (runaway loop).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// A value was read before being defined (malformed SSA reached the
    /// interpreter; `verify` should have caught it).
    UndefinedValue {
        /// The value id.
        value: u32,
    },
    /// Branch to a nonexistent block.
    BadBlock {
        /// The block id.
        block: u32,
    },
    /// A global id had no storage (module/state mismatch).
    BadGlobal {
        /// The global id.
        global: u32,
    },
    /// An API call had the wrong number of arguments.
    BadApiArity {
        /// The API name.
        api: &'static str,
        /// Arguments supplied.
        got: usize,
        /// Arguments the framework ABI expects.
        want: usize,
    },
    /// An API argument was outside the range its ABI type can represent
    /// (e.g. a `pkt_send` port that does not fit in `u16`).
    ApiArgOutOfRange {
        /// The API name.
        api: &'static str,
        /// The value supplied.
        value: u64,
        /// The largest representable value.
        max: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::StepLimit { limit } => write!(f, "step limit {limit} exceeded"),
            TraceError::UndefinedValue { value } => write!(f, "undefined value %{value}"),
            TraceError::BadBlock { block } => write!(f, "branch to nonexistent bb{block}"),
            TraceError::BadGlobal { global } => write!(f, "no storage for @{global}"),
            TraceError::BadApiArity { api, got, want } => {
                write!(f, "api {api} called with {got} args (expects {want})")
            }
            TraceError::ApiArgOutOfRange { api, value, max } => {
                write!(f, "api {api} argument {value} exceeds the ABI maximum {max}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The reference executor: layer A of the three-layer difftest oracle.
///
/// Holds the same cross-packet state a [`crate::Machine`] does (storage,
/// element clock, RNG stream) so the two can be run in lockstep over a
/// trace and compared event by event.
#[derive(Debug, Clone)]
pub struct RefMachine {
    module: Module,
    /// Persistent stateful storage (cross-packet).
    pub state: StateStore,
    step_limit: u64,
    timestamp: u64,
    rng_state: u64,
}

impl RefMachine {
    /// Builds a reference executor for a module (verifying it first).
    pub fn new(module: &Module) -> Result<RefMachine, verify::VerifyError> {
        verify::verify_module(module)?;
        Ok(RefMachine {
            state: StateStore::new(module),
            module: module.clone(),
            step_limit: DEFAULT_STEP_LIMIT,
            timestamp: 0,
            rng_state: interp::RNG_SEED,
        })
    }

    /// Overrides the per-packet step limit.
    pub fn with_step_limit(mut self, limit: u64) -> RefMachine {
        self.step_limit = limit;
        self
    }

    /// Resets all persistent state (and the element clock).
    pub fn reset(&mut self) {
        self.state.reset();
        self.timestamp = 0;
        self.rng_state = interp::RNG_SEED;
    }

    /// Processes one packet, returning the execution trace.
    pub fn run(&mut self, pkt: &Packet) -> Result<ExecTrace, TraceError> {
        let mut view = PacketView::new(pkt);
        self.run_view(&mut view).map(|(trace, _)| trace)
    }

    /// Processes one packet view, returning the trace and the verdict.
    pub fn run_view(
        &mut self,
        view: &mut PacketView,
    ) -> Result<(ExecTrace, Option<Verdict>), TraceError> {
        self.timestamp += 1;
        let mut state = std::mem::take(&mut self.state);
        let mut timestamp = self.timestamp;
        let mut rng_state = self.rng_state;
        let func = self
            .module
            .funcs
            .first()
            .expect("verified module has a handler");
        let result = ref_exec(
            func,
            &mut state,
            view,
            self.step_limit,
            &mut timestamp,
            &mut rng_state,
        );
        self.state = state;
        self.timestamp = timestamp;
        self.rng_state = rng_state;
        result.map(|trace| (trace, view.verdict))
    }
}

/// Execution context for one packet through the reference evaluator.
struct RefCtx<'a> {
    env: BTreeMap<u32, u64>,
    slots: BTreeMap<u32, u64>,
    nslots: u32,
    trace: ExecTrace,
    state: &'a mut StateStore,
    view: &'a mut PacketView,
    step_limit: u64,
    timestamp: &'a mut u64,
    rng_state: &'a mut u64,
}

impl RefCtx<'_> {
    fn fetch(&self, op: Operand) -> Result<u64, TraceError> {
        match op {
            Operand::Const(c) => Ok(c as u64),
            Operand::Value(v) => self
                .env
                .get(&v.0)
                .copied()
                .ok_or(TraceError::UndefinedValue { value: v.0 }),
        }
    }

    fn tick(&mut self) -> Result<(), TraceError> {
        self.trace.steps += 1;
        if self.trace.steps > self.step_limit {
            return Err(TraceError::StepLimit {
                limit: self.step_limit,
            });
        }
        Ok(())
    }
}

/// Evaluates `func` against one packet view, reference style: a
/// `BTreeMap` SSA environment and per-instruction dispatch written
/// independently of the interpreter's. ALU semantics come from
/// `nf_ir::opt::{eval_bin, eval_icmp, eval_cast}` (shared by design) and
/// framework calls from the interpreter's single `do_call` definition.
fn ref_exec(
    func: &Function,
    state: &mut StateStore,
    view: &mut PacketView,
    step_limit: u64,
    timestamp: &mut u64,
    rng_state: &mut u64,
) -> Result<ExecTrace, TraceError> {
    let mut ctx = RefCtx {
        env: func.params.iter().map(|(p, _)| (p.0, 0)).collect(),
        slots: BTreeMap::new(),
        nslots: func.next_slot,
        trace: ExecTrace::default(),
        state,
        view,
        step_limit,
        timestamp,
        rng_state,
    };
    let mut cur = BlockId(0);
    let mut prev = BlockId(0);
    loop {
        let block = func
            .blocks
            .get(cur.index())
            .ok_or(TraceError::BadBlock { block: cur.0 })?;
        ctx.trace.events.push(Event::Block(cur));

        // Phis read their incoming edges atomically: resolve every value
        // against the pre-block environment before committing any.
        let resolved: Vec<(u32, u64)> = block
            .insts
            .iter()
            .filter_map(|inst| match inst {
                Inst::Phi { dst, ty, incomings } => {
                    let pick = incomings.iter().find(|(bb, _)| *bb == prev);
                    Some(match pick {
                        Some((_, op)) => ctx
                            .fetch(*op)
                            .map(|v| (dst.0, interp::mask(v, *ty))),
                        None => Ok((dst.0, 0)),
                    })
                }
                _ => None,
            })
            .collect::<Result<_, _>>()?;
        for (dst, v) in resolved {
            ctx.env.insert(dst, v);
        }

        for inst in &block.insts {
            ctx.tick()?;
            ref_inst(&mut ctx, inst)?;
        }

        ctx.tick()?;
        match &block.term {
            Term::Br { target } => {
                prev = cur;
                cur = *target;
            }
            Term::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let taken = ctx.fetch(*cond)? & 1 == 1;
                prev = cur;
                cur = if taken { *then_bb } else { *else_bb };
            }
            Term::Ret { val } => {
                ctx.trace.ret = val.map(|v| ctx.fetch(v)).transpose()?;
                return Ok(ctx.trace);
            }
        }
    }
}

fn ref_inst(ctx: &mut RefCtx<'_>, inst: &Inst) -> Result<(), TraceError> {
    match inst {
        Inst::Phi { .. } => {} // Committed at block entry.
        Inst::Bin {
            dst,
            op,
            ty,
            lhs,
            rhs,
        } => {
            let r = nf_ir::opt::eval_bin(*op, *ty, ctx.fetch(*lhs)?, ctx.fetch(*rhs)?);
            ctx.env.insert(dst.0, r);
        }
        Inst::Icmp {
            dst,
            pred,
            ty,
            lhs,
            rhs,
        } => {
            let r = nf_ir::opt::eval_icmp(*pred, *ty, ctx.fetch(*lhs)?, ctx.fetch(*rhs)?);
            ctx.env.insert(dst.0, u64::from(r));
        }
        Inst::Cast {
            dst,
            op,
            from,
            to,
            src,
        } => {
            let r = nf_ir::opt::eval_cast(*op, *from, *to, ctx.fetch(*src)?);
            ctx.env.insert(dst.0, r);
        }
        Inst::Select {
            dst,
            ty,
            cond,
            on_true,
            on_false,
        } => {
            let pick = if ctx.fetch(*cond)? & 1 == 1 {
                on_true
            } else {
                on_false
            };
            let v = ctx.fetch(*pick)?;
            ctx.env.insert(dst.0, interp::mask(v, *ty));
        }
        Inst::Load { dst, ty, mem } => {
            let v = match mem {
                MemRef::Stack { slot } => ctx.slots.get(slot).copied().unwrap_or(0),
                MemRef::Global {
                    global,
                    index,
                    offset,
                } => {
                    if !ctx.state.has(*global) {
                        return Err(TraceError::BadGlobal { global: global.0 });
                    }
                    let idx = match index {
                        Some(op) => ctx.fetch(*op)?,
                        None => 0,
                    };
                    ctx.trace.events.push(Event::State {
                        global: *global,
                        index: idx,
                        offset: *offset,
                        bytes: ty.bytes(),
                        write: false,
                    });
                    ctx.state.load(*global, idx, *offset, ty.bytes())
                }
                MemRef::Pkt { field } => {
                    ctx.trace.events.push(Event::Pkt {
                        bytes: ty.bytes(),
                        write: false,
                    });
                    ctx.view.get(*field)
                }
            };
            ctx.env.insert(dst.0, interp::mask(v, *ty));
        }
        Inst::Store { ty, val, mem } => {
            let v = interp::mask(ctx.fetch(*val)?, *ty);
            match mem {
                MemRef::Stack { slot } => {
                    if *slot < ctx.nslots {
                        ctx.slots.insert(*slot, v);
                    }
                }
                MemRef::Global {
                    global,
                    index,
                    offset,
                } => {
                    if !ctx.state.has(*global) {
                        return Err(TraceError::BadGlobal { global: global.0 });
                    }
                    let idx = match index {
                        Some(op) => ctx.fetch(*op)?,
                        None => 0,
                    };
                    ctx.trace.events.push(Event::State {
                        global: *global,
                        index: idx,
                        offset: *offset,
                        bytes: ty.bytes(),
                        write: true,
                    });
                    ctx.state.store(*global, idx, *offset, ty.bytes(), v);
                }
                MemRef::Pkt { field } => {
                    ctx.trace.events.push(Event::Pkt {
                        bytes: ty.bytes(),
                        write: true,
                    });
                    ctx.view.set(*field, v);
                }
            }
        }
        Inst::Call { dst, api, args } => {
            let vals: Vec<u64> = args
                .iter()
                .map(|a| ctx.fetch(*a))
                .collect::<Result<_, _>>()?;
            let r = interp::do_call(
                ctx.state,
                api,
                &vals,
                ctx.view,
                &mut ctx.trace,
                ctx.timestamp,
                ctx.rng_state,
            )?;
            if let Some(d) = dst {
                ctx.env.insert(d.0, r);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_visits_filters_events() {
        let t = ExecTrace {
            events: vec![
                Event::Block(BlockId(0)),
                Event::Pkt {
                    bytes: 2,
                    write: false,
                },
                Event::Block(BlockId(1)),
                Event::Block(BlockId(1)),
            ],
            steps: 4,
            ret: None,
        };
        assert_eq!(t.block_visits(), vec![BlockId(0), BlockId(1), BlockId(1)]);
    }

    #[test]
    fn state_access_count_filters_by_global() {
        let t = ExecTrace {
            events: vec![
                Event::State {
                    global: GlobalId(0),
                    index: 0,
                    offset: 0,
                    bytes: 4,
                    write: false,
                },
                Event::State {
                    global: GlobalId(1),
                    index: 2,
                    offset: 4,
                    bytes: 4,
                    write: true,
                },
            ],
            steps: 2,
            ret: None,
        };
        assert_eq!(t.state_access_count(None), 2);
        assert_eq!(t.state_access_count(Some(GlobalId(1))), 1);
        assert_eq!(t.state_access_count(Some(GlobalId(9))), 0);
    }

    #[test]
    fn errors_display() {
        assert_eq!(
            TraceError::StepLimit { limit: 10 }.to_string(),
            "step limit 10 exceeded"
        );
    }
}
