//! Execution traces: what the interpreter records per packet.

use nf_ir::{ApiCall, BlockId, GlobalId};
use serde::{Deserialize, Serialize};

/// One framework-API event with enough detail for faithful NIC costing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiEvent {
    /// Which API was invoked.
    pub call: ApiCall,
    /// Number of bucket/entry probes performed (hash map / vector walks).
    pub probes: u32,
    /// Whether a lookup hit (find) or an insert found space.
    pub hit: bool,
    /// Bytes of packet data processed (checksums, header parses).
    pub bytes: u32,
}

/// One event of an execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Entered a basic block.
    Block(BlockId),
    /// A load/store to a stateful global.
    State {
        /// The global.
        global: GlobalId,
        /// Dynamic entry index (0 for scalars).
        index: u64,
        /// Byte offset within the entry (identifies the *variable*, which
        /// drives memory-coalescing analysis).
        offset: u32,
        /// Access width in bytes.
        bytes: u32,
        /// True for stores.
        write: bool,
    },
    /// A packet-data access (headers or payload).
    Pkt {
        /// Access width in bytes.
        bytes: u32,
        /// True for stores.
        write: bool,
    },
    /// A framework API call.
    Api(ApiEvent),
}

/// Everything recorded while processing one packet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Events in program order.
    pub events: Vec<Event>,
    /// Total interpreted IR instructions (a step-count sanity metric).
    pub steps: u64,
    /// The function's return value, if any.
    pub ret: Option<u64>,
}

impl ExecTrace {
    /// Block-visit sequence (loop iterations appear repeatedly).
    pub fn block_visits(&self) -> Vec<BlockId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Block(b) => Some(*b),
                _ => None,
            })
            .collect()
    }

    /// Number of stateful accesses (optionally only to one global).
    pub fn state_access_count(&self, global: Option<GlobalId>) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                Event::State { global: g, .. } => global.is_none_or(|want| *g == want),
                _ => false,
            })
            .count()
    }

    /// All API events.
    pub fn api_events(&self) -> impl Iterator<Item = &ApiEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Api(a) => Some(a),
            _ => None,
        })
    }
}

/// Interpreter failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The per-packet step limit was exceeded (runaway loop).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// A value was read before being defined (malformed SSA reached the
    /// interpreter; `verify` should have caught it).
    UndefinedValue {
        /// The value id.
        value: u32,
    },
    /// Branch to a nonexistent block.
    BadBlock {
        /// The block id.
        block: u32,
    },
    /// A global id had no storage (module/state mismatch).
    BadGlobal {
        /// The global id.
        global: u32,
    },
    /// An API call had the wrong number of arguments.
    BadApiArity {
        /// The API name.
        api: &'static str,
        /// Arguments supplied.
        got: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::StepLimit { limit } => write!(f, "step limit {limit} exceeded"),
            TraceError::UndefinedValue { value } => write!(f, "undefined value %{value}"),
            TraceError::BadBlock { block } => write!(f, "branch to nonexistent bb{block}"),
            TraceError::BadGlobal { global } => write!(f, "no storage for @{global}"),
            TraceError::BadApiArity { api, got } => {
                write!(f, "api {api} called with {got} args")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_visits_filters_events() {
        let t = ExecTrace {
            events: vec![
                Event::Block(BlockId(0)),
                Event::Pkt {
                    bytes: 2,
                    write: false,
                },
                Event::Block(BlockId(1)),
                Event::Block(BlockId(1)),
            ],
            steps: 4,
            ret: None,
        };
        assert_eq!(t.block_visits(), vec![BlockId(0), BlockId(1), BlockId(1)]);
    }

    #[test]
    fn state_access_count_filters_by_global() {
        let t = ExecTrace {
            events: vec![
                Event::State {
                    global: GlobalId(0),
                    index: 0,
                    offset: 0,
                    bytes: 4,
                    write: false,
                },
                Event::State {
                    global: GlobalId(1),
                    index: 2,
                    offset: 4,
                    bytes: 4,
                    write: true,
                },
            ],
            steps: 2,
            ret: None,
        };
        assert_eq!(t.state_access_count(None), 2);
        assert_eq!(t.state_access_count(Some(GlobalId(1))), 1);
        assert_eq!(t.state_access_count(Some(GlobalId(9))), 0);
    }

    #[test]
    fn errors_display() {
        assert_eq!(
            TraceError::StepLimit { limit: 10 }.to_string(),
            "step limit 10 exceeded"
        );
    }
}
