//! Stateful counter and state-machine elements.

use nf_ir::{
    ApiCall, BinOp, CastOp, FunctionBuilder, MemRef, Module, Operand, PktField, Pred, StateKind, Ty,
};

use super::helpers::{drop_ret, flow_key, send_ret, slot_index};
use crate::element::{ElementMeta, InsightClass, NfElement};

/// `tcpgen`: a TCP traffic-generator state machine over scalar globals.
///
/// Its many co-accessed scalars (`tcp_state`/`send_next`/`recv_next`,
/// `sport`/`dport`, `good_pkt` vs `bad_pkt`) make it the paper's running
/// example for memory-access coalescing (Section 5.6).
pub fn tcpgen() -> NfElement {
    let mut m = Module::new("tcpgen");
    let g_state = m.add_global("tcp_state", StateKind::Scalar, 4, 1);
    let g_send = m.add_global("send_next", StateKind::Scalar, 4, 1);
    let g_recv = m.add_global("recv_next", StateKind::Scalar, 4, 1);
    let g_iss = m.add_global("iss", StateKind::Scalar, 4, 1);
    let g_sport = m.add_global("sport", StateKind::Scalar, 4, 1);
    let g_dport = m.add_global("dport", StateKind::Scalar, 4, 1);
    let g_good = m.add_global("good_pkt", StateKind::Scalar, 4, 1);
    let g_bad = m.add_global("bad_pkt", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let on_syn = fb.block();
    let on_ack = fb.block();
    let on_bad = fb.block();
    let out = fb.block();
    fb.switch_to(entry);
    let tcp_ok = fb.call(ApiCall::TcpHeader, vec![]).expect("has result");
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));
    let not_tcp = fb.icmp(Pred::Eq, Ty::I32, tcp_ok, Operand::imm(0));
    let synbit = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x02));
    let is_syn = fb.icmp(Pred::Ne, Ty::I8, synbit, Operand::imm(0));
    let bad_or_syn = fb.select(Ty::I1, not_tcp, Operand::imm(0), is_syn);
    fb.cond_br(bad_or_syn, on_syn, on_ack);

    // SYN: (re)initialize the connection block.
    fb.switch_to(on_syn);
    let r = fb.call(ApiCall::Random, vec![]).expect("has result");
    fb.store(Ty::I32, r, MemRef::global(g_iss));
    let iss1 = fb.bin(BinOp::Add, Ty::I32, r, Operand::imm(1));
    fb.store(Ty::I32, iss1, MemRef::global(g_send));
    fb.store(Ty::I32, Operand::imm(1), MemRef::global(g_state));
    let sp = fb.load(Ty::I16, MemRef::pkt(PktField::TcpSport));
    let dp = fb.load(Ty::I16, MemRef::pkt(PktField::TcpDport));
    let sp32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, sp);
    let dp32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, dp);
    fb.store(Ty::I32, sp32, MemRef::global(g_sport));
    fb.store(Ty::I32, dp32, MemRef::global(g_dport));
    let good = fb.load(Ty::I32, MemRef::global(g_good));
    let good1 = fb.bin(BinOp::Add, Ty::I32, good, Operand::imm(1));
    fb.store(Ty::I32, good1, MemRef::global(g_good));
    fb.br(out);

    // ACK path: advance the window if the connection is established.
    fb.switch_to(on_ack);
    let state = fb.load(Ty::I32, MemRef::global(g_state));
    let established = fb.icmp(Pred::Ne, Ty::I32, state, Operand::imm(0));
    let ackbit = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x10));
    let has_ack = fb.icmp(Pred::Ne, Ty::I8, ackbit, Operand::imm(0));
    let ok = fb.select(Ty::I1, established, has_ack, Operand::imm(0));
    let progress = fb.block();
    fb.cond_br(ok, progress, on_bad);

    fb.switch_to(progress);
    let ack = fb.load(Ty::I32, MemRef::pkt(PktField::TcpAck));
    fb.store(Ty::I32, ack, MemRef::global(g_recv));
    let send = fb.load(Ty::I32, MemRef::global(g_send));
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let len32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, len);
    let pay = fb.bin(BinOp::Sub, Ty::I32, len32, Operand::imm(40));
    let send2 = fb.bin(BinOp::Add, Ty::I32, send, pay);
    fb.store(Ty::I32, send2, MemRef::global(g_send));
    fb.store(Ty::I32, send2, MemRef::pkt(PktField::TcpSeq));
    let good = fb.load(Ty::I32, MemRef::global(g_good));
    let good1 = fb.bin(BinOp::Add, Ty::I32, good, Operand::imm(1));
    fb.store(Ty::I32, good1, MemRef::global(g_good));
    fb.br(out);

    fb.switch_to(on_bad);
    let bad = fb.load(Ty::I32, MemRef::global(g_bad));
    let bad1 = fb.bin(BinOp::Add, Ty::I32, bad, Operand::imm(1));
    fb.store(Ty::I32, bad1, MemRef::global(g_bad));
    fb.br(out);

    fb.switch_to(out);
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "tcpgen",
            paper_loc: 108,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Coalescing,
            ],
            description: "TCP generator state machine (coalescing target)",
        },
    }
}

/// `aggcounter`: per-destination aggregate packet/byte counters.
pub fn aggcounter() -> NfElement {
    let mut m = Module::new("aggcounter");
    let g_tbl = m.add_global("agg_table", StateKind::Array, 8, 1024);
    let g_total = m.add_global("total_pkts", StateKind::Scalar, 4, 1);
    let g_bytes = m.add_global("total_bytes", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    let h = fb.bin(BinOp::Mul, Ty::I32, dst, Operand::imm(0x9e3779b9u32 as i64));
    let h2 = fb.bin(BinOp::LShr, Ty::I32, h, Operand::imm(22));
    let idx = fb.bin(BinOp::And, Ty::I32, h2, Operand::imm(1023));
    let c = fb.load(Ty::I32, MemRef::global_at(g_tbl, idx, 0));
    let c1 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
    fb.store(Ty::I32, c1, MemRef::global_at(g_tbl, idx, 0));
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let len32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, len);
    let b = fb.load(Ty::I32, MemRef::global_at(g_tbl, idx, 4));
    let b1 = fb.bin(BinOp::Add, Ty::I32, b, len32);
    fb.store(Ty::I32, b1, MemRef::global_at(g_tbl, idx, 4));
    let tot = fb.load(Ty::I32, MemRef::global(g_total));
    let tot1 = fb.bin(BinOp::Add, Ty::I32, tot, Operand::imm(1));
    fb.store(Ty::I32, tot1, MemRef::global(g_total));
    let tb = fb.load(Ty::I32, MemRef::global(g_bytes));
    let tb1 = fb.bin(BinOp::Add, Ty::I32, tb, len32);
    fb.store(Ty::I32, tb1, MemRef::global(g_bytes));
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "aggcounter",
            paper_loc: 95,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Coalescing,
            ],
            description: "per-destination aggregate counters",
        },
    }
}

/// `timefilter`: rate-limits flows by minimum inter-packet gap.
pub fn timefilter() -> NfElement {
    let mut m = Module::new("timefilter");
    let g_seen = m.add_global("last_seen", StateKind::HashMap, 16, 4096);
    let g_window = m.add_global("window", StateKind::Scalar, 4, 1);
    let g_pass = m.add_global("passed", StateKind::Scalar, 4, 1);
    let g_filt = m.add_global("filtered", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let hit = fb.block();
    let too_soon = fb.block();
    let pass = fb.block();
    let miss = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);
    let now = fb.call(ApiCall::Timestamp, vec![]).expect("has result");
    let found = fb
        .call(ApiCall::HashMapFind(g_seen), vec![key])
        .expect("has result");
    let is_hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(is_hit, hit, miss);

    fb.switch_to(hit);
    let slot = slot_index(&mut fb, found);
    let last = fb.load(Ty::I32, MemRef::global_at(g_seen, slot, 8));
    let delta = fb.bin(BinOp::Sub, Ty::I32, now, last);
    let window = fb.load(Ty::I32, MemRef::global(g_window));
    let soon = fb.icmp(Pred::ULt, Ty::I32, delta, window);
    fb.cond_br(soon, too_soon, pass);

    fb.switch_to(too_soon);
    let f = fb.load(Ty::I32, MemRef::global(g_filt));
    let f1 = fb.bin(BinOp::Add, Ty::I32, f, Operand::imm(1));
    fb.store(Ty::I32, f1, MemRef::global(g_filt));
    drop_ret(&mut fb);

    fb.switch_to(pass);
    let slot2 = slot_index(&mut fb, found);
    fb.store(Ty::I32, now, MemRef::global_at(g_seen, slot2, 8));
    let p = fb.load(Ty::I32, MemRef::global(g_pass));
    let p1 = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(1));
    fb.store(Ty::I32, p1, MemRef::global(g_pass));
    send_ret(&mut fb, 0);

    fb.switch_to(miss);
    let ins = fb
        .call(ApiCall::HashMapInsert(g_seen), vec![key])
        .expect("has result");
    let islot = slot_index(&mut fb, ins);
    fb.store(Ty::I32, now, MemRef::global_at(g_seen, islot, 8));
    let p = fb.load(Ty::I32, MemRef::global(g_pass));
    let p1 = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(1));
    fb.store(Ty::I32, p1, MemRef::global(g_pass));
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "timefilter",
            paper_loc: 153,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Coalescing,
            ],
            description: "per-flow inter-arrival rate limiter",
        },
    }
}

/// `webtcp`: web-server-side TCP bookkeeping over many scalar globals
/// (a coalescing-experiment element, Figure 13's `webtcp`).
pub fn webtcp() -> NfElement {
    let mut m = Module::new("webtcp");
    let g_seq = m.add_global("cur_seq", StateKind::Scalar, 4, 1);
    let g_ack = m.add_global("cur_ack", StateKind::Scalar, 4, 1);
    let g_sent = m.add_global("bytes_sent", StateKind::Scalar, 4, 1);
    let g_recv = m.add_global("bytes_recv", StateKind::Scalar, 4, 1);
    let g_req = m.add_global("req_count", StateKind::Scalar, 4, 1);
    let g_resp = m.add_global("resp_count", StateKind::Scalar, 4, 1);
    let g_err = m.add_global("err_count", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let tcp = fb.block();
    let request = fb.block();
    let other = fb.block();
    let bad = fb.block();
    fb.switch_to(entry);
    let ok = fb.call(ApiCall::TcpHeader, vec![]).expect("has result");
    let is_tcp = fb.icmp(Pred::Ne, Ty::I32, ok, Operand::imm(0));
    fb.cond_br(is_tcp, tcp, bad);

    fb.switch_to(tcp);
    let seq = fb.load(Ty::I32, MemRef::pkt(PktField::TcpSeq));
    let ackn = fb.load(Ty::I32, MemRef::pkt(PktField::TcpAck));
    fb.store(Ty::I32, seq, MemRef::global(g_seq));
    fb.store(Ty::I32, ackn, MemRef::global(g_ack));
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let len32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, len);
    let rcv = fb.load(Ty::I32, MemRef::global(g_recv));
    let rcv1 = fb.bin(BinOp::Add, Ty::I32, rcv, len32);
    fb.store(Ty::I32, rcv1, MemRef::global(g_recv));
    let dport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpDport));
    let is_http = fb.icmp(Pred::Eq, Ty::I16, dport, Operand::imm(80));
    fb.cond_br(is_http, request, other);

    fb.switch_to(request);
    let rq = fb.load(Ty::I32, MemRef::global(g_req));
    let rq1 = fb.bin(BinOp::Add, Ty::I32, rq, Operand::imm(1));
    fb.store(Ty::I32, rq1, MemRef::global(g_req));
    let rs = fb.load(Ty::I32, MemRef::global(g_resp));
    let rs1 = fb.bin(BinOp::Add, Ty::I32, rs, Operand::imm(1));
    fb.store(Ty::I32, rs1, MemRef::global(g_resp));
    let snt = fb.load(Ty::I32, MemRef::global(g_sent));
    let snt1 = fb.bin(BinOp::Add, Ty::I32, snt, Operand::imm(1460));
    fb.store(Ty::I32, snt1, MemRef::global(g_sent));
    send_ret(&mut fb, 0);

    fb.switch_to(other);
    send_ret(&mut fb, 1);

    fb.switch_to(bad);
    let e = fb.load(Ty::I32, MemRef::global(g_err));
    let e1 = fb.bin(BinOp::Add, Ty::I32, e, Operand::imm(1));
    fb.store(Ty::I32, e1, MemRef::global(g_err));
    drop_ret(&mut fb);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "webtcp",
            paper_loc: 140,
            stateful: true,
            insights: vec![InsightClass::Prediction, InsightClass::Coalescing],
            description: "web-server TCP bookkeeping (coalescing target)",
        },
    }
}

/// Heavy-hitter detection: per-source counters with a report threshold
/// (Figure 1's `HH` motivation NF).
pub fn heavy_hitter() -> NfElement {
    let mut m = Module::new("heavy_hitter");
    let g_tbl = m.add_global("hh_counters", StateKind::Array, 4, 4096);
    let g_thresh = m.add_global("threshold", StateKind::Scalar, 4, 1);
    let g_heavy = m.add_global("heavy_count", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let heavy = fb.block();
    let light = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let h = fb.bin(BinOp::Mul, Ty::I32, src, Operand::imm(0x85eb_ca6b));
    let h2 = fb.bin(BinOp::LShr, Ty::I32, h, Operand::imm(20));
    let idx = fb.bin(BinOp::And, Ty::I32, h2, Operand::imm(4095));
    let c = fb.load(Ty::I32, MemRef::global_at(g_tbl, idx, 0));
    let c1 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
    fb.store(Ty::I32, c1, MemRef::global_at(g_tbl, idx, 0));
    let thr = fb.load(Ty::I32, MemRef::global(g_thresh));
    let thr_eff = fb.bin(BinOp::Or, Ty::I32, thr, Operand::imm(1024));
    let over = fb.icmp(Pred::UGt, Ty::I32, c1, thr_eff);
    fb.cond_br(over, heavy, light);

    fb.switch_to(heavy);
    let hv = fb.load(Ty::I32, MemRef::global(g_heavy));
    let hv1 = fb.bin(BinOp::Add, Ty::I32, hv, Operand::imm(1));
    fb.store(Ty::I32, hv1, MemRef::global(g_heavy));
    send_ret(&mut fb, 1);

    fb.switch_to(light);
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "heavy_hitter",
            paper_loc: 90,
            stateful: true,
            insights: vec![InsightClass::Prediction, InsightClass::ScaleOut],
            description: "heavy-hitter detection (Figure 1 HH)",
        },
    }
}

/// Stateful firewall: SYN packets consult a rule array, established flows
/// hit a flow table (Figure 1's `FW` motivation NF).
pub fn firewall() -> NfElement {
    firewall_with_rules(64)
}

/// [`firewall`] with a configurable rule count.
pub fn firewall_with_rules(rules: u32) -> NfElement {
    let mut m = Module::new("firewall");
    let g_flows = m.add_global("fw_flows", StateKind::HashMap, 16, 8192);
    let g_rules = m.add_global("fw_rules", StateKind::Array, 8, rules.max(1));
    let g_drop = m.add_global("dropped", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let syn_path = fb.block();
    let loop_head = fb.block();
    let loop_body = fb.block();
    let loop_next = fb.block();
    let allow = fb.block();
    let deny = fb.block();
    let est_path = fb.block();
    let est_hit = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));
    let syn = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x02));
    let is_syn = fb.icmp(Pred::Ne, Ty::I8, syn, Operand::imm(0));
    fb.cond_br(is_syn, syn_path, est_path);

    // SYN: scan the rule table for a matching source prefix.
    fb.switch_to(syn_path);
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let pfx = fb.bin(BinOp::LShr, Ty::I32, src, Operand::imm(12));
    fb.br(loop_head);

    fb.switch_to(loop_head);
    let i = fb.phi(
        Ty::I32,
        vec![(syn_path, Operand::imm(0)), (loop_next, Operand::imm(0))],
    );
    // (The phi's loop_next incoming is patched below once i_next exists;
    //  FunctionBuilder has no forward references, so re-derive instead.)
    let in_range = fb.icmp(Pred::ULt, Ty::I32, i, Operand::imm(i64::from(rules.max(1))));
    fb.cond_br(in_range, loop_body, deny);

    fb.switch_to(loop_body);
    let rule = fb.load(Ty::I32, MemRef::global_at(g_rules, i, 0));
    let matches = fb.icmp(Pred::Eq, Ty::I32, rule, pfx);
    fb.cond_br(matches, allow, loop_next);

    fb.switch_to(loop_next);
    let _i_next = fb.bin(BinOp::Add, Ty::I32, i, Operand::imm(1));
    fb.br(loop_head);

    fb.switch_to(allow);
    let key = flow_key(&mut fb);
    let ins = fb
        .call(ApiCall::HashMapInsert(g_flows), vec![key])
        .expect("has result");
    let islot = slot_index(&mut fb, ins);
    fb.store(
        Ty::I32,
        Operand::imm(1),
        MemRef::global_at(g_flows, islot, 8),
    );
    send_ret(&mut fb, 0);

    fb.switch_to(deny);
    let d = fb.load(Ty::I32, MemRef::global(g_drop));
    let d1 = fb.bin(BinOp::Add, Ty::I32, d, Operand::imm(1));
    fb.store(Ty::I32, d1, MemRef::global(g_drop));
    drop_ret(&mut fb);

    // Established: flow-table lookup.
    fb.switch_to(est_path);
    let key2 = flow_key(&mut fb);
    let found = fb
        .call(ApiCall::HashMapFind(g_flows), vec![key2])
        .expect("has result");
    let hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(hit, est_hit, deny);

    fb.switch_to(est_hit);
    let slot = slot_index(&mut fb, found);
    let cnt = fb.load(Ty::I32, MemRef::global_at(g_flows, slot, 8));
    let cnt1 = fb.bin(BinOp::Add, Ty::I32, cnt, Operand::imm(1));
    fb.store(Ty::I32, cnt1, MemRef::global_at(g_flows, slot, 8));
    send_ret(&mut fb, 0);

    let mut f = fb.finish();
    // Patch the loop phi to carry the incremented counter (the builder has
    // no forward references, so the phi was created with a placeholder).
    patch_loop_phi(&mut f, loop_head, loop_next);
    m.funcs.push(f);
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "firewall",
            paper_loc: 180,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "stateful firewall with rule scan (Figure 1 FW)",
        },
    }
}

/// Replaces the placeholder incoming value of the first phi in
/// `loop_head` (for predecessor `latch`) with the last value defined in
/// `latch` — the standard induction-variable wiring.
pub(crate) fn patch_loop_phi(
    f: &mut nf_ir::Function,
    loop_head: nf_ir::BlockId,
    latch: nf_ir::BlockId,
) {
    let latch_val = f.blocks[latch.index()]
        .insts
        .iter()
        .rev()
        .find_map(|i| i.dst())
        .expect("latch defines the next induction value");
    if let Some(nf_ir::Inst::Phi { incomings, .. }) = f.blocks[loop_head.index()].insts.first_mut()
    {
        for (bb, v) in incomings.iter_mut() {
            if *bb == latch {
                *v = nf_ir::Operand::Value(latch_val);
            }
        }
    }
}

/// DPI: scans payload words for a signature up to a configurable depth
/// (Figure 1's `DPI` motivation NF — cost scales with packet size).
pub fn dpi() -> NfElement {
    dpi_with_depth(256)
}

/// [`dpi`] with a configurable scan depth in bytes.
pub fn dpi_with_depth(depth: u16) -> NfElement {
    let mut m = Module::new("dpi");
    let g_hits = m.add_global("sig_hits", StateKind::Scalar, 4, 1);
    let g_scanned = m.add_global("bytes_scanned", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let loop_head = fb.block();
    let loop_body = fb.block();
    let found = fb.block();
    let loop_next = fb.block();
    let done = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let len = fb.call(ApiCall::PktLen, vec![]).expect("has result");
    let pay = fb.bin(BinOp::Sub, Ty::I32, len, Operand::imm(54));
    let deep = fb.icmp(Pred::UGt, Ty::I32, pay, Operand::imm(i64::from(depth)));
    let limit = fb.select(Ty::I32, deep, Operand::imm(i64::from(depth)), pay);
    fb.br(loop_head);

    fb.switch_to(loop_head);
    let off = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0)), (loop_next, Operand::imm(0))],
    );
    let more = fb.icmp(Pred::ULt, Ty::I32, off, limit);
    fb.cond_br(more, loop_body, done);

    fb.switch_to(loop_body);
    // The interpreter reads payload words at fixed offsets; scanning uses
    // a strided window of probes (every 4 bytes up to the depth).
    let w0 = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(0)));
    let mixed = fb.bin(BinOp::Xor, Ty::I32, w0, off);
    let masked = fb.bin(BinOp::And, Ty::I32, mixed, Operand::imm(0xffff));
    let is_sig = fb.icmp(Pred::Eq, Ty::I32, masked, Operand::imm(0x4e46));
    fb.cond_br(is_sig, found, loop_next);

    fb.switch_to(found);
    let hits = fb.load(Ty::I32, MemRef::global(g_hits));
    let hits1 = fb.bin(BinOp::Add, Ty::I32, hits, Operand::imm(1));
    fb.store(Ty::I32, hits1, MemRef::global(g_hits));
    fb.br(loop_next);

    fb.switch_to(loop_next);
    let _off_next = fb.bin(BinOp::Add, Ty::I32, off, Operand::imm(4));
    fb.br(loop_head);

    fb.switch_to(done);
    let sc = fb.load(Ty::I32, MemRef::global(g_scanned));
    let sc1 = fb.bin(BinOp::Add, Ty::I32, sc, limit);
    fb.store(Ty::I32, sc1, MemRef::global(g_scanned));
    send_ret(&mut fb, 0);

    let mut f = fb.finish();
    patch_loop_phi(&mut f, loop_head, loop_next);
    m.funcs.push(f);
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "dpi",
            paper_loc: 110,
            stateful: true,
            insights: vec![InsightClass::Prediction, InsightClass::ScaleOut],
            description: "payload signature scan (Figure 1 DPI)",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use nf_ir::GlobalId;
    use trafgen::{Trace, WorkloadSpec};

    #[test]
    fn tcpgen_counts_good_and_bad() {
        let e = tcpgen();
        let mut m = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            syn_ratio: 0.0,
            ..WorkloadSpec::large_flows().with_flows(2)
        };
        let trace = Trace::generate(&spec, 30, 1);
        for p in &trace.pkts {
            m.run(p).unwrap();
        }
        let good = m.state.load(GlobalId(6), 0, 0, 4);
        let bad = m.state.load(GlobalId(7), 0, 0, 4);
        assert_eq!(good + bad, 30);
        assert!(good >= 2, "at least the SYNs count as good, got {good}");
    }

    #[test]
    fn aggcounter_totals_match_packet_count() {
        let e = aggcounter();
        let mut m = Machine::new(&e.module).unwrap();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 25, 2);
        for p in &trace.pkts {
            m.run(p).unwrap();
        }
        assert_eq!(m.state.load(GlobalId(1), 0, 0, 4), 25);
        assert!(m.state.load(GlobalId(2), 0, 0, 4) > 0);
    }

    #[test]
    fn timefilter_filters_rapid_repeats() {
        let e = timefilter();
        let mut machine = Machine::new(&e.module).unwrap();
        // Window = 5 ticks; a single flow sending every tick gets filtered.
        machine.state.store(GlobalId(1), 0, 0, 4, 5);
        let spec = WorkloadSpec::large_flows().with_flows(1);
        let trace = Trace::generate(&spec, 20, 3);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        let passed = machine.state.load(GlobalId(2), 0, 0, 4);
        let filtered = machine.state.load(GlobalId(3), 0, 0, 4);
        assert_eq!(passed + filtered, 20);
        assert!(filtered > 10, "expected most packets filtered: {filtered}");
    }

    #[test]
    fn firewall_admits_only_rule_matched_flows() {
        let e = firewall_with_rules(16);
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            syn_ratio: 0.0,
            ..WorkloadSpec::large_flows().with_flows(4)
        };
        let trace = Trace::generate(&spec, 40, 4);
        // All generated sources share a /20 prefix; install a rule for it.
        let pfx = u64::from(trace.pkts[0].flow.src_ip >> 12);
        machine.state.store(GlobalId(1), 3, 0, 4, pfx);
        let count_verdicts = |machine: &mut Machine| {
            let mut sent = 0;
            let mut dropped = 0;
            for p in &trace.pkts {
                let mut view = crate::PacketView::new(p);
                machine.run_view(&mut view).unwrap();
                match view.verdict {
                    Some(crate::packet::Verdict::Sent(_)) => sent += 1,
                    Some(crate::packet::Verdict::Dropped) => dropped += 1,
                    None => {}
                }
            }
            (sent, dropped)
        };
        let (sent, dropped) = count_verdicts(&mut machine);
        assert_eq!(sent, 40, "rule-matched flows should all pass");
        assert_eq!(dropped, 0);
        // Without any rules, every flow is denied.
        let mut bare = Machine::new(&e.module).unwrap();
        let (sent, dropped) = count_verdicts(&mut bare);
        assert_eq!(sent, 0);
        assert_eq!(dropped, 40);
    }

    #[test]
    fn dpi_scans_more_bytes_for_larger_packets() {
        let e = dpi_with_depth(512);
        let mut small_m = Machine::new(&e.module).unwrap();
        let mut large_m = Machine::new(&e.module).unwrap();
        let small = Trace::generate(&WorkloadSpec::large_flows().with_pkt_size(64), 5, 5);
        let large = Trace::generate(&WorkloadSpec::large_flows().with_pkt_size(1400), 5, 5);
        let mut small_steps = 0;
        let mut large_steps = 0;
        for p in &small.pkts {
            small_steps += small_m.run(p).unwrap().steps;
        }
        for p in &large.pkts {
            large_steps += large_m.run(p).unwrap().steps;
        }
        assert!(
            large_steps > 3 * small_steps,
            "large {large_steps} vs small {small_steps}"
        );
    }

    #[test]
    fn heavy_hitter_flags_hot_sources() {
        let e = heavy_hitter();
        let mut machine = Machine::new(&e.module).unwrap();
        // One flow sends everything → exceeds the default 1024 threshold.
        let spec = WorkloadSpec::large_flows().with_flows(1);
        let trace = Trace::generate(&spec, 1500, 6);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        let heavy = machine.state.load(GlobalId(2), 0, 0, 4);
        assert!(heavy > 400, "heavy count {heavy}");
    }
}
