//! The larger NF applications of Table 2.

use nf_ir::{
    ApiCall, BinOp, CastOp, FunctionBuilder, MemRef, Module, Operand, PktField, Pred, StateKind, Ty,
};

use super::helpers::{csum_send_ret, drop_ret, flow_key, send_ret, slot_index};
use crate::element::{ElementMeta, InsightClass, NfElement};

/// `iprewriter`: rewrites flow endpoints from a mapping table.
pub fn iprewriter() -> NfElement {
    let mut m = Module::new("iprewriter");
    let g_map = m.add_global("rw_map", StateKind::HashMap, 24, 8192);
    let g_count = m.add_global("rewritten", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let hit = fb.block();
    let miss = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);
    let found = fb
        .call(ApiCall::HashMapFind(g_map), vec![key])
        .expect("result");
    let is_hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(is_hit, hit, miss);

    // Hit: apply the stored mapping.
    fb.switch_to(hit);
    let slot = slot_index(&mut fb, found);
    let new_src = fb.load(Ty::I32, MemRef::global_at(g_map, slot, 8));
    let new_port = fb.load(Ty::I16, MemRef::global_at(g_map, slot, 12));
    fb.store(Ty::I32, new_src, MemRef::pkt(PktField::IpSrc));
    fb.store(Ty::I16, new_port, MemRef::pkt(PktField::TcpSport));
    let c = fb.load(Ty::I32, MemRef::global(g_count));
    let c1 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
    fb.store(Ty::I32, c1, MemRef::global(g_count));
    csum_send_ret(&mut fb, 0);

    // Miss: derive a mapping and install it.
    fb.switch_to(miss);
    let ins = fb
        .call(ApiCall::HashMapInsert(g_map), vec![key])
        .expect("result");
    let islot = slot_index(&mut fb, ins);
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let mix = fb.bin(BinOp::Mul, Ty::I32, src, Operand::imm(0x0019_660d));
    let mapped = fb.bin(BinOp::Or, Ty::I32, mix, Operand::imm(0x0a00_0000));
    let sport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpSport));
    let pmix = fb.bin(BinOp::Add, Ty::I16, sport, Operand::imm(7777));
    fb.store(Ty::I32, mapped, MemRef::global_at(g_map, islot, 8));
    fb.store(Ty::I16, pmix, MemRef::global_at(g_map, islot, 12));
    fb.store(Ty::I32, mapped, MemRef::pkt(PktField::IpSrc));
    fb.store(Ty::I16, pmix, MemRef::pkt(PktField::TcpSport));
    csum_send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "iprewriter",
            paper_loc: 166,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ReversePorting,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "flow endpoint rewriter with mapping table",
        },
    }
}

/// `ipclassifier`: a long rule cascade into per-class counters.
pub fn ipclassifier() -> NfElement {
    let mut m = Module::new("ipclassifier");
    let g_counts = m.add_global("class_counts", StateKind::Array, 4, 16);
    let g_total = m.add_global("classified", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let proto = fb.load(Ty::I8, MemRef::pkt(PktField::IpProto));
    let dport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpDport));
    let udport = fb.load(Ty::I16, MemRef::pkt(PktField::UdpDport));
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));

    // Rule cascade: each rule is (condition, class). First match wins.
    struct Rule {
        class: i64,
    }
    let rules: Vec<(Operand, Rule)> = {
        let mut v = Vec::new();
        let is_tcp = fb.icmp(Pred::Eq, Ty::I8, proto, Operand::imm(6));
        let http = fb.icmp(Pred::Eq, Ty::I16, dport, Operand::imm(80));
        let tcp_http = fb.select(Ty::I1, is_tcp, http, Operand::imm(0));
        v.push((tcp_http, Rule { class: 1 }));
        let https = fb.icmp(Pred::Eq, Ty::I16, dport, Operand::imm(443));
        let tcp_https = fb.select(Ty::I1, is_tcp, https, Operand::imm(0));
        v.push((tcp_https, Rule { class: 2 }));
        let is_udp = fb.icmp(Pred::Eq, Ty::I8, proto, Operand::imm(17));
        let dns = fb.icmp(Pred::Eq, Ty::I16, udport, Operand::imm(53));
        let udp_dns = fb.select(Ty::I1, is_udp, dns, Operand::imm(0));
        v.push((udp_dns, Rule { class: 3 }));
        let syn = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x02));
        let is_syn = fb.icmp(Pred::Ne, Ty::I8, syn, Operand::imm(0));
        v.push((is_syn, Rule { class: 4 }));
        let internal = fb.bin(BinOp::LShr, Ty::I32, src, Operand::imm(24));
        let is_internal = fb.icmp(Pred::Eq, Ty::I32, internal, Operand::imm(10));
        v.push((is_internal, Rule { class: 5 }));
        let jumbo = fb.icmp(Pred::UGt, Ty::I16, len, Operand::imm(1000));
        v.push((jumbo, Rule { class: 6 }));
        let tiny = fb.icmp(Pred::ULt, Ty::I16, len, Operand::imm(100));
        v.push((tiny, Rule { class: 7 }));
        let alt = fb.icmp(Pred::Eq, Ty::I16, dport, Operand::imm(8080));
        v.push((alt, Rule { class: 8 }));
        v
    };

    // Build the cascade: a chain of (test, bump) blocks ending in default.
    let mut test_blocks = Vec::new();
    for _ in &rules {
        test_blocks.push((fb.block(), fb.block())); // (bump, next_test)
    }
    let default_bb = fb.block();
    let out = fb.block();

    // Entry branches into the first test.
    let (first_bump, first_next) = test_blocks[0];
    fb.cond_br(rules[0].0, first_bump, first_next);
    for (i, (cond, rule)) in rules.iter().enumerate() {
        let (bump, next) = test_blocks[i];
        // Bump block for rule i.
        fb.switch_to(bump);
        let idx = Operand::imm(rule.class);
        let c = fb.load(Ty::I32, MemRef::global_at(g_counts, idx, 0));
        let c1 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
        fb.store(Ty::I32, c1, MemRef::global_at(g_counts, idx, 0));
        fb.br(out);
        // Next-test block chains to rule i+1 (or default).
        fb.switch_to(next);
        if i + 1 < rules.len() {
            let (nb, nn) = test_blocks[i + 1];
            fb.cond_br(rules[i + 1].0, nb, nn);
        } else {
            fb.br(default_bb);
        }
        let _ = cond;
    }

    fb.switch_to(default_bb);
    let c = fb.load(Ty::I32, MemRef::global_at(g_counts, Operand::imm(0), 0));
    let c1 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
    fb.store(Ty::I32, c1, MemRef::global_at(g_counts, Operand::imm(0), 0));
    fb.br(out);

    fb.switch_to(out);
    let t = fb.load(Ty::I32, MemRef::global(g_total));
    let t1 = fb.bin(BinOp::Add, Ty::I32, t, Operand::imm(1));
    fb.store(Ty::I32, t1, MemRef::global(g_total));
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "ipclassifier",
            paper_loc: 372,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ReversePorting,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "multi-rule packet classifier",
        },
    }
}

/// `DNSProxy`: caches DNS answers by query id.
pub fn dnsproxy() -> NfElement {
    let mut m = Module::new("dnsproxy");
    let g_cache = m.add_global("dns_cache", StateKind::HashMap, 24, 16384);
    let g_hits = m.add_global("cache_hits", StateKind::Scalar, 4, 1);
    let g_misses = m.add_global("cache_misses", StateKind::Scalar, 4, 1);
    let g_nondns = m.add_global("non_dns", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let is_udp_bb = fb.block();
    let is_dns = fb.block();
    let hit = fb.block();
    let miss = fb.block();
    let other = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let udp_ok = fb.call(ApiCall::UdpHeader, vec![]).expect("result");
    let is_udp = fb.icmp(Pred::Ne, Ty::I32, udp_ok, Operand::imm(0));
    fb.cond_br(is_udp, is_udp_bb, other);

    fb.switch_to(is_udp_bb);
    let dport = fb.load(Ty::I16, MemRef::pkt(PktField::UdpDport));
    let dns = fb.icmp(Pred::Eq, Ty::I16, dport, Operand::imm(53));
    fb.cond_br(dns, is_dns, other);

    fb.switch_to(is_dns);
    // Query key: transaction id (payload word 0) mixed with qname hash
    // (payload word 1).
    let qid = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(0)));
    let qname = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(4)));
    let qmix = fb.bin(
        BinOp::Mul,
        Ty::I32,
        qname,
        Operand::imm(0x9e37_79b9u32 as i64),
    );
    let key = fb.bin(BinOp::Xor, Ty::I32, qid, qmix);
    let found = fb
        .call(ApiCall::HashMapFind(g_cache), vec![key])
        .expect("result");
    let is_hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(is_hit, hit, miss);

    // Hit: answer from cache — swap endpoints, write the cached answer.
    fb.switch_to(hit);
    let slot = slot_index(&mut fb, found);
    let answer = fb.load(Ty::I32, MemRef::global_at(g_cache, slot, 8));
    let ttl = fb.load(Ty::I32, MemRef::global_at(g_cache, slot, 12));
    fb.store(Ty::I32, answer, MemRef::pkt(PktField::Payload(8)));
    fb.store(Ty::I32, ttl, MemRef::pkt(PktField::Payload(12)));
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    fb.store(Ty::I32, dst, MemRef::pkt(PktField::IpSrc));
    fb.store(Ty::I32, src, MemRef::pkt(PktField::IpDst));
    let sp = fb.load(Ty::I16, MemRef::pkt(PktField::UdpSport));
    let dp = fb.load(Ty::I16, MemRef::pkt(PktField::UdpDport));
    fb.store(Ty::I16, dp, MemRef::pkt(PktField::UdpSport));
    fb.store(Ty::I16, sp, MemRef::pkt(PktField::UdpDport));
    let h = fb.load(Ty::I32, MemRef::global(g_hits));
    let h1 = fb.bin(BinOp::Add, Ty::I32, h, Operand::imm(1));
    fb.store(Ty::I32, h1, MemRef::global(g_hits));
    csum_send_ret(&mut fb, 0);

    // Miss: synthesize/record an answer and forward upstream.
    fb.switch_to(miss);
    let ins = fb
        .call(ApiCall::HashMapInsert(g_cache), vec![key])
        .expect("result");
    let islot = slot_index(&mut fb, ins);
    let synth = fb.bin(BinOp::Mul, Ty::I32, key, Operand::imm(0x0101_0101));
    fb.store(Ty::I32, synth, MemRef::global_at(g_cache, islot, 8));
    fb.store(
        Ty::I32,
        Operand::imm(300),
        MemRef::global_at(g_cache, islot, 12),
    );
    let ms = fb.load(Ty::I32, MemRef::global(g_misses));
    let ms1 = fb.bin(BinOp::Add, Ty::I32, ms, Operand::imm(1));
    fb.store(Ty::I32, ms1, MemRef::global(g_misses));
    send_ret(&mut fb, 1); // Toward the resolver.

    fb.switch_to(other);
    let n = fb.load(Ty::I32, MemRef::global(g_nondns));
    let n1 = fb.bin(BinOp::Add, Ty::I32, n, Operand::imm(1));
    fb.store(Ty::I32, n1, MemRef::global(g_nondns));
    send_ret(&mut fb, 2);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "dnsproxy",
            paper_loc: 974,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ReversePorting,
                InsightClass::ScaleOut,
                InsightClass::Placement,
                InsightClass::Colocation,
            ],
            description: "DNS answer cache/proxy",
        },
    }
}

/// `Mazu-NAT`: full network address translation with per-direction tables.
pub fn mazunat() -> NfElement {
    let mut m = Module::new("mazunat");
    let g_int = m.add_global("int_map", StateKind::HashMap, 24, 16384);
    let g_ext = m.add_global("ext_map", StateKind::HashMap, 24, 16384);
    let g_port = m.add_global("next_port", StateKind::Scalar, 4, 1);
    let g_pkts = m.add_global("nat_pkts", StateKind::Scalar, 4, 1);
    let g_drops = m.add_global("nat_drops", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let outbound = fb.block();
    let ob_hit = fb.block();
    let ob_miss = fb.block();
    let ob_rewrite = fb.block();
    let inbound = fb.block();
    let in_hit = fb.block();
    let in_drop = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let _ = fb.call(ApiCall::TcpHeader, vec![]);
    let total = fb.load(Ty::I32, MemRef::global(g_pkts));
    let total1 = fb.bin(BinOp::Add, Ty::I32, total, Operand::imm(1));
    fb.store(Ty::I32, total1, MemRef::global(g_pkts));
    // Direction: internal sources are 10.0.0.0/8.
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let top = fb.bin(BinOp::LShr, Ty::I32, src, Operand::imm(24));
    let is_internal = fb.icmp(Pred::Eq, Ty::I32, top, Operand::imm(10));
    fb.cond_br(is_internal, outbound, inbound);

    // Outbound: translate source to the public endpoint.
    fb.switch_to(outbound);
    let key = flow_key(&mut fb);
    let found = fb
        .call(ApiCall::HashMapFind(g_int), vec![key])
        .expect("result");
    let hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(hit, ob_hit, ob_miss);

    fb.switch_to(ob_hit);
    let slot = slot_index(&mut fb, found);
    let pub_ip = fb.load(Ty::I32, MemRef::global_at(g_int, slot, 8));
    let pub_port = fb.load(Ty::I16, MemRef::global_at(g_int, slot, 12));
    fb.br(ob_rewrite);

    fb.switch_to(ob_miss);
    // Allocate a public port and record both directions.
    let p = fb.load(Ty::I32, MemRef::global(g_port));
    let p1 = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(1));
    fb.store(Ty::I32, p1, MemRef::global(g_port));
    let new_port16 = fb.cast(CastOp::Trunc, Ty::I32, Ty::I16, p1);
    let alloc_port = fb.bin(BinOp::Or, Ty::I16, new_port16, Operand::imm(0x8000));
    let ins = fb
        .call(ApiCall::HashMapInsert(g_int), vec![key])
        .expect("result");
    let islot = slot_index(&mut fb, ins);
    fb.store(
        Ty::I32,
        Operand::imm(0xc0a8_0a0a),
        MemRef::global_at(g_int, islot, 8),
    );
    fb.store(Ty::I16, alloc_port, MemRef::global_at(g_int, islot, 12));
    // Reverse mapping keyed by the allocated public port.
    let rkey = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, alloc_port);
    let rins = fb
        .call(ApiCall::HashMapInsert(g_ext), vec![rkey])
        .expect("result");
    let rslot = slot_index(&mut fb, rins);
    fb.store(Ty::I32, src, MemRef::global_at(g_ext, rslot, 8));
    let sport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpSport));
    fb.store(Ty::I16, sport, MemRef::global_at(g_ext, rslot, 12));
    fb.br(ob_rewrite);

    fb.switch_to(ob_rewrite);
    let out_ip = fb.phi(
        Ty::I32,
        vec![(ob_hit, pub_ip), (ob_miss, Operand::imm(0xc0a8_0a0a))],
    );
    let out_port = fb.phi(Ty::I16, vec![(ob_hit, pub_port), (ob_miss, alloc_port)]);
    fb.store(Ty::I32, out_ip, MemRef::pkt(PktField::IpSrc));
    fb.store(Ty::I16, out_port, MemRef::pkt(PktField::TcpSport));
    // Decrement TTL.
    let ttl = fb.load(Ty::I8, MemRef::pkt(PktField::IpTtl));
    let ttl1 = fb.bin(BinOp::Sub, Ty::I8, ttl, Operand::imm(1));
    fb.store(Ty::I8, ttl1, MemRef::pkt(PktField::IpTtl));
    csum_send_ret(&mut fb, 0);

    // Inbound: look up the reverse mapping by destination port.
    fb.switch_to(inbound);
    let dport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpDport));
    let dkey = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, dport);
    let rfound = fb
        .call(ApiCall::HashMapFind(g_ext), vec![dkey])
        .expect("result");
    let rhit = fb.icmp(Pred::Ne, Ty::I32, rfound, Operand::imm(0));
    fb.cond_br(rhit, in_hit, in_drop);

    fb.switch_to(in_hit);
    let rs = slot_index(&mut fb, rfound);
    let int_ip = fb.load(Ty::I32, MemRef::global_at(g_ext, rs, 8));
    let int_port = fb.load(Ty::I16, MemRef::global_at(g_ext, rs, 12));
    fb.store(Ty::I32, int_ip, MemRef::pkt(PktField::IpDst));
    fb.store(Ty::I16, int_port, MemRef::pkt(PktField::TcpDport));
    let ttl2 = fb.load(Ty::I8, MemRef::pkt(PktField::IpTtl));
    let ttl3 = fb.bin(BinOp::Sub, Ty::I8, ttl2, Operand::imm(1));
    fb.store(Ty::I8, ttl3, MemRef::pkt(PktField::IpTtl));
    csum_send_ret(&mut fb, 1);

    fb.switch_to(in_drop);
    let d = fb.load(Ty::I32, MemRef::global(g_drops));
    let d1 = fb.bin(BinOp::Add, Ty::I32, d, Operand::imm(1));
    fb.store(Ty::I32, d1, MemRef::global(g_drops));
    drop_ret(&mut fb);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "mazunat",
            paper_loc: 1266,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ReversePorting,
                InsightClass::ScaleOut,
                InsightClass::Placement,
                InsightClass::Colocation,
            ],
            description: "full NAT with per-direction mapping tables",
        },
    }
}

/// `UDPCount`: UDP flow statistics with a classifier and counter banks.
pub fn udpcount() -> NfElement {
    let mut m = Module::new("udpcount");
    let g_class = m.add_global("udp_classifier", StateKind::Array, 4, 16);
    let g_ports = m.add_global("port_counts", StateKind::Array, 4, 256);
    let g_total = m.add_global("udp_total", StateKind::Scalar, 4, 1);
    let g_other = m.add_global("non_udp", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let is_udp_bb = fb.block();
    let other = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let udp_ok = fb.call(ApiCall::UdpHeader, vec![]).expect("result");
    let is_udp = fb.icmp(Pred::Ne, Ty::I32, udp_ok, Operand::imm(0));
    fb.cond_br(is_udp, is_udp_bb, other);

    fb.switch_to(is_udp_bb);
    let dport = fb.load(Ty::I16, MemRef::pkt(PktField::UdpDport));
    // Class = coarse service bucket from the top port bits.
    let class = fb.bin(BinOp::LShr, Ty::I16, dport, Operand::imm(12));
    let class32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, class);
    let cc = fb.load(Ty::I32, MemRef::global_at(g_class, class32, 0));
    let cc1 = fb.bin(BinOp::Add, Ty::I32, cc, Operand::imm(1));
    fb.store(Ty::I32, cc1, MemRef::global_at(g_class, class32, 0));
    // Port bucket = low bits.
    let bucket16 = fb.bin(BinOp::And, Ty::I16, dport, Operand::imm(255));
    let bucket = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, bucket16);
    let pc = fb.load(Ty::I32, MemRef::global_at(g_ports, bucket, 0));
    let pc1 = fb.bin(BinOp::Add, Ty::I32, pc, Operand::imm(1));
    fb.store(Ty::I32, pc1, MemRef::global_at(g_ports, bucket, 0));
    let t = fb.load(Ty::I32, MemRef::global(g_total));
    let t1 = fb.bin(BinOp::Add, Ty::I32, t, Operand::imm(1));
    fb.store(Ty::I32, t1, MemRef::global(g_total));
    send_ret(&mut fb, 0);

    fb.switch_to(other);
    let o = fb.load(Ty::I32, MemRef::global(g_other));
    let o1 = fb.bin(BinOp::Add, Ty::I32, o, Operand::imm(1));
    fb.store(Ty::I32, o1, MemRef::global(g_other));
    send_ret(&mut fb, 1);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "udpcount",
            paper_loc: 478,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Placement,
                InsightClass::Colocation,
            ],
            description: "UDP statistics with classifier and counter banks",
        },
    }
}

/// `WebGen`: web request generator with per-connection state.
pub fn webgen() -> NfElement {
    let mut m = Module::new("webgen");
    let g_conns = m.add_global("wg_conns", StateKind::HashMap, 24, 8192);
    let g_reqs = m.add_global("requests", StateKind::Scalar, 4, 1);
    let g_bytes = m.add_global("req_bytes", StateKind::Scalar, 4, 1);
    let g_pages = m.add_global("page_table", StateKind::Array, 8, 64);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let tcp_bb = fb.block();
    let known = fb.block();
    let fresh = fb.block();
    let emit_req = fb.block();
    let other = fb.block();
    fb.switch_to(entry);
    let ok = fb.call(ApiCall::TcpHeader, vec![]).expect("result");
    let is_tcp = fb.icmp(Pred::Ne, Ty::I32, ok, Operand::imm(0));
    fb.cond_br(is_tcp, tcp_bb, other);

    fb.switch_to(tcp_bb);
    let key = flow_key(&mut fb);
    let found = fb
        .call(ApiCall::HashMapFind(g_conns), vec![key])
        .expect("result");
    let hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(hit, known, fresh);

    fb.switch_to(known);
    let slot = slot_index(&mut fb, found);
    let n = fb.load(Ty::I32, MemRef::global_at(g_conns, slot, 8));
    let n1 = fb.bin(BinOp::Add, Ty::I32, n, Operand::imm(1));
    fb.store(Ty::I32, n1, MemRef::global_at(g_conns, slot, 8));
    fb.br(emit_req);

    fb.switch_to(fresh);
    let ins = fb
        .call(ApiCall::HashMapInsert(g_conns), vec![key])
        .expect("result");
    let islot = slot_index(&mut fb, ins);
    fb.store(
        Ty::I32,
        Operand::imm(1),
        MemRef::global_at(g_conns, islot, 8),
    );
    fb.br(emit_req);

    fb.switch_to(emit_req);
    // Pick a page via the RNG and write a request line into the payload.
    let r = fb.call(ApiCall::Random, vec![]).expect("result");
    let page = fb.bin(BinOp::And, Ty::I32, r, Operand::imm(63));
    let page_id = fb.load(Ty::I32, MemRef::global_at(g_pages, page, 0));
    let page_len = fb.load(Ty::I32, MemRef::global_at(g_pages, page, 4));
    fb.store(
        Ty::I32,
        Operand::imm(0x47455420),
        MemRef::pkt(PktField::Payload(0)),
    ); // "GET "
    fb.store(Ty::I32, page_id, MemRef::pkt(PktField::Payload(4)));
    fb.store(Ty::I32, page_len, MemRef::pkt(PktField::Payload(8)));
    let rq = fb.load(Ty::I32, MemRef::global(g_reqs));
    let rq1 = fb.bin(BinOp::Add, Ty::I32, rq, Operand::imm(1));
    fb.store(Ty::I32, rq1, MemRef::global(g_reqs));
    let by = fb.load(Ty::I32, MemRef::global(g_bytes));
    let reqlen = fb.bin(BinOp::Add, Ty::I32, page_len, Operand::imm(16));
    let by1 = fb.bin(BinOp::Add, Ty::I32, by, reqlen);
    fb.store(Ty::I32, by1, MemRef::global(g_bytes));
    send_ret(&mut fb, 0);

    fb.switch_to(other);
    drop_ret(&mut fb);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "webgen",
            paper_loc: 469,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Placement,
                InsightClass::Colocation,
            ],
            description: "web request generator with connection table",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use nf_ir::GlobalId;
    use trafgen::{Proto, Trace, WorkloadSpec};

    #[test]
    fn iprewriter_is_stable_per_flow() {
        let e = iprewriter();
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec::large_flows().with_flows(1);
        let trace = Trace::generate(&spec, 3, 1);
        let mut rewritten = Vec::new();
        for p in &trace.pkts {
            let mut view = crate::PacketView::new(p);
            machine.run_view(&mut view).unwrap();
            rewritten.push(view.get(PktField::IpSrc));
        }
        assert_eq!(rewritten[0], rewritten[1]);
        assert_eq!(rewritten[1], rewritten[2]);
    }

    #[test]
    fn ipclassifier_counts_every_packet_once() {
        let e = ipclassifier();
        let mut machine = Machine::new(&e.module).unwrap();
        let trace = Trace::generate(&WorkloadSpec::imix(), 60, 2);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        let total = machine.state.load(GlobalId(1), 0, 0, 4);
        assert_eq!(total, 60);
        let class_sum: u64 = (0..16)
            .map(|i| machine.state.load(GlobalId(0), i, 0, 4))
            .sum();
        assert_eq!(class_sum, 60);
    }

    #[test]
    fn dnsproxy_caches_repeat_queries() {
        let e = dnsproxy();
        let mut machine = Machine::new(&e.module).unwrap();
        // One flow, UDP to port 53 via dst_port choices — force UDP/53 by
        // patching the generated packets.
        let spec = WorkloadSpec {
            tcp_ratio: 0.0,
            ..WorkloadSpec::large_flows().with_flows(1)
        };
        let mut trace = Trace::generate(&spec, 10, 3);
        for p in &mut trace.pkts {
            p.flow.dst_port = 53;
            p.payload_seed = 77; // Identical query payload.
        }
        let mut hits = 0;
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        hits += machine.state.load(GlobalId(1), 0, 0, 4);
        let misses = machine.state.load(GlobalId(2), 0, 0, 4);
        assert_eq!(misses, 1, "only the first query should miss");
        assert_eq!(hits, 9);
    }

    #[test]
    fn mazunat_translates_outbound_consistently() {
        let e = mazunat();
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows().with_flows(2)
        };
        let trace = Trace::generate(&spec, 10, 4);
        let mut per_flow: std::collections::HashMap<u32, u64> = Default::default();
        for p in &trace.pkts {
            let mut view = crate::PacketView::new(p);
            machine.run_view(&mut view).unwrap();
            let newport = view.get(PktField::TcpSport);
            let prev = per_flow.entry(p.flow_id).or_insert(newport);
            assert_eq!(*prev, newport, "flow {} port changed", p.flow_id);
            assert_eq!(view.get(PktField::IpSrc), 0xc0a8_0a0a);
            assert_eq!(view.get(PktField::IpTtl), 63);
        }
        assert_eq!(per_flow.len(), 2);
        let v0 = per_flow.values().next().unwrap();
        assert!(per_flow.values().any(|v| v != v0) || per_flow.len() == 1);
    }

    #[test]
    fn udpcount_counts_only_udp() {
        let e = udpcount();
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 0.5,
            ..WorkloadSpec::imix()
        };
        let trace = Trace::generate(&spec, 100, 5);
        let udp_pkts = trace
            .pkts
            .iter()
            .filter(|p| p.flow.proto == Proto::Udp)
            .count() as u64;
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        assert_eq!(machine.state.load(GlobalId(2), 0, 0, 4), udp_pkts);
        assert_eq!(machine.state.load(GlobalId(3), 0, 0, 4), 100 - udp_pkts);
    }

    #[test]
    fn webgen_emits_get_requests() {
        let e = webgen();
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        let trace = Trace::generate(&spec, 5, 6);
        let mut view = crate::PacketView::new(&trace.pkts[0]);
        machine.run_view(&mut view).unwrap();
        assert_eq!(view.get(PktField::Payload(0)), 0x47455420);
        for p in &trace.pkts[1..] {
            machine.run(p).unwrap();
        }
        assert_eq!(machine.state.load(GlobalId(1), 0, 0, 4), 5);
    }
}
