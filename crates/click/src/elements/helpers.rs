//! Shared IR-construction helpers for the element corpus.

use nf_ir::{ApiCall, BinOp, FunctionBuilder, MemRef, Operand, PktField, Ty};

/// Loads the flow key (`ip_src ^ rotl(ip_dst) ^ ports`) — the canonical
/// 5-tuple mix most stateful elements key their tables on.
pub fn flow_key(fb: &mut FunctionBuilder) -> Operand {
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    let sport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpSport));
    let dport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpDport));
    let d1 = fb.bin(BinOp::Shl, Ty::I32, dst, Operand::imm(7));
    let d2 = fb.bin(BinOp::LShr, Ty::I32, dst, Operand::imm(25));
    let drot = fb.bin(BinOp::Or, Ty::I32, d1, d2);
    let k1 = fb.bin(BinOp::Xor, Ty::I32, src, drot);
    let sp32 = fb.cast(nf_ir::CastOp::Zext, Ty::I16, Ty::I32, sport);
    let dp32 = fb.cast(nf_ir::CastOp::Zext, Ty::I16, Ty::I32, dport);
    let pmix = fb.bin(BinOp::Shl, Ty::I32, sp32, Operand::imm(16));
    let ports = fb.bin(BinOp::Or, Ty::I32, pmix, dp32);
    fb.bin(BinOp::Xor, Ty::I32, k1, ports)
}

/// Loads the address-pair key (`ip_src ^ ip_dst`), used by coarser tables.
pub fn addr_key(fb: &mut FunctionBuilder) -> Operand {
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    fb.bin(BinOp::Xor, Ty::I32, src, dst)
}

/// Emits `checksum_update(); pkt_send(port); ret` in the current block.
pub fn csum_send_ret(fb: &mut FunctionBuilder, port: i64) {
    let _ = fb.call(ApiCall::ChecksumUpdate, vec![]);
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(port)]);
    fb.ret(None);
}

/// Emits `pkt_send(port); ret` in the current block.
pub fn send_ret(fb: &mut FunctionBuilder, port: i64) {
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(port)]);
    fb.ret(None);
}

/// Emits `pkt_drop(); ret` in the current block.
pub fn drop_ret(fb: &mut FunctionBuilder) {
    let _ = fb.call(ApiCall::PktDrop, vec![]);
    fb.ret(None);
}

/// Converts a 1-based slot handle returned by `hashmap_find`/`insert`
/// into a 0-based entry index.
pub fn slot_index(fb: &mut FunctionBuilder, handle: Operand) -> Operand {
    fb.bin(BinOp::Sub, Ty::I32, handle, Operand::imm(1))
}

/// Rewires the `phi_pos`-th instruction of `head` (which must be a phi) so
/// its incoming value from `latch` becomes `value`.
///
/// [`FunctionBuilder`] has no forward references, so loop-carried phis are
/// created with placeholder incomings and patched once the latch value
/// exists.
///
/// # Panics
///
/// Panics if the instruction at `phi_pos` is not a phi with a `latch`
/// incoming.
pub fn set_phi_incoming(
    f: &mut nf_ir::Function,
    head: nf_ir::BlockId,
    phi_pos: usize,
    latch: nf_ir::BlockId,
    value: Operand,
) {
    let inst = &mut f.blocks[head.index()].insts[phi_pos];
    if let nf_ir::Inst::Phi { incomings, .. } = inst {
        for (bb, v) in incomings.iter_mut() {
            if *bb == latch {
                *v = value;
                return;
            }
        }
    }
    panic!(
        "no phi with latch incoming at bb{} position {phi_pos}",
        head.0
    );
}
