//! Additional NF elements beyond the paper's Table 2 corpus.
//!
//! These broaden the library for downstream users (and stress the
//! substrate from more angles): a consistent-hash load balancer, a
//! token-bucket rate limiter, VLAN encap/decap, a SYN-cookie proxy, a GRE
//! tunnel encapsulator, and a flow-statistics exporter.

use nf_ir::{
    ApiCall, BinOp, CastOp, FunctionBuilder, MemRef, Module, Operand, PktField, Pred, StateKind, Ty,
};

use super::helpers::{csum_send_ret, drop_ret, flow_key, send_ret, slot_index};
use crate::element::{ElementMeta, InsightClass, NfElement};

/// Consistent-hash load balancer: pick a backend by flow hash, remember
/// the choice in a flow table so connections stick.
pub fn loadbalancer(backends: u32) -> NfElement {
    let n = backends.max(2);
    let mut m = Module::new("loadbalancer");
    let g_flows = m.add_global("lb_flows", StateKind::HashMap, 16, 8192);
    let g_backends = m.add_global("lb_backends", StateKind::Array, 8, n);
    let g_dispatched = m.add_global("dispatched", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let hit = fb.block();
    let miss = fb.block();
    let out = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);
    let found = fb
        .call(ApiCall::HashMapFind(g_flows), vec![key])
        .expect("result");
    let is_hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(is_hit, hit, miss);

    fb.switch_to(hit);
    let slot = slot_index(&mut fb, found);
    let backend = fb.load(Ty::I32, MemRef::global_at(g_flows, slot, 8));
    fb.store(Ty::I32, backend, MemRef::pkt(PktField::IpDst));
    fb.br(out);

    fb.switch_to(miss);
    // Consistent-ish hash: multiply-shift over the key.
    let h = fb.bin(
        BinOp::Mul,
        Ty::I32,
        key,
        Operand::imm(0x9e37_79b9u32 as i64),
    );
    let hs = fb.bin(BinOp::LShr, Ty::I32, h, Operand::imm(16));
    let idx = fb.bin(BinOp::URem, Ty::I32, hs, Operand::imm(i64::from(n)));
    let chosen = fb.load(Ty::I32, MemRef::global_at(g_backends, idx, 0));
    let ins = fb
        .call(ApiCall::HashMapInsert(g_flows), vec![key])
        .expect("result");
    let islot = slot_index(&mut fb, ins);
    fb.store(Ty::I32, chosen, MemRef::global_at(g_flows, islot, 8));
    fb.store(Ty::I32, chosen, MemRef::pkt(PktField::IpDst));
    fb.br(out);

    fb.switch_to(out);
    let d = fb.load(Ty::I32, MemRef::global(g_dispatched));
    let d1 = fb.bin(BinOp::Add, Ty::I32, d, Operand::imm(1));
    fb.store(Ty::I32, d1, MemRef::global(g_dispatched));
    csum_send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "loadbalancer",
            paper_loc: 0,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "sticky consistent-hash load balancer",
        },
    }
}

/// Token-bucket rate limiter: per-flow buckets refilled by the element
/// clock; packets without tokens are dropped.
pub fn ratelimiter() -> NfElement {
    let mut m = Module::new("ratelimiter");
    let g_buckets = m.add_global("rl_buckets", StateKind::HashMap, 24, 4096);
    let g_rate = m.add_global("tokens_per_tick", StateKind::Scalar, 4, 1);
    let g_dropped = m.add_global("rl_dropped", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let hit = fb.block();
    let fresh = fb.block();
    let check = fb.block();
    let allow = fb.block();
    let deny = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);
    let now = fb.call(ApiCall::Timestamp, vec![]).expect("result");
    let found = fb
        .call(ApiCall::HashMapFind(g_buckets), vec![key])
        .expect("result");
    let is_hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(is_hit, hit, fresh);

    // Refill: tokens += rate * (now - last); cap at 8 * rate.
    fb.switch_to(hit);
    let slot = slot_index(&mut fb, found);
    let last = fb.load(Ty::I32, MemRef::global_at(g_buckets, slot, 8));
    let tokens = fb.load(Ty::I32, MemRef::global_at(g_buckets, slot, 12));
    let rate = fb.load(Ty::I32, MemRef::global(g_rate));
    let rate_eff = fb.bin(BinOp::Or, Ty::I32, rate, Operand::imm(1));
    let dt = fb.bin(BinOp::Sub, Ty::I32, now, last);
    let refill = fb.bin(BinOp::Mul, Ty::I32, dt, rate_eff);
    let t1 = fb.bin(BinOp::Add, Ty::I32, tokens, refill);
    let cap = fb.bin(BinOp::Shl, Ty::I32, rate_eff, Operand::imm(3));
    let over = fb.icmp(Pred::UGt, Ty::I32, t1, cap);
    let t2 = fb.select(Ty::I32, over, cap, t1);
    fb.store(Ty::I32, now, MemRef::global_at(g_buckets, slot, 8));
    fb.store(Ty::I32, t2, MemRef::global_at(g_buckets, slot, 12));
    fb.br(check);

    fb.switch_to(fresh);
    let ins = fb
        .call(ApiCall::HashMapInsert(g_buckets), vec![key])
        .expect("result");
    let islot = slot_index(&mut fb, ins);
    fb.store(Ty::I32, now, MemRef::global_at(g_buckets, islot, 8));
    fb.store(
        Ty::I32,
        Operand::imm(8),
        MemRef::global_at(g_buckets, islot, 12),
    );
    fb.br(check);

    // Spend one token if available.
    fb.switch_to(check);
    let slot2 = fb.phi(Ty::I32, vec![(hit, slot), (fresh, islot)]);
    let t = fb.load(Ty::I32, MemRef::global_at(g_buckets, slot2, 12));
    let has = fb.icmp(Pred::UGt, Ty::I32, t, Operand::imm(0));
    fb.cond_br(has, allow, deny);

    fb.switch_to(allow);
    let spent = fb.bin(BinOp::Sub, Ty::I32, t, Operand::imm(1));
    fb.store(Ty::I32, spent, MemRef::global_at(g_buckets, slot2, 12));
    send_ret(&mut fb, 0);

    fb.switch_to(deny);
    let d = fb.load(Ty::I32, MemRef::global(g_dropped));
    let d1 = fb.bin(BinOp::Add, Ty::I32, d, Operand::imm(1));
    fb.store(Ty::I32, d1, MemRef::global(g_dropped));
    drop_ret(&mut fb);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "ratelimiter",
            paper_loc: 0,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "per-flow token-bucket rate limiter",
        },
    }
}

/// VLAN tagger: pushes a VLAN id derived from the source prefix into the
/// EtherType/TCI fields (and counts tagged frames).
pub fn vlantag() -> NfElement {
    let mut m = Module::new("vlantag");
    let g_tagged = m.add_global("tagged", StateKind::Scalar, 4, 1);
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::EthHeader, vec![]);
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let pfx = fb.bin(BinOp::LShr, Ty::I32, src, Operand::imm(20));
    let vid = fb.bin(BinOp::And, Ty::I32, pfx, Operand::imm(0x0fff));
    let tci = fb.bin(BinOp::Or, Ty::I32, vid, Operand::imm(0x2000)); // PCP=1
    fb.store(
        Ty::I16,
        Operand::imm(0x8100),
        MemRef::pkt(PktField::EthType),
    );
    let tci16 = fb.cast(CastOp::Trunc, Ty::I32, Ty::I16, tci);
    fb.store(Ty::I16, tci16, MemRef::pkt(PktField::IpId)); // TCI slot.
    let t = fb.load(Ty::I32, MemRef::global(g_tagged));
    let t1 = fb.bin(BinOp::Add, Ty::I32, t, Operand::imm(1));
    fb.store(Ty::I32, t1, MemRef::global(g_tagged));
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "vlantag",
            paper_loc: 0,
            stateful: true,
            insights: vec![InsightClass::Prediction, InsightClass::ScaleOut],
            description: "source-prefix VLAN tagger",
        },
    }
}

/// SYN-cookie proxy: answer SYNs with a stateless cookie SYN/ACK; admit
/// established flows whose ACK carries a valid cookie.
pub fn syncookie() -> NfElement {
    let mut m = Module::new("syncookie");
    let g_admitted = m.add_global("admitted", StateKind::Scalar, 4, 1);
    let g_rejected = m.add_global("rejected", StateKind::Scalar, 4, 1);
    let g_secret = m.add_global("cookie_secret", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let on_syn = fb.block();
    let on_ack = fb.block();
    let good = fb.block();
    let bad = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::TcpHeader, vec![]);
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));
    let synbit = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x02));
    let is_syn = fb.icmp(Pred::Ne, Ty::I8, synbit, Operand::imm(0));
    fb.cond_br(is_syn, on_syn, on_ack);

    // SYN: respond with cookie = H(key, secret) as our ISS.
    fb.switch_to(on_syn);
    let key = flow_key(&mut fb);
    let secret = fb.load(Ty::I32, MemRef::global(g_secret));
    let mix = fb.bin(BinOp::Xor, Ty::I32, key, secret);
    let h1 = fb.bin(BinOp::Mul, Ty::I32, mix, Operand::imm(0x85eb_ca6b));
    let h2 = fb.bin(BinOp::LShr, Ty::I32, h1, Operand::imm(13));
    let cookie = fb.bin(BinOp::Xor, Ty::I32, h1, h2);
    // Swap endpoints and send SYN/ACK carrying the cookie.
    let srcip = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let dstip = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    fb.store(Ty::I32, dstip, MemRef::pkt(PktField::IpSrc));
    fb.store(Ty::I32, srcip, MemRef::pkt(PktField::IpDst));
    let seq = fb.load(Ty::I32, MemRef::pkt(PktField::TcpSeq));
    let ack = fb.bin(BinOp::Add, Ty::I32, seq, Operand::imm(1));
    fb.store(Ty::I32, ack, MemRef::pkt(PktField::TcpAck));
    fb.store(Ty::I32, cookie, MemRef::pkt(PktField::TcpSeq));
    fb.store(Ty::I8, Operand::imm(0x12), MemRef::pkt(PktField::TcpFlags));
    csum_send_ret(&mut fb, 0);

    // ACK: recompute the cookie and compare against ack-1.
    fb.switch_to(on_ack);
    let key2 = flow_key(&mut fb);
    let secret2 = fb.load(Ty::I32, MemRef::global(g_secret));
    let mix2 = fb.bin(BinOp::Xor, Ty::I32, key2, secret2);
    let h1b = fb.bin(BinOp::Mul, Ty::I32, mix2, Operand::imm(0x85eb_ca6b));
    let h2b = fb.bin(BinOp::LShr, Ty::I32, h1b, Operand::imm(13));
    let want = fb.bin(BinOp::Xor, Ty::I32, h1b, h2b);
    let ackn = fb.load(Ty::I32, MemRef::pkt(PktField::TcpAck));
    let got = fb.bin(BinOp::Sub, Ty::I32, ackn, Operand::imm(1));
    let ok = fb.icmp(Pred::Eq, Ty::I32, got, want);
    fb.cond_br(ok, good, bad);

    fb.switch_to(good);
    let a = fb.load(Ty::I32, MemRef::global(g_admitted));
    let a1 = fb.bin(BinOp::Add, Ty::I32, a, Operand::imm(1));
    fb.store(Ty::I32, a1, MemRef::global(g_admitted));
    send_ret(&mut fb, 0);

    fb.switch_to(bad);
    let r = fb.load(Ty::I32, MemRef::global(g_rejected));
    let r1 = fb.bin(BinOp::Add, Ty::I32, r, Operand::imm(1));
    fb.store(Ty::I32, r1, MemRef::global(g_rejected));
    drop_ret(&mut fb);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "syncookie",
            paper_loc: 0,
            stateful: true,
            insights: vec![InsightClass::Prediction, InsightClass::ScaleOut],
            description: "stateless SYN-cookie proxy",
        },
    }
}

/// GRE tunnel encapsulator: outer IP header + GRE key from the flow.
pub fn gretunnel() -> NfElement {
    let mut m = Module::new("gretunnel");
    let g_encap = m.add_global("encapsulated", StateKind::Scalar, 4, 1);
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let len = fb.call(ApiCall::PktLen, vec![]).expect("result");
    let len16 = fb.cast(CastOp::Trunc, Ty::I32, Ty::I16, len);
    let outer_len = fb.bin(BinOp::Add, Ty::I16, len16, Operand::imm(24));
    let key = flow_key(&mut fb);
    fb.store(Ty::I16, outer_len, MemRef::pkt(PktField::IpLen));
    fb.store(Ty::I8, Operand::imm(47), MemRef::pkt(PktField::IpProto)); // GRE
    fb.store(
        Ty::I32,
        Operand::imm(0x0a0a_0001),
        MemRef::pkt(PktField::IpSrc),
    );
    fb.store(
        Ty::I32,
        Operand::imm(0x0a0a_0002),
        MemRef::pkt(PktField::IpDst),
    );
    fb.store(Ty::I32, key, MemRef::pkt(PktField::Payload(0))); // GRE key.
    let c = fb.load(Ty::I32, MemRef::global(g_encap));
    let c1 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
    fb.store(Ty::I32, c1, MemRef::global(g_encap));
    csum_send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "gretunnel",
            paper_loc: 0,
            stateful: true,
            insights: vec![InsightClass::Prediction, InsightClass::ScaleOut],
            description: "GRE tunnel encapsulator",
        },
    }
}

/// Flow-statistics exporter: per-flow packet/byte counters; every 64th
/// packet of a flow emits a record into an export ring.
pub fn flowstats() -> NfElement {
    let mut m = Module::new("flowstats");
    let g_flows = m.add_global("fs_flows", StateKind::HashMap, 24, 8192);
    let g_ring = m.add_global("export_ring", StateKind::Vector, 16, 256);
    let g_exports = m.add_global("exports", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let hit = fb.block();
    let miss = fb.block();
    let tally = fb.block();
    let export = fb.block();
    let out = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);
    let found = fb
        .call(ApiCall::HashMapFind(g_flows), vec![key])
        .expect("result");
    let is_hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(is_hit, hit, miss);

    fb.switch_to(hit);
    let hslot = slot_index(&mut fb, found);
    fb.br(tally);

    fb.switch_to(miss);
    let ins = fb
        .call(ApiCall::HashMapInsert(g_flows), vec![key])
        .expect("result");
    let mslot = slot_index(&mut fb, ins);
    fb.br(tally);

    fb.switch_to(tally);
    let slot = fb.phi(Ty::I32, vec![(hit, hslot), (miss, mslot)]);
    let pkts = fb.load(Ty::I32, MemRef::global_at(g_flows, slot, 8));
    let pkts1 = fb.bin(BinOp::Add, Ty::I32, pkts, Operand::imm(1));
    fb.store(Ty::I32, pkts1, MemRef::global_at(g_flows, slot, 8));
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let len32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, len);
    let bytes = fb.load(Ty::I32, MemRef::global_at(g_flows, slot, 12));
    let bytes1 = fb.bin(BinOp::Add, Ty::I32, bytes, len32);
    fb.store(Ty::I32, bytes1, MemRef::global_at(g_flows, slot, 12));
    let low = fb.bin(BinOp::And, Ty::I32, pkts1, Operand::imm(63));
    let due = fb.icmp(Pred::Eq, Ty::I32, low, Operand::imm(0));
    fb.cond_br(due, export, out);

    fb.switch_to(export);
    let rslot = fb
        .call(ApiCall::VectorPush(g_ring), vec![])
        .expect("result");
    let ridx = slot_index(&mut fb, rslot);
    fb.store(Ty::I32, key, MemRef::global_at(g_ring, ridx, 0));
    fb.store(Ty::I32, pkts1, MemRef::global_at(g_ring, ridx, 4));
    fb.store(Ty::I32, bytes1, MemRef::global_at(g_ring, ridx, 8));
    let ex = fb.load(Ty::I32, MemRef::global(g_exports));
    let ex1 = fb.bin(BinOp::Add, Ty::I32, ex, Operand::imm(1));
    fb.store(Ty::I32, ex1, MemRef::global(g_exports));
    fb.br(out);

    fb.switch_to(out);
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "flowstats",
            paper_loc: 0,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Placement,
                InsightClass::Coalescing,
            ],
            description: "per-flow statistics exporter with export ring",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use nf_ir::GlobalId;
    use trafgen::{Trace, WorkloadSpec};

    fn tcp_trace(flows: u32, n: usize, seed: u64) -> Trace {
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows().with_flows(flows)
        };
        Trace::generate(&spec, n, seed)
    }

    #[test]
    fn extra_elements_verify_and_execute() {
        let trace = Trace::generate(&WorkloadSpec::imix(), 40, 1);
        for e in crate::element::extended_corpus() {
            let mut m = Machine::new(&e.module).unwrap_or_else(|err| panic!("{}: {err}", e.name()));
            for p in &trace.pkts {
                m.run(p).unwrap_or_else(|err| panic!("{}: {err}", e.name()));
            }
        }
    }

    #[test]
    fn loadbalancer_is_sticky() {
        let e = loadbalancer(4);
        let mut machine = Machine::new(&e.module).unwrap();
        // Install distinct backend addresses.
        for i in 0..4u64 {
            machine
                .state
                .store(GlobalId(1), i, 0, 4, 0xc0a8_0000 + i + 1);
        }
        let trace = tcp_trace(3, 30, 2);
        let mut per_flow: std::collections::HashMap<u32, u64> = Default::default();
        for p in &trace.pkts {
            let mut view = crate::PacketView::new(p);
            machine.run_view(&mut view).unwrap();
            let dst = view.get(nf_ir::PktField::IpDst);
            assert!(
                dst > 0xc0a8_0000 && dst <= 0xc0a8_0004,
                "not a backend: {dst:#x}"
            );
            let prev = per_flow.entry(p.flow_id).or_insert(dst);
            assert_eq!(*prev, dst, "flow {} flapped backends", p.flow_id);
        }
    }

    #[test]
    fn ratelimiter_drops_when_bucket_empty() {
        let e = ratelimiter();
        let mut machine = Machine::new(&e.module).unwrap();
        // Zero refill rate forced to 1 via `| 1`; a single flow spamming
        // every tick gets roughly rate-limited after the initial burst.
        let trace = tcp_trace(1, 60, 3);
        let mut sent = 0;
        let mut dropped = 0;
        for p in &trace.pkts {
            let mut view = crate::PacketView::new(p);
            machine.run_view(&mut view).unwrap();
            match view.verdict {
                Some(crate::packet::Verdict::Sent(_)) => sent += 1,
                Some(crate::packet::Verdict::Dropped) => dropped += 1,
                None => {}
            }
        }
        assert_eq!(sent + dropped, 60);
        assert!(sent > 0, "initial burst should pass");
    }

    #[test]
    fn vlantag_rewrites_ethertype() {
        let e = vlantag();
        let mut machine = Machine::new(&e.module).unwrap();
        let trace = tcp_trace(2, 3, 4);
        let mut view = crate::PacketView::new(&trace.pkts[0]);
        machine.run_view(&mut view).unwrap();
        assert_eq!(view.get(nf_ir::PktField::EthType), 0x8100);
    }

    #[test]
    fn syncookie_admits_valid_ack_rejects_forged() {
        let e = syncookie();
        let mut machine = Machine::new(&e.module).unwrap();
        machine.state.store(GlobalId(2), 0, 0, 4, 0x5eed_cafe);
        let trace = tcp_trace(1, 2, 5);
        // First packet is a SYN: we get a SYN/ACK carrying the cookie.
        let mut syn = crate::PacketView::new(&trace.pkts[0]);
        machine.run_view(&mut syn).unwrap();
        assert_eq!(syn.get(nf_ir::PktField::TcpFlags), 0x12);
        let cookie = syn.get(nf_ir::PktField::TcpSeq);
        // Craft the client's ACK: ack = cookie + 1 on the same flow.
        let mut ack = crate::PacketView::new(&trace.pkts[1]);
        ack.set(nf_ir::PktField::TcpFlags, 0x10);
        ack.set(nf_ir::PktField::TcpAck, (cookie + 1) & 0xffff_ffff);
        machine.run_view(&mut ack).unwrap();
        assert_eq!(
            machine.state.load(GlobalId(0), 0, 0, 4),
            1,
            "valid ACK admitted"
        );
        // Forged ACK gets rejected.
        let mut forged = crate::PacketView::new(&trace.pkts[1]);
        forged.set(nf_ir::PktField::TcpFlags, 0x10);
        forged.set(nf_ir::PktField::TcpAck, 12345);
        machine.run_view(&mut forged).unwrap();
        assert_eq!(
            machine.state.load(GlobalId(1), 0, 0, 4),
            1,
            "forged ACK rejected"
        );
    }

    #[test]
    fn gretunnel_sets_outer_header() {
        let e = gretunnel();
        let mut machine = Machine::new(&e.module).unwrap();
        let trace = tcp_trace(1, 1, 6);
        let mut view = crate::PacketView::new(&trace.pkts[0]);
        let inner_len = view.get(nf_ir::PktField::IpLen);
        machine.run_view(&mut view).unwrap();
        assert_eq!(view.get(nf_ir::PktField::IpProto), 47);
        assert_eq!(
            view.get(nf_ir::PktField::IpLen),
            (u64::from(trace.pkts[0].size) + 24) & 0xffff
        );
        let _ = inner_len;
    }

    #[test]
    fn flowstats_exports_every_64th_packet() {
        let e = flowstats();
        let mut machine = Machine::new(&e.module).unwrap();
        let trace = tcp_trace(1, 130, 7);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        assert_eq!(machine.state.load(GlobalId(2), 0, 0, 4), 2); // 64 and 128.
    }
}
