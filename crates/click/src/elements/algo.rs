//! Elements containing accelerator-eligible algorithms.
//!
//! `cmsketch` and `wepdecap` embed CRC-style checksum loops (dense
//! xor/shift bitwise work), and `iplookup` embeds a binary-trie
//! longest-prefix-match walk (bounded pointer chasing) — exactly the
//! algorithm classes Clara's identification stage (Section 4.1) learns to
//! spot and map onto the Netronome CRC and LPM engines.

use nf_ir::{
    ApiCall, BinOp, BlockId, FunctionBuilder, GlobalId, MemRef, Module, Operand, PktField, Pred,
    StateKind, Ty,
};

use super::helpers::{flow_key, send_ret, set_phi_incoming};
use crate::element::{ElementMeta, InsightClass, NfElement};
use crate::state::StateStore;

/// Emits a bit-serial CRC16 loop over a 32-bit `key`, returning the block
/// ids `(head, latch)` and the final CRC operand (valid in `after`).
///
/// The caller must be positioned in a block that will fall through to the
/// loop; on return the builder is positioned at the start of `after`.
fn emit_crc16_loop(
    fb: &mut FunctionBuilder,
    key: Operand,
    poly: i64,
    pre: BlockId,
    patches: &mut Vec<(BlockId, usize, BlockId, Operand)>,
) -> Operand {
    let head = fb.block();
    let body = fb.block();
    let latch = fb.block();
    let after = fb.block();
    fb.br(head);

    fb.switch_to(head);
    let i = fb.phi(
        Ty::I32,
        vec![(pre, Operand::imm(0)), (latch, Operand::imm(0))],
    );
    let crc = fb.phi(
        Ty::I32,
        vec![(pre, Operand::imm(0xffff)), (latch, Operand::imm(0))],
    );
    let more = fb.icmp(Pred::ULt, Ty::I32, i, Operand::imm(32));
    fb.cond_br(more, body, after);

    fb.switch_to(body);
    let top = fb.bin(BinOp::LShr, Ty::I32, crc, Operand::imm(15));
    let topbit = fb.bin(BinOp::And, Ty::I32, top, Operand::imm(1));
    let kshift = fb.bin(BinOp::LShr, Ty::I32, key, i);
    let kbit = fb.bin(BinOp::And, Ty::I32, kshift, Operand::imm(1));
    let mix = fb.bin(BinOp::Xor, Ty::I32, topbit, kbit);
    let shifted = fb.bin(BinOp::Shl, Ty::I32, crc, Operand::imm(1));
    let masked = fb.bin(BinOp::And, Ty::I32, shifted, Operand::imm(0xffff));
    let xored = fb.bin(BinOp::Xor, Ty::I32, masked, Operand::imm(poly));
    let taken = fb.icmp(Pred::Ne, Ty::I32, mix, Operand::imm(0));
    let crc_next = fb.select(Ty::I32, taken, xored, masked);
    fb.br(latch);

    fb.switch_to(latch);
    let i_next = fb.bin(BinOp::Add, Ty::I32, i, Operand::imm(1));
    fb.br(head);

    patches.push((head, 0, latch, i_next));
    patches.push((head, 1, latch, crc_next));

    fb.switch_to(after);
    // The CRC value flows out through a phi-free read: `crc` is defined in
    // `head`, which dominates `after`.
    crc
}

/// `cmsketch`: count-min sketch with CRC16 row hashes.
pub fn cmsketch() -> NfElement {
    let mut m = Module::new("cmsketch");
    let g_row0 = m.add_global("sketch_row0", StateKind::Sketch, 4, 1024);
    let g_row1 = m.add_global("sketch_row1", StateKind::Sketch, 4, 1024);
    let g_min = m.add_global("last_min", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);

    let mut patches = Vec::new();
    let pre0 = fb.current_block().expect("in entry");
    let crc0 = emit_crc16_loop(&mut fb, key, 0x1021, pre0, &mut patches);
    // Row 0 update.
    let idx0 = fb.bin(BinOp::And, Ty::I32, crc0, Operand::imm(1023));
    let c0 = fb.load(Ty::I32, MemRef::global_at(g_row0, idx0, 0));
    let c0n = fb.bin(BinOp::Add, Ty::I32, c0, Operand::imm(1));
    fb.store(Ty::I32, c0n, MemRef::global_at(g_row0, idx0, 0));

    let pre1 = fb.current_block().expect("in row0 after");
    let crc1 = emit_crc16_loop(&mut fb, key, 0x8005, pre1, &mut patches);
    // Row 1 update.
    let idx1 = fb.bin(BinOp::And, Ty::I32, crc1, Operand::imm(1023));
    let c1 = fb.load(Ty::I32, MemRef::global_at(g_row1, idx1, 0));
    let c1n = fb.bin(BinOp::Add, Ty::I32, c1, Operand::imm(1));
    fb.store(Ty::I32, c1n, MemRef::global_at(g_row1, idx1, 0));

    // min(row0, row1) — the sketch estimate.
    let less = fb.icmp(Pred::ULt, Ty::I32, c0n, c1n);
    let est = fb.select(Ty::I32, less, c0n, c1n);
    fb.store(Ty::I32, est, MemRef::global(g_min));
    send_ret(&mut fb, 0);

    let mut f = fb.finish();
    for (head, pos, latch, val) in patches {
        set_phi_incoming(&mut f, head, pos, latch, val);
    }
    m.funcs.push(f);
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "cmsketch",
            paper_loc: 92,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::AlgorithmId,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "count-min sketch with CRC row hashes (CRC accel target)",
        },
    }
}

/// `wepdecap`: WEP decapsulation — RC4-style keystream mix plus a CRC32
/// integrity loop over payload words.
pub fn wepdecap() -> NfElement {
    let mut m = Module::new("wepdecap");
    let g_ok = m.add_global("decap_ok", StateKind::Scalar, 4, 1);
    let g_bad = m.add_global("decap_bad", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let head = fb.block();
    let body = fb.block();
    let latch = fb.block();
    let after = fb.block();
    let good = fb.block();
    let bad = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let len = fb.call(ApiCall::PktLen, vec![]).expect("has result");
    let pay = fb.bin(BinOp::Sub, Ty::I32, len, Operand::imm(54));
    let cap = fb.icmp(Pred::UGt, Ty::I32, pay, Operand::imm(64));
    let limit = fb.select(Ty::I32, cap, Operand::imm(64), pay);
    // RC4-style key setup from the IV (three mixing rounds).
    let iv = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(0)));
    let k1 = fb.bin(BinOp::Mul, Ty::I32, iv, Operand::imm(0x0101_0101));
    let k2 = fb.bin(BinOp::Xor, Ty::I32, k1, Operand::imm(0x5a5a_5a5a));
    let k3 = fb.bin(BinOp::LShr, Ty::I32, k2, Operand::imm(3));
    let key = fb.bin(BinOp::Xor, Ty::I32, k2, k3);
    fb.br(head);

    // CRC32-style word loop: crc = (crc >> 8) ^ mix(crc ^ word).
    fb.switch_to(head);
    let off = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(4)), (latch, Operand::imm(0))],
    );
    let crc = fb.phi(
        Ty::I32,
        vec![
            (entry, Operand::imm(0xffff_ffffu32 as i64)),
            (latch, Operand::imm(0)),
        ],
    );
    let more = fb.icmp(Pred::ULt, Ty::I32, off, limit);
    fb.cond_br(more, body, after);

    fb.switch_to(body);
    let w = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(4)));
    let decrypted = fb.bin(BinOp::Xor, Ty::I32, w, key);
    let x = fb.bin(BinOp::Xor, Ty::I32, crc, decrypted);
    let s1 = fb.bin(BinOp::LShr, Ty::I32, x, Operand::imm(8));
    let a1 = fb.bin(BinOp::And, Ty::I32, x, Operand::imm(0xff));
    let m1 = fb.bin(BinOp::Mul, Ty::I32, a1, Operand::imm(0x04c1));
    let s2 = fb.bin(BinOp::Shl, Ty::I32, m1, Operand::imm(4));
    let crc_mix = fb.bin(BinOp::Xor, Ty::I32, s1, s2);
    let crc_next = fb.bin(BinOp::Xor, Ty::I32, crc_mix, Operand::imm(0x04c1_1db7));
    fb.br(latch);

    fb.switch_to(latch);
    let off_next = fb.bin(BinOp::Add, Ty::I32, off, Operand::imm(4));
    fb.br(head);

    fb.switch_to(after);
    // Integrity check: low byte of CRC vs a payload trailer byte.
    let low = fb.bin(BinOp::And, Ty::I32, crc, Operand::imm(0x7));
    let passes = fb.icmp(Pred::Ne, Ty::I32, low, Operand::imm(0));
    fb.cond_br(passes, good, bad);

    fb.switch_to(good);
    let okc = fb.load(Ty::I32, MemRef::global(g_ok));
    let okc1 = fb.bin(BinOp::Add, Ty::I32, okc, Operand::imm(1));
    fb.store(Ty::I32, okc1, MemRef::global(g_ok));
    send_ret(&mut fb, 0);

    fb.switch_to(bad);
    let bc = fb.load(Ty::I32, MemRef::global(g_bad));
    let bc1 = fb.bin(BinOp::Add, Ty::I32, bc, Operand::imm(1));
    fb.store(Ty::I32, bc1, MemRef::global(g_bad));
    send_ret(&mut fb, 1);

    let mut f = fb.finish();
    set_phi_incoming(&mut f, head, 0, latch, off_next);
    set_phi_incoming(&mut f, head, 1, latch, crc_next);
    m.funcs.push(f);
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "wepdecap",
            paper_loc: 104,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::AlgorithmId,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "WEP decapsulation with CRC32 integrity loop (CRC accel target)",
        },
    }
}

/// Trie node layout for [`iplookup`]: `child0 | child1 | nexthop | valid`.
pub const TRIE_NODE_BYTES: u32 = 16;
/// Byte offset of the zero-bit child pointer.
pub const TRIE_OFF_CHILD0: u32 = 0;
/// Byte offset of the one-bit child pointer.
pub const TRIE_OFF_CHILD1: u32 = 4;
/// Byte offset of the next-hop value.
pub const TRIE_OFF_NEXTHOP: u32 = 8;
/// Byte offset of the valid flag.
pub const TRIE_OFF_VALID: u32 = 12;

/// `iplookup`: longest-prefix match by binary-trie walk (Figure 1's LPM).
///
/// `capacity` sizes the trie node pool; rules are installed into the
/// interpreter's state with [`build_trie`].
pub fn iplookup(capacity: u32) -> NfElement {
    let mut m = Module::new("iplookup");
    let g_trie = m.add_global(
        "lpm_trie",
        StateKind::Trie,
        TRIE_NODE_BYTES,
        capacity.max(16),
    );
    let g_hits = m.add_global("lookup_hits", StateKind::Scalar, 4, 1);
    let g_miss = m.add_global("lookup_miss", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let head = fb.block();
    let body = fb.block();
    let latch = fb.block();
    let after = fb.block();
    let matched = fb.block();
    let unmatched = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    fb.br(head);

    // Walk: node/depth/best are loop-carried; stop on null child or depth 24.
    fb.switch_to(head);
    let node = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0)), (latch, Operand::imm(0))],
    );
    let depth = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0)), (latch, Operand::imm(0))],
    );
    let best = fb.phi(
        Ty::I32,
        vec![(entry, Operand::imm(0)), (latch, Operand::imm(0))],
    );
    let in_range = fb.icmp(Pred::ULt, Ty::I32, depth, Operand::imm(24));
    fb.cond_br(in_range, body, after);

    fb.switch_to(body);
    // Track the longest valid prefix seen so far.
    let valid = fb.load(Ty::I32, MemRef::global_at(g_trie, node, TRIE_OFF_VALID));
    let nexthop = fb.load(Ty::I32, MemRef::global_at(g_trie, node, TRIE_OFF_NEXTHOP));
    let has = fb.icmp(Pred::Ne, Ty::I32, valid, Operand::imm(0));
    let best_next = fb.select(Ty::I32, has, nexthop, best);
    // Choose the child by the current address bit (pointer chasing).
    let shift = fb.bin(BinOp::Sub, Ty::I32, Operand::imm(31), depth);
    let bitword = fb.bin(BinOp::LShr, Ty::I32, dst, shift);
    let bit = fb.bin(BinOp::And, Ty::I32, bitword, Operand::imm(1));
    let c0 = fb.load(Ty::I32, MemRef::global_at(g_trie, node, TRIE_OFF_CHILD0));
    let c1 = fb.load(Ty::I32, MemRef::global_at(g_trie, node, TRIE_OFF_CHILD1));
    let go1 = fb.icmp(Pred::Ne, Ty::I32, bit, Operand::imm(0));
    let child = fb.select(Ty::I32, go1, c1, c0);
    let dead_end = fb.icmp(Pred::Eq, Ty::I32, child, Operand::imm(0));
    // A null child ends the walk: route through `latch` with depth forced
    // past the bound so `head` exits next iteration.
    let depth_next_raw = fb.bin(BinOp::Add, Ty::I32, depth, Operand::imm(1));
    let depth_next = fb.select(Ty::I32, dead_end, Operand::imm(24), depth_next_raw);
    fb.br(latch);

    fb.switch_to(latch);
    let node_next = fb.select(Ty::I32, dead_end, node, child);
    fb.br(head);

    fb.switch_to(after);
    let found = fb.icmp(Pred::Ne, Ty::I32, best, Operand::imm(0));
    fb.cond_br(found, matched, unmatched);

    fb.switch_to(matched);
    fb.store(Ty::I32, best, MemRef::pkt(PktField::EthDst)); // Next-hop MAC.
    let hc = fb.load(Ty::I32, MemRef::global(g_hits));
    let hc1 = fb.bin(BinOp::Add, Ty::I32, hc, Operand::imm(1));
    fb.store(Ty::I32, hc1, MemRef::global(g_hits));
    send_ret(&mut fb, 0);

    fb.switch_to(unmatched);
    let mc = fb.load(Ty::I32, MemRef::global(g_miss));
    let mc1 = fb.bin(BinOp::Add, Ty::I32, mc, Operand::imm(1));
    fb.store(Ty::I32, mc1, MemRef::global(g_miss));
    send_ret(&mut fb, 1); // Default route.

    let mut f = fb.finish();
    set_phi_incoming(&mut f, head, 0, latch, node_next);
    set_phi_incoming(&mut f, head, 1, latch, depth_next);
    set_phi_incoming(&mut f, head, 2, latch, best_next);
    m.funcs.push(f);
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "iplookup",
            paper_loc: 95,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::AlgorithmId,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "binary-trie longest prefix match (LPM accel target)",
        },
    }
}

/// Installs prefix rules `(addr, prefix_len, nexthop)` into an
/// [`iplookup`] trie global, returning the number of nodes used.
///
/// Node 0 is the root; children are allocated sequentially. Next-hop 0 is
/// reserved for "no route", so hops are stored as `nexthop | 1<<31`... no:
/// hops are stored as given and must be nonzero to count as a match.
pub fn build_trie(
    state: &mut StateStore,
    trie: GlobalId,
    capacity: u32,
    rules: &[(u32, u8, u32)],
) -> u32 {
    let mut next_free = 1u32;
    for &(addr, plen, nexthop) in rules {
        let mut node = 0u32;
        for d in 0..plen.min(24) {
            let bit = (addr >> (31 - d)) & 1;
            let off = if bit == 1 {
                TRIE_OFF_CHILD1
            } else {
                TRIE_OFF_CHILD0
            };
            let child = state.load(trie, u64::from(node), off, 4) as u32;
            let child = if child == 0 {
                if next_free >= capacity {
                    break; // Pool exhausted; rule truncated.
                }
                let c = next_free;
                next_free += 1;
                state.store(trie, u64::from(node), off, 4, u64::from(c));
                c
            } else {
                child
            };
            node = child;
        }
        state.store(
            trie,
            u64::from(node),
            TRIE_OFF_NEXTHOP,
            4,
            u64::from(nexthop.max(1)),
        );
        state.store(trie, u64::from(node), TRIE_OFF_VALID, 4, 1);
    }
    next_free
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use trafgen::{Trace, WorkloadSpec};

    #[test]
    fn cmsketch_estimates_flow_counts() {
        let e = cmsketch();
        let mut m = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec::large_flows().with_flows(1);
        let trace = Trace::generate(&spec, 10, 1);
        for p in &trace.pkts {
            m.run(p).unwrap();
        }
        // One flow, ten packets: the sketch min must be exactly 10.
        assert_eq!(m.state.load(GlobalId(2), 0, 0, 4), 10);
    }

    #[test]
    fn cmsketch_rows_disagree_across_flows() {
        let e = cmsketch();
        let mut m = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec::small_flows().with_flows(500);
        let trace = Trace::generate(&spec, 500, 2);
        for p in &trace.pkts {
            m.run(p).unwrap();
        }
        // Different polynomials → different row distributions; both rows
        // must hold all increments.
        let sum_row = |g: GlobalId, st: &crate::StateStore| -> u64 {
            (0..1024).map(|i| st.load(g, i, 0, 4)).sum()
        };
        assert_eq!(sum_row(GlobalId(0), &m.state), 500);
        assert_eq!(sum_row(GlobalId(1), &m.state), 500);
    }

    #[test]
    fn wepdecap_classifies_every_packet() {
        let e = wepdecap();
        let mut m = Machine::new(&e.module).unwrap();
        let trace = Trace::generate(&WorkloadSpec::imix(), 40, 3);
        for p in &trace.pkts {
            m.run(p).unwrap();
        }
        let ok = m.state.load(GlobalId(0), 0, 0, 4);
        let bad = m.state.load(GlobalId(1), 0, 0, 4);
        assert_eq!(ok + bad, 40);
    }

    #[test]
    fn iplookup_matches_installed_prefixes() {
        let e = iplookup(1024);
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec::large_flows().with_flows(8);
        let trace = Trace::generate(&spec, 40, 4);
        // Install a /16 covering the first packet's destination and a
        // default-ish /4 covering nothing in 64.0.0.0+ space.
        let dst = trace.pkts[0].flow.dst_ip;
        build_trie(
            &mut machine.state,
            GlobalId(0),
            1024,
            &[(dst, 16, 42), (0x0808_0000, 16, 7)],
        );
        let mut hits = 0u64;
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        hits += machine.state.load(GlobalId(1), 0, 0, 4);
        let miss = machine.state.load(GlobalId(2), 0, 0, 4);
        assert!(hits > 0, "no LPM hits");
        assert_eq!(hits + miss, 40);
    }

    #[test]
    fn iplookup_prefers_longer_prefix() {
        let e = iplookup(1024);
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec::large_flows().with_flows(1);
        let trace = Trace::generate(&spec, 1, 5);
        let dst = trace.pkts[0].flow.dst_ip;
        build_trie(
            &mut machine.state,
            GlobalId(0),
            1024,
            &[(dst, 8, 11), (dst, 20, 22)],
        );
        let mut view = crate::PacketView::new(&trace.pkts[0]);
        machine.run_view(&mut view).unwrap();
        // The /20 next-hop wins over the /8.
        assert_eq!(view.get(PktField::EthDst), 22);
    }

    #[test]
    fn trie_walk_depth_scales_with_rules() {
        // More rules → deeper/longer walks on average (Figure 10c's axis).
        let spec = WorkloadSpec::small_flows().with_flows(64);
        let trace = Trace::generate(&spec, 64, 6);
        let steps_for = |nrules: usize| -> u64 {
            let e = iplookup(8192);
            let mut machine = Machine::new(&e.module).unwrap();
            let rules: Vec<(u32, u8, u32)> = trace
                .pkts
                .iter()
                .take(nrules)
                .map(|p| (p.flow.dst_ip, 20, 9))
                .collect();
            build_trie(&mut machine.state, GlobalId(0), 8192, &rules);
            trace
                .pkts
                .iter()
                .map(|p| machine.run(p).unwrap().steps)
                .sum()
        };
        let few = steps_for(2);
        let many = steps_for(64);
        assert!(many > few, "many-rule walk {many} <= few-rule walk {few}");
    }

    use nf_ir::GlobalId;
}
