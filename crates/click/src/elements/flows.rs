//! Heavy stateful elements built on the flow-table primitive
//! ([`nf_ir::StateKind::FlowTable`]): keyed tables with idle/hard
//! timeouts, LRU/random eviction, and churn counters. These are the
//! corpus NFs whose offload decisions hinge on flow-state behaviour
//! (Cora-style stateful applications) — they stress the profile cache,
//! the working-set accounting, and the partial-offload splitter.

use nf_ir::{
    ApiCall, BinOp, CastOp, EvictPolicy, FlowSpec, FunctionBuilder, MemRef, Module, Operand,
    PktField, Pred, StateKind, Ty,
};

use super::helpers::{csum_send_ret, drop_ret, flow_key, send_ret, slot_index};
use crate::element::{ElementMeta, InsightClass, NfElement};

/// `natchurn`: NAT whose translation table is a flow table with idle
/// expiry — ports are recycled as flows time out, so the port counter
/// and the table's churn counter both advance under short-flow storms.
/// The table is deliberately small with a long idle window (a CGNAT-style
/// scarce port pool): flow storms overflow buckets and force LRU
/// eviction well before entries idle out.
pub fn natchurn() -> NfElement {
    let mut m = Module::new("natchurn");
    let g_nat = m.add_flow_table(
        "nat_flows",
        16,
        256,
        FlowSpec {
            idle_timeout: 512,
            hard_timeout: 0,
            evict: EvictPolicy::Lru,
        },
    );
    let g_next = m.add_global("next_port", StateKind::Scalar, 4, 1);
    let g_churn = m.add_global("churn_seen", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let hit = fb.block();
    let miss = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);
    let found = fb
        .call(ApiCall::FlowLookup(g_nat), vec![key])
        .expect("has result");
    let is_hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(is_hit, hit, miss);

    // Live mapping: rewrite the source port from the stored translation.
    fb.switch_to(hit);
    let slot = slot_index(&mut fb, found);
    let port = fb.load(Ty::I16, MemRef::global_at(g_nat, slot, 8));
    fb.store(Ty::I16, port, MemRef::pkt(PktField::TcpSport));
    csum_send_ret(&mut fb, 0);

    // New (or expired) flow: allocate the next external port.
    fb.switch_to(miss);
    let next = fb.load(Ty::I32, MemRef::global(g_next));
    let next1 = fb.bin(BinOp::Add, Ty::I32, next, Operand::imm(1));
    fb.store(Ty::I32, next1, MemRef::global(g_next));
    let span = fb.bin(BinOp::And, Ty::I32, next1, Operand::imm(0x3fff));
    let port = fb.bin(BinOp::Or, Ty::I32, span, Operand::imm(0x4000));
    let ins = fb
        .call(ApiCall::FlowUpsert(g_nat), vec![key])
        .expect("has result");
    let islot = slot_index(&mut fb, ins);
    fb.store(Ty::I16, port, MemRef::global_at(g_nat, islot, 8));
    fb.store(Ty::I16, port, MemRef::pkt(PktField::TcpSport));
    let churn = fb
        .call(ApiCall::FlowChurn(g_nat), vec![])
        .expect("has result");
    fb.store(Ty::I32, churn, MemRef::global(g_churn));
    csum_send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "natchurn",
            paper_loc: 210,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "NAT with port churn over an idle-expiring flow table",
        },
    }
}

/// `fwstate`: stateful firewall admitting only flows a SYN opened — the
/// flow table's idle timeout closes pinholes that go quiet.
pub fn fwstate() -> NfElement {
    let mut m = Module::new("fwstate");
    let g_flows = m.add_flow_table(
        "fw_state",
        16,
        2048,
        FlowSpec {
            idle_timeout: 32,
            hard_timeout: 0,
            evict: EvictPolicy::Lru,
        },
    );
    let g_drop = m.add_global("dropped", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let syn_path = fb.block();
    let est_path = fb.block();
    let est_hit = fb.block();
    let deny = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));
    let syn = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x02));
    let is_syn = fb.icmp(Pred::Ne, Ty::I8, syn, Operand::imm(0));
    fb.cond_br(is_syn, syn_path, est_path);

    // SYN: open (or refresh) the pinhole.
    fb.switch_to(syn_path);
    let key = flow_key(&mut fb);
    let ins = fb
        .call(ApiCall::FlowUpsert(g_flows), vec![key])
        .expect("has result");
    let islot = slot_index(&mut fb, ins);
    fb.store(Ty::I32, Operand::imm(1), MemRef::global_at(g_flows, islot, 8));
    send_ret(&mut fb, 0);

    // Established traffic must match a live pinhole.
    fb.switch_to(est_path);
    let key2 = flow_key(&mut fb);
    let found = fb
        .call(ApiCall::FlowLookup(g_flows), vec![key2])
        .expect("has result");
    let hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(hit, est_hit, deny);

    fb.switch_to(est_hit);
    let slot = slot_index(&mut fb, found);
    let cnt = fb.load(Ty::I32, MemRef::global_at(g_flows, slot, 8));
    let cnt1 = fb.bin(BinOp::Add, Ty::I32, cnt, Operand::imm(1));
    fb.store(Ty::I32, cnt1, MemRef::global_at(g_flows, slot, 8));
    send_ret(&mut fb, 0);

    fb.switch_to(deny);
    let d = fb.load(Ty::I32, MemRef::global(g_drop));
    let d1 = fb.bin(BinOp::Add, Ty::I32, d, Operand::imm(1));
    fb.store(Ty::I32, d1, MemRef::global(g_drop));
    drop_ret(&mut fb);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "fwstate",
            paper_loc: 175,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Placement,
            ],
            description: "stateful firewall with idle-timeout pinholes",
        },
    }
}

/// `conntrack`: connection tracker keeping per-flow packet/byte tallies;
/// a hard timeout bounds entry lifetime and FIN/RST tears flows down.
pub fn conntrack() -> NfElement {
    let mut m = Module::new("conntrack");
    let g_ct = m.add_flow_table(
        "ct_table",
        32,
        4096,
        FlowSpec {
            idle_timeout: 0,
            hard_timeout: 256,
            evict: EvictPolicy::Lru,
        },
    );
    let g_closed = m.add_global("closed", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let teardown = fb.block();
    let out = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);
    let ins = fb
        .call(ApiCall::FlowUpsert(g_ct), vec![key])
        .expect("has result");
    let slot = slot_index(&mut fb, ins);
    let pkts = fb.load(Ty::I32, MemRef::global_at(g_ct, slot, 8));
    let pkts1 = fb.bin(BinOp::Add, Ty::I32, pkts, Operand::imm(1));
    fb.store(Ty::I32, pkts1, MemRef::global_at(g_ct, slot, 8));
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let len32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, len);
    let bytes = fb.load(Ty::I32, MemRef::global_at(g_ct, slot, 12));
    let bytes1 = fb.bin(BinOp::Add, Ty::I32, bytes, len32);
    fb.store(Ty::I32, bytes1, MemRef::global_at(g_ct, slot, 12));
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));
    let finrst = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x05));
    let closing = fb.icmp(Pred::Ne, Ty::I8, finrst, Operand::imm(0));
    fb.cond_br(closing, teardown, out);

    fb.switch_to(teardown);
    let _ = fb.call(ApiCall::FlowRemove(g_ct), vec![key]);
    let c = fb.load(Ty::I32, MemRef::global(g_closed));
    let c1 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
    fb.store(Ty::I32, c1, MemRef::global(g_closed));
    fb.br(out);

    fb.switch_to(out);
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "conntrack",
            paper_loc: 230,
            stateful: true,
            insights: vec![
                InsightClass::Prediction,
                InsightClass::ScaleOut,
                InsightClass::Coalescing,
            ],
            description: "connection tracker with hard-timeout entries",
        },
    }
}

/// `dnscache`: response cache keyed by resolver pair and query id;
/// random eviction models a cache that cannot afford LRU metadata.
pub fn dnscache() -> NfElement {
    let mut m = Module::new("dnscache");
    let g_cache = m.add_flow_table(
        "dns_cache",
        32,
        1024,
        FlowSpec {
            idle_timeout: 128,
            hard_timeout: 1024,
            evict: EvictPolicy::Random,
        },
    );
    let g_hits = m.add_global("cache_hits", StateKind::Scalar, 4, 1);
    let g_miss = m.add_global("cache_misses", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let is_dns = fb.block();
    let hit = fb.block();
    let miss = fb.block();
    let other = fb.block();
    fb.switch_to(entry);
    let udp_ok = fb.call(ApiCall::UdpHeader, vec![]).expect("has result");
    let not_udp = fb.icmp(Pred::Eq, Ty::I32, udp_ok, Operand::imm(0));
    fb.cond_br(not_udp, other, is_dns);

    fb.switch_to(is_dns);
    // Key on the query flow (client/resolver pair + ports); the query
    // word itself is what gets cached.
    let key = flow_key(&mut fb);
    let qid = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(0)));
    let found = fb
        .call(ApiCall::FlowLookup(g_cache), vec![key])
        .expect("has result");
    let cached = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
    fb.cond_br(cached, hit, miss);

    // Cached: answer directly from the stored response word.
    fb.switch_to(hit);
    let slot = slot_index(&mut fb, found);
    let answer = fb.load(Ty::I32, MemRef::global_at(g_cache, slot, 8));
    fb.store(Ty::I32, answer, MemRef::pkt(PktField::Payload(4)));
    let h = fb.load(Ty::I32, MemRef::global(g_hits));
    let h1 = fb.bin(BinOp::Add, Ty::I32, h, Operand::imm(1));
    fb.store(Ty::I32, h1, MemRef::global(g_hits));
    send_ret(&mut fb, 0);

    // Miss: cache the query word and forward to the resolver.
    fb.switch_to(miss);
    let ins = fb
        .call(ApiCall::FlowUpsert(g_cache), vec![key])
        .expect("has result");
    let islot = slot_index(&mut fb, ins);
    fb.store(Ty::I32, qid, MemRef::global_at(g_cache, islot, 8));
    let ms = fb.load(Ty::I32, MemRef::global(g_miss));
    let ms1 = fb.bin(BinOp::Add, Ty::I32, ms, Operand::imm(1));
    fb.store(Ty::I32, ms1, MemRef::global(g_miss));
    send_ret(&mut fb, 1);

    fb.switch_to(other);
    send_ret(&mut fb, 1);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "dnscache",
            paper_loc: 195,
            stateful: true,
            insights: vec![InsightClass::Prediction, InsightClass::Placement],
            description: "DNS response cache with random eviction",
        },
    }
}

/// `flowlimiter`: per-flow packet budget enforced over a deliberately
/// small flow table — the idle timeout doubles as the refill interval,
/// and the table's churn counter is exported for observability.
pub fn flowlimiter() -> NfElement {
    let mut m = Module::new("flowlimiter");
    let g_lim = m.add_flow_table(
        "limiter",
        16,
        512,
        FlowSpec {
            idle_timeout: 16,
            hard_timeout: 0,
            evict: EvictPolicy::Lru,
        },
    );
    let g_drop = m.add_global("over_limit", StateKind::Scalar, 4, 1);
    let g_churn = m.add_global("table_churn", StateKind::Scalar, 4, 1);

    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let over = fb.block();
    let under = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let key = flow_key(&mut fb);
    let ins = fb
        .call(ApiCall::FlowUpsert(g_lim), vec![key])
        .expect("has result");
    let slot = slot_index(&mut fb, ins);
    let used = fb.load(Ty::I32, MemRef::global_at(g_lim, slot, 8));
    let used1 = fb.bin(BinOp::Add, Ty::I32, used, Operand::imm(1));
    fb.store(Ty::I32, used1, MemRef::global_at(g_lim, slot, 8));
    let churn = fb
        .call(ApiCall::FlowChurn(g_lim), vec![])
        .expect("has result");
    fb.store(Ty::I32, churn, MemRef::global(g_churn));
    let exceeded = fb.icmp(Pred::UGt, Ty::I32, used1, Operand::imm(32));
    fb.cond_br(exceeded, over, under);

    fb.switch_to(over);
    let d = fb.load(Ty::I32, MemRef::global(g_drop));
    let d1 = fb.bin(BinOp::Add, Ty::I32, d, Operand::imm(1));
    fb.store(Ty::I32, d1, MemRef::global(g_drop));
    drop_ret(&mut fb);

    fb.switch_to(under);
    send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: ElementMeta {
            name: "flowlimiter",
            paper_loc: 150,
            stateful: true,
            insights: vec![InsightClass::Prediction, InsightClass::ScaleOut],
            description: "per-flow packet budget over a churning flow table",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use nf_ir::GlobalId;
    use trafgen::{Trace, WorkloadSpec};

    #[test]
    fn natchurn_assigns_stable_ports_per_flow() {
        let e = natchurn();
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec::large_flows().with_flows(4);
        let trace = Trace::generate(&spec, 60, 1);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        // 4 live flows, no expiry in 60 ticks of steady traffic.
        let allocated = machine.state.load(GlobalId(1), 0, 0, 4);
        assert_eq!(allocated, 4, "one port per live flow");
    }

    #[test]
    fn fwstate_closes_idle_pinholes() {
        let e = fwstate();
        let mut machine = Machine::new(&e.module).unwrap();
        // All-UDP traffic never carries a SYN, so no pinhole ever opens.
        let spec = WorkloadSpec {
            tcp_ratio: 0.0,
            ..WorkloadSpec::large_flows().with_flows(3)
        };
        let trace = Trace::generate(&spec, 30, 2);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        assert_eq!(machine.state.load(GlobalId(1), 0, 0, 4), 30);
        // TCP traffic opens pinholes with its handshake SYNs and passes.
        let e2 = fwstate();
        let mut tcp_m = Machine::new(&e2.module).unwrap();
        let tcp = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows().with_flows(3)
        };
        for p in &Trace::generate(&tcp, 30, 2).pkts {
            tcp_m.run(p).unwrap();
        }
        assert_eq!(tcp_m.state.load(GlobalId(1), 0, 0, 4), 0);
    }

    #[test]
    fn conntrack_tears_down_on_fin() {
        let e = conntrack();
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::small_flows().with_flows(8)
        };
        let trace = Trace::generate(&spec, 200, 3);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        let closed = machine.state.load(GlobalId(1), 0, 0, 4);
        let counters = machine.state.flow_counters(GlobalId(0));
        assert!(counters.insertions > 0);
        assert_eq!(
            machine.state.len_of(GlobalId(0)) as u64 + closed + counters.churn(),
            counters.insertions,
            "every inserted entry is live, closed, or churned away"
        );
    }

    #[test]
    fn dnscache_hits_repeat_queries() {
        let e = dnscache();
        let mut machine = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 0.0, // All UDP.
            ..WorkloadSpec::large_flows().with_flows(2)
        };
        let trace = Trace::generate(&spec, 40, 4);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        let hits = machine.state.load(GlobalId(1), 0, 0, 4);
        let misses = machine.state.load(GlobalId(2), 0, 0, 4);
        assert_eq!(hits + misses, 40);
        assert!(hits > misses, "repeat queries should hit: {hits} vs {misses}");
    }

    #[test]
    fn flowlimiter_drops_over_budget_flows() {
        let e = flowlimiter();
        let mut machine = Machine::new(&e.module).unwrap();
        // One flow sending every tick never idles out and exceeds 32.
        let spec = WorkloadSpec::large_flows().with_flows(1);
        let trace = Trace::generate(&spec, 100, 5);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        let dropped = machine.state.load(GlobalId(1), 0, 0, 4);
        assert_eq!(dropped, 100 - 32);
    }
}
