//! The evaluated NF corpus, defined element by element as NIR modules.
//!
//! Every element of the paper's Table 2 is here, grouped by flavour:
//!
//! - [`stateless`]: header-manipulation elements with no cross-packet
//!   state (`anonipaddr`, `tcpack`, `udpipencap`, `forcetcp`, `tcpresp`);
//! - [`stateful`]: counter/state-machine elements (`tcpgen`, `aggcounter`,
//!   `timefilter`, plus `webtcp`, `heavy_hitter`, `firewall`, `dpi` used
//!   by the motivation and coalescing experiments);
//! - [`algo`]: elements containing accelerator-eligible algorithms
//!   (`cmsketch` and `wepdecap` with CRC-style loops, `iplookup` with a
//!   trie walk);
//! - [`apps`]: the larger applications (`iprewriter`, `ipclassifier`,
//!   `dnsproxy`, `mazunat`, `udpcount`, `webgen`);
//! - [`flows`]: heavy stateful elements over the flow-table primitive
//!   (`natchurn`, `fwstate`, `conntrack`, `dnscache`, `flowlimiter`).

pub mod algo;
pub mod apps;
pub mod extra;
pub mod flows;
pub mod helpers;
pub mod stateful;
pub mod stateless;

pub use algo::{cmsketch, iplookup, wepdecap};
pub use apps::{dnsproxy, ipclassifier, iprewriter, mazunat, udpcount, webgen};
pub use extra::{flowstats, gretunnel, loadbalancer, ratelimiter, syncookie, vlantag};
pub use flows::{conntrack, dnscache, flowlimiter, fwstate, natchurn};
pub use stateful::{
    aggcounter, dpi, dpi_with_depth, firewall, firewall_with_rules, heavy_hitter, tcpgen,
    timefilter, webtcp,
};
pub use stateless::{anonipaddr, forcetcp, tcpack, tcpresp, udpipencap};
