//! Stateless header-manipulation elements (top rows of Table 2).

use nf_ir::{ApiCall, BinOp, CastOp, FunctionBuilder, MemRef, Module, Operand, PktField, Pred, Ty};

use super::helpers::{csum_send_ret, drop_ret, send_ret};
use crate::element::{ElementMeta, InsightClass, NfElement};

fn stateless_meta(name: &'static str, paper_loc: u32, description: &'static str) -> ElementMeta {
    ElementMeta {
        name,
        paper_loc,
        stateful: false,
        insights: vec![InsightClass::Prediction, InsightClass::ScaleOut],
        description,
    }
}

/// `anonipaddr`: prefix-preserving IP address anonymization.
///
/// Mixes both addresses through xor/shift rounds, keeping the top octet —
/// pure per-packet computation, the paper's canonical stateless element.
pub fn anonipaddr() -> NfElement {
    let mut m = Module::new("anonipaddr");
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    // Three mixing rounds per address (keeps the /8 prefix).
    let mut anon = Vec::new();
    for addr in [src, dst] {
        let prefix = fb.bin(BinOp::And, Ty::I32, addr, Operand::imm(0xff00_0000));
        let low = fb.bin(BinOp::And, Ty::I32, addr, Operand::imm(0x00ff_ffff));
        let mut x = low;
        for round in 0..3 {
            let mul = fb.bin(BinOp::Mul, Ty::I32, x, Operand::imm(0x9e37 + round));
            let sh = fb.bin(BinOp::LShr, Ty::I32, mul, Operand::imm(11));
            x = fb.bin(BinOp::Xor, Ty::I32, mul, sh);
        }
        let low2 = fb.bin(BinOp::And, Ty::I32, x, Operand::imm(0x00ff_ffff));
        anon.push(fb.bin(BinOp::Or, Ty::I32, prefix, low2));
    }
    fb.store(Ty::I32, anon[0], MemRef::pkt(PktField::IpSrc));
    fb.store(Ty::I32, anon[1], MemRef::pkt(PktField::IpDst));
    csum_send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: stateless_meta("anonipaddr", 93, "prefix-preserving IP anonymizer"),
    }
}

/// `tcpack`: acknowledges TCP segments (swap endpoints, bump ack).
pub fn tcpack() -> NfElement {
    let mut m = Module::new("tcpack");
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let is_tcp = fb.block();
    let not_tcp = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let tcp_ok = fb.call(ApiCall::TcpHeader, vec![]).expect("has result");
    let c = fb.icmp(Pred::Ne, Ty::I32, tcp_ok, Operand::imm(0));
    fb.cond_br(c, is_tcp, not_tcp);

    fb.switch_to(is_tcp);
    let seq = fb.load(Ty::I32, MemRef::pkt(PktField::TcpSeq));
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let len32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, len);
    // payload = ip_len - 40 (header sizes); ack = seq + payload.
    let payload = fb.bin(BinOp::Sub, Ty::I32, len32, Operand::imm(40));
    let ack = fb.bin(BinOp::Add, Ty::I32, seq, payload);
    // Swap ports using two stack temporaries (Table 2: 2 memory slots).
    let s0 = fb.slot();
    let s1 = fb.slot();
    let sport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpSport));
    let dport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpDport));
    fb.store(Ty::I16, sport, MemRef::stack(s0));
    fb.store(Ty::I16, dport, MemRef::stack(s1));
    let t0 = fb.load(Ty::I16, MemRef::stack(s1));
    let t1 = fb.load(Ty::I16, MemRef::stack(s0));
    fb.store(Ty::I16, t0, MemRef::pkt(PktField::TcpSport));
    fb.store(Ty::I16, t1, MemRef::pkt(PktField::TcpDport));
    fb.store(Ty::I32, ack, MemRef::pkt(PktField::TcpAck));
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));
    let withack = fb.bin(BinOp::Or, Ty::I8, flags, Operand::imm(0x10));
    fb.store(Ty::I8, withack, MemRef::pkt(PktField::TcpFlags));
    csum_send_ret(&mut fb, 0);

    fb.switch_to(not_tcp);
    send_ret(&mut fb, 1);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: stateless_meta("tcpack", 68, "TCP acknowledgement generator"),
    }
}

/// `udpipencap`: encapsulates packets in a fresh IP/UDP header.
pub fn udpipencap() -> NfElement {
    let mut m = Module::new("udpipencap");
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::EthHeader, vec![]);
    let len = fb.call(ApiCall::PktLen, vec![]).expect("has result");
    let len16 = fb.cast(CastOp::Trunc, Ty::I32, Ty::I16, len);
    // New outer lengths.
    let ip_len = fb.bin(BinOp::Add, Ty::I16, len16, Operand::imm(28));
    let udp_len = fb.bin(BinOp::Add, Ty::I16, len16, Operand::imm(8));
    // Write the 9 header fields of the encapsulation (Table 2: 9 mem ops).
    fb.store(Ty::I8, Operand::imm(0x45), MemRef::pkt(PktField::IpVhl));
    fb.store(Ty::I8, Operand::imm(0), MemRef::pkt(PktField::IpTos));
    fb.store(Ty::I16, ip_len, MemRef::pkt(PktField::IpLen));
    fb.store(Ty::I8, Operand::imm(64), MemRef::pkt(PktField::IpTtl));
    fb.store(Ty::I8, Operand::imm(17), MemRef::pkt(PktField::IpProto));
    fb.store(
        Ty::I32,
        Operand::imm(0x0a00_0001),
        MemRef::pkt(PktField::IpSrc),
    );
    fb.store(
        Ty::I32,
        Operand::imm(0x0a00_0002),
        MemRef::pkt(PktField::IpDst),
    );
    fb.store(Ty::I16, Operand::imm(5555), MemRef::pkt(PktField::UdpSport));
    fb.store(Ty::I16, udp_len, MemRef::pkt(PktField::UdpLen));
    csum_send_ret(&mut fb, 0);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: stateless_meta("udpipencap", 87, "IP/UDP encapsulation"),
    }
}

/// `forcetcp`: coerces packets into well-formed TCP (fix offsets/flags).
pub fn forcetcp() -> NfElement {
    let mut m = Module::new("forcetcp");
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let fix = fb.block();
    let short = fb.block();
    let flag_fix = fb.block();
    let done = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let big_enough = fb.icmp(Pred::UGe, Ty::I16, len, Operand::imm(40));
    fb.cond_br(big_enough, fix, short);

    fb.switch_to(fix);
    fb.store(Ty::I8, Operand::imm(6), MemRef::pkt(PktField::IpProto));
    // Recompute the data offset from ip header length bits.
    let vhl = fb.load(Ty::I8, MemRef::pkt(PktField::IpVhl));
    let ihl = fb.bin(BinOp::And, Ty::I8, vhl, Operand::imm(0x0f));
    let ihl_bytes = fb.bin(BinOp::Shl, Ty::I8, ihl, Operand::imm(2));
    let s0 = fb.slot();
    fb.store(Ty::I8, ihl_bytes, MemRef::stack(s0));
    let off = fb.bin(BinOp::Shl, Ty::I8, Operand::imm(5), Operand::imm(4));
    fb.store(Ty::I8, off, MemRef::pkt(PktField::TcpOff));
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));
    // SYN and FIN together are invalid; strip FIN if both set.
    let synfin = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x03));
    let both = fb.icmp(Pred::Eq, Ty::I8, synfin, Operand::imm(0x03));
    fb.cond_br(both, flag_fix, done);

    fb.switch_to(flag_fix);
    let cleared = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0xfe));
    fb.store(Ty::I8, cleared, MemRef::pkt(PktField::TcpFlags));
    fb.br(done);

    fb.switch_to(done);
    // Clamp the window to a sane maximum.
    let win = fb.load(Ty::I16, MemRef::pkt(PktField::TcpWin));
    let too_big = fb.icmp(Pred::UGt, Ty::I16, win, Operand::imm(0x4000));
    let clamped = fb.select(Ty::I16, too_big, Operand::imm(0x4000), win);
    fb.store(Ty::I16, clamped, MemRef::pkt(PktField::TcpWin));
    csum_send_ret(&mut fb, 0);

    fb.switch_to(short);
    drop_ret(&mut fb);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: stateless_meta("forcetcp", 126, "coerce packets into valid TCP"),
    }
}

/// `tcpresp`: crafts a TCP response (SYN→SYN/ACK, else ACK echo).
pub fn tcpresp() -> NfElement {
    let mut m = Module::new("tcpresp");
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let is_tcp = fb.block();
    let syn_path = fb.block();
    let ack_path = fb.block();
    let respond = fb.block();
    let not_tcp = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let tcp_ok = fb.call(ApiCall::TcpHeader, vec![]).expect("has result");
    let c = fb.icmp(Pred::Ne, Ty::I32, tcp_ok, Operand::imm(0));
    fb.cond_br(c, is_tcp, not_tcp);

    fb.switch_to(is_tcp);
    // Swap addresses and ports (response direction).
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
    fb.store(Ty::I32, dst, MemRef::pkt(PktField::IpSrc));
    fb.store(Ty::I32, src, MemRef::pkt(PktField::IpDst));
    let sport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpSport));
    let dport = fb.load(Ty::I16, MemRef::pkt(PktField::TcpDport));
    fb.store(Ty::I16, dport, MemRef::pkt(PktField::TcpSport));
    fb.store(Ty::I16, sport, MemRef::pkt(PktField::TcpDport));
    let flags = fb.load(Ty::I8, MemRef::pkt(PktField::TcpFlags));
    let syn = fb.bin(BinOp::And, Ty::I8, flags, Operand::imm(0x02));
    let is_syn = fb.icmp(Pred::Ne, Ty::I8, syn, Operand::imm(0));
    fb.cond_br(is_syn, syn_path, ack_path);

    fb.switch_to(syn_path);
    let seq = fb.load(Ty::I32, MemRef::pkt(PktField::TcpSeq));
    let ack = fb.bin(BinOp::Add, Ty::I32, seq, Operand::imm(1));
    fb.store(Ty::I32, ack, MemRef::pkt(PktField::TcpAck));
    fb.store(Ty::I8, Operand::imm(0x12), MemRef::pkt(PktField::TcpFlags));
    // Pick an initial sequence number from the addresses.
    let iss = fb.bin(BinOp::Xor, Ty::I32, src, Operand::imm(0x1357_9bdf));
    fb.store(Ty::I32, iss, MemRef::pkt(PktField::TcpSeq));
    fb.br(respond);

    fb.switch_to(ack_path);
    let seq2 = fb.load(Ty::I32, MemRef::pkt(PktField::TcpSeq));
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let len32 = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, len);
    let pay = fb.bin(BinOp::Sub, Ty::I32, len32, Operand::imm(40));
    let ack2 = fb.bin(BinOp::Add, Ty::I32, seq2, pay);
    fb.store(Ty::I32, ack2, MemRef::pkt(PktField::TcpAck));
    fb.store(Ty::I8, Operand::imm(0x10), MemRef::pkt(PktField::TcpFlags));
    fb.br(respond);

    fb.switch_to(respond);
    csum_send_ret(&mut fb, 0);

    fb.switch_to(not_tcp);
    drop_ret(&mut fb);
    m.funcs.push(fb.finish());
    NfElement {
        module: m,
        meta: stateless_meta("tcpresp", 124, "TCP responder (SYN/ACK, ACK echo)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use trafgen::{Trace, WorkloadSpec};

    #[test]
    fn anonipaddr_rewrites_addresses_preserving_prefix() {
        let e = anonipaddr();
        let mut m = Machine::new(&e.module).unwrap();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 1, 1);
        let mut view = crate::PacketView::new(&trace.pkts[0]);
        let orig_src = view.get(PktField::IpSrc);
        m.run_view(&mut view).unwrap();
        let new_src = view.get(PktField::IpSrc);
        assert_ne!(orig_src, new_src, "address unchanged");
        assert_eq!(orig_src >> 24, new_src >> 24, "prefix not preserved");
    }

    #[test]
    fn tcpack_sets_ack_flag_and_swaps_ports() {
        let e = tcpack();
        let mut m = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        let trace = Trace::generate(&spec, 1, 2);
        let mut view = crate::PacketView::new(&trace.pkts[0]);
        let sport = view.get(PktField::TcpSport);
        let dport = view.get(PktField::TcpDport);
        m.run_view(&mut view).unwrap();
        assert_eq!(view.get(PktField::TcpSport), dport);
        assert_eq!(view.get(PktField::TcpDport), sport);
        assert_ne!(view.get(PktField::TcpFlags) & 0x10, 0);
    }

    #[test]
    fn forcetcp_drops_short_packets() {
        let e = forcetcp();
        let mut m = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec::large_flows().with_pkt_size(64); // ip_len 50 >= 40 → kept
        let t = Trace::generate(&spec, 1, 3);
        let mut view = crate::PacketView::new(&t.pkts[0]);
        m.run_view(&mut view).unwrap();
        assert_eq!(view.verdict, Some(crate::packet::Verdict::Sent(0)));
        // Forge a tiny packet by shrinking ip_len below 40.
        let mut view = crate::PacketView::new(&t.pkts[0]);
        view.set(PktField::IpLen, 20);
        m.run_view(&mut view).unwrap();
        assert_eq!(view.verdict, Some(crate::packet::Verdict::Dropped));
    }

    #[test]
    fn tcpresp_turns_syn_into_synack() {
        let e = tcpresp();
        let mut m = Machine::new(&e.module).unwrap();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            syn_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        let t = Trace::generate(&spec, 1, 4);
        let mut view = crate::PacketView::new(&t.pkts[0]);
        m.run_view(&mut view).unwrap();
        assert_eq!(view.get(PktField::TcpFlags), 0x12); // SYN|ACK
    }

    #[test]
    fn udpipencap_sets_outer_lengths() {
        let e = udpipencap();
        let mut m = Machine::new(&e.module).unwrap();
        let t = Trace::generate(&WorkloadSpec::large_flows().with_pkt_size(100), 1, 5);
        let mut view = crate::PacketView::new(&t.pkts[0]);
        m.run_view(&mut view).unwrap();
        assert_eq!(view.get(PktField::IpLen), 128);
        assert_eq!(view.get(PktField::UdpLen), 108);
        assert_eq!(view.get(PktField::IpProto), 17);
    }
}
