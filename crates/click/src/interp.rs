//! The NIR interpreter: executes an NF module against packets.
//!
//! One interpreter serves every element of the corpus, so the execution
//! traces used for workload profiling (Sections 4.3–4.4 of the paper) are
//! derived from exactly the same IR that Clara's static analyses see.

use nf_ir::{verify, ApiCall, BlockId, Function, Inst, MemRef, Module, Operand, Term, Ty, ValueId};
use trafgen::Packet;

use crate::exec::{ApiEvent, Event, ExecTrace, TraceError};
use crate::packet::{PacketView, Verdict};
use crate::state::StateStore;

/// Default per-packet interpreted-instruction budget.
pub const DEFAULT_STEP_LIMIT: u64 = 200_000;

/// Seed of every machine's deterministic RNG stream (shared with the
/// reference executor so `random()` results line up across layers).
pub(crate) const RNG_SEED: u64 = 0x1234_5678_9abc_def0;

/// An interpreter instance holding an NF's persistent state.
#[derive(Debug, Clone)]
pub struct Machine {
    module: Module,
    /// Persistent stateful storage (cross-packet).
    pub state: StateStore,
    step_limit: u64,
    timestamp: u64,
    rng_state: u64,
}

pub(crate) fn mask(v: u64, ty: Ty) -> u64 {
    match ty {
        Ty::I1 => v & 1,
        Ty::I8 => v & 0xff,
        Ty::I16 => v & 0xffff,
        Ty::I32 => v & 0xffff_ffff,
        Ty::I64 => v,
    }
}

impl Machine {
    /// Builds an interpreter for a module (verifying it first).
    ///
    /// The packet handler is the module's first function.
    pub fn new(module: &Module) -> Result<Machine, verify::VerifyError> {
        verify::verify_module(module)?;
        Ok(Machine {
            state: StateStore::new(module),
            module: module.clone(),
            step_limit: DEFAULT_STEP_LIMIT,
            timestamp: 0,
            rng_state: RNG_SEED,
        })
    }

    /// Overrides the per-packet step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Machine {
        self.step_limit = limit;
        self
    }

    /// Resets all persistent state (and the element clock).
    pub fn reset(&mut self) {
        self.state.reset();
        self.timestamp = 0;
        self.rng_state = RNG_SEED;
    }

    /// The module being interpreted.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Processes one packet, returning the execution trace.
    pub fn run(&mut self, pkt: &Packet) -> Result<ExecTrace, TraceError> {
        let mut view = PacketView::new(pkt);
        self.run_view(&mut view).map(|(trace, _)| trace)
    }

    /// Processes one packet view, returning the trace and the verdict.
    pub fn run_view(
        &mut self,
        view: &mut PacketView,
    ) -> Result<(ExecTrace, Option<Verdict>), TraceError> {
        self.timestamp += 1;
        // Move the state out so the module can stay immutably borrowed
        // while API calls mutate storage.
        let mut state = std::mem::take(&mut self.state);
        let mut timestamp = self.timestamp;
        let mut rng_state = self.rng_state;
        let func: &Function = self
            .module
            .funcs
            .first()
            .expect("verified module has a handler");
        let result = exec(
            func,
            &mut state,
            view,
            self.step_limit,
            &mut timestamp,
            &mut rng_state,
        );
        self.state = state;
        self.timestamp = timestamp;
        self.rng_state = rng_state;
        result.map(|trace| (trace, view.verdict))
    }
}

/// Executes `func` against one packet view.
#[allow(clippy::too_many_lines)]
fn exec(
    func: &Function,
    state: &mut StateStore,
    view: &mut PacketView,
    step_limit: u64,
    timestamp: &mut u64,
    rng_state: &mut u64,
) -> Result<ExecTrace, TraceError> {
    {
        let mut env: Vec<Option<u64>> = vec![None; func.next_value as usize];
        for (p, _) in &func.params {
            env[p.index()] = Some(0);
        }
        let mut slots: Vec<u64> = vec![0; func.next_slot as usize];
        let mut trace = ExecTrace::default();

        let mut cur = BlockId(0);
        let mut prev: Option<BlockId> = None;

        'blocks: loop {
            let block = func
                .blocks
                .get(cur.index())
                .ok_or(TraceError::BadBlock { block: cur.0 })?;
            trace.events.push(Event::Block(cur));

            // Phase 1: evaluate phis atomically against the predecessor.
            let mut phi_updates: Vec<(ValueId, u64)> = Vec::new();
            for inst in &block.insts {
                if let Inst::Phi { dst, ty, incomings } = inst {
                    let from = prev.unwrap_or(BlockId(0));
                    let val = incomings
                        .iter()
                        .find(|(bb, _)| *bb == from)
                        .map(|(_, op)| read_op(&env, *op))
                        .transpose()?
                        .unwrap_or(0);
                    phi_updates.push((*dst, mask(val, *ty)));
                }
            }
            for (dst, v) in phi_updates {
                env[dst.index()] = Some(v);
            }

            for inst in &block.insts {
                trace.steps += 1;
                if trace.steps > step_limit {
                    return Err(TraceError::StepLimit { limit: step_limit });
                }
                match inst {
                    Inst::Phi { .. } => {} // Handled above.
                    // ALU semantics (masking, wraparound, the type-width
                    // shift rule) are defined once in `nf_ir::opt`;
                    // constant folding and the reference executor use the
                    // same functions, so the difftest layers cannot drift.
                    Inst::Bin {
                        dst,
                        op,
                        ty,
                        lhs,
                        rhs,
                    } => {
                        let a = read_op(&env, *lhs)?;
                        let b = read_op(&env, *rhs)?;
                        env[dst.index()] = Some(nf_ir::opt::eval_bin(*op, *ty, a, b));
                    }
                    Inst::Icmp {
                        dst,
                        pred,
                        ty,
                        lhs,
                        rhs,
                    } => {
                        let a = read_op(&env, *lhs)?;
                        let b = read_op(&env, *rhs)?;
                        env[dst.index()] =
                            Some(u64::from(nf_ir::opt::eval_icmp(*pred, *ty, a, b)));
                    }
                    Inst::Cast {
                        dst,
                        op,
                        from,
                        to,
                        src,
                    } => {
                        let v = read_op(&env, *src)?;
                        env[dst.index()] = Some(nf_ir::opt::eval_cast(*op, *from, *to, v));
                    }
                    Inst::Select {
                        dst,
                        ty,
                        cond,
                        on_true,
                        on_false,
                    } => {
                        let c = read_op(&env, *cond)? & 1;
                        let v = if c != 0 {
                            read_op(&env, *on_true)?
                        } else {
                            read_op(&env, *on_false)?
                        };
                        env[dst.index()] = Some(mask(v, *ty));
                    }
                    Inst::Load { dst, ty, mem } => {
                        let v = do_load(state, &env, &slots, view, mem, *ty, &mut trace)?;
                        env[dst.index()] = Some(mask(v, *ty));
                    }
                    Inst::Store { ty, val, mem } => {
                        let v = mask(read_op(&env, *val)?, *ty);
                        do_store(state, &env, &mut slots, view, mem, *ty, v, &mut trace)?;
                    }
                    Inst::Call { dst, api, args } => {
                        let vals: Vec<u64> = args
                            .iter()
                            .map(|a| read_op(&env, *a))
                            .collect::<Result<_, _>>()?;
                        let r = do_call(state, api, &vals, view, &mut trace, timestamp, rng_state)?;
                        if let Some(d) = dst {
                            env[d.index()] = Some(r);
                        }
                    }
                }
            }

            trace.steps += 1;
            if trace.steps > step_limit {
                return Err(TraceError::StepLimit { limit: step_limit });
            }
            match &block.term {
                Term::Br { target } => {
                    prev = Some(cur);
                    cur = *target;
                }
                Term::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = read_op(&env, *cond)? & 1;
                    prev = Some(cur);
                    cur = if c != 0 { *then_bb } else { *else_bb };
                }
                Term::Ret { val } => {
                    trace.ret = val.map(|v| read_op(&env, v)).transpose()?;
                    break 'blocks;
                }
            }
        }
        Ok(trace)
    }
}

fn do_load(
    state: &StateStore,
    env: &[Option<u64>],
    slots: &[u64],
    view: &PacketView,
    mem: &MemRef,
    ty: Ty,
    trace: &mut ExecTrace,
) -> Result<u64, TraceError> {
    match mem {
        MemRef::Stack { slot } => Ok(slots.get(*slot as usize).copied().unwrap_or(0)),
        MemRef::Global {
            global,
            index,
            offset,
        } => {
            if !state.has(*global) {
                return Err(TraceError::BadGlobal { global: global.0 });
            }
            let idx = match index {
                Some(op) => read_op(env, *op)?,
                None => 0,
            };
            trace.events.push(Event::State {
                global: *global,
                index: idx,
                offset: *offset,
                bytes: ty.bytes(),
                write: false,
            });
            Ok(state.load(*global, idx, *offset, ty.bytes()))
        }
        MemRef::Pkt { field } => {
            trace.events.push(Event::Pkt {
                bytes: ty.bytes(),
                write: false,
            });
            Ok(mask(view.get(*field), ty))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn do_store(
    state: &mut StateStore,
    env: &[Option<u64>],
    slots: &mut [u64],
    view: &mut PacketView,
    mem: &MemRef,
    ty: Ty,
    value: u64,
    trace: &mut ExecTrace,
) -> Result<(), TraceError> {
    match mem {
        MemRef::Stack { slot } => {
            if let Some(s) = slots.get_mut(*slot as usize) {
                *s = value;
            }
            Ok(())
        }
        MemRef::Global {
            global,
            index,
            offset,
        } => {
            if !state.has(*global) {
                return Err(TraceError::BadGlobal { global: global.0 });
            }
            let idx = match index {
                Some(op) => read_op(env, *op)?,
                None => 0,
            };
            trace.events.push(Event::State {
                global: *global,
                index: idx,
                offset: *offset,
                bytes: ty.bytes(),
                write: true,
            });
            state.store(*global, idx, *offset, ty.bytes(), value);
            Ok(())
        }
        MemRef::Pkt { field } => {
            trace.events.push(Event::Pkt {
                bytes: ty.bytes(),
                write: true,
            });
            view.set(*field, value);
            Ok(())
        }
    }
}

/// The framework-API model: the single definition of what each call does
/// to state, packet, clock, and RNG, shared by the interpreter and the
/// reference executor (`clara difftest` layers A and B/C). Argument
/// counts are enforced exactly — a malformed lowering fails loudly with
/// a typed error instead of silently defaulting or dropping arguments.
#[allow(clippy::too_many_arguments)]
pub(crate) fn do_call(
    state: &mut StateStore,
    api: &ApiCall,
    args: &[u64],
    view: &mut PacketView,
    trace: &mut ExecTrace,
    timestamp: &mut u64,
    rng_state: &mut u64,
) -> Result<u64, TraceError> {
    if args.len() != api.arity() {
        return Err(TraceError::BadApiArity {
            api: api.name(),
            got: args.len(),
            want: api.arity(),
        });
    }
    let arg = |i: usize| -> Result<u64, TraceError> {
        args.get(i).copied().ok_or(TraceError::BadApiArity {
            api: api.name(),
            got: args.len(),
            want: api.arity(),
        })
    };
    let mut emit = |call: &ApiCall, probes: u32, hit: bool, bytes: u32| {
        trace.events.push(Event::Api(ApiEvent {
            call: call.clone(),
            probes,
            hit,
            bytes,
        }));
    };
    let proto = view.get(nf_ir::PktField::IpProto);
    Ok(match api {
        ApiCall::EthHeader => {
            emit(api, 1, true, 14);
            1
        }
        ApiCall::IpHeader => {
            emit(api, 1, true, 20);
            1
        }
        ApiCall::TcpHeader => {
            let ok = proto == 6;
            emit(api, 1, ok, 20);
            u64::from(ok)
        }
        ApiCall::UdpHeader => {
            let ok = proto == 17;
            emit(api, 1, ok, 8);
            u64::from(ok)
        }
        ApiCall::PktLen => {
            emit(api, 1, true, 0);
            u64::from(view.len())
        }
        ApiCall::HashMapFind(g) => {
            let r = state.map_find(*g, arg(0)?);
            emit(api, r.probes, r.hit, 8 * r.probes);
            r.slot.map_or(0, |s| s + 1)
        }
        ApiCall::HashMapInsert(g) => {
            let r = state.map_insert(*g, arg(0)?);
            emit(api, r.probes, r.hit, 8 * r.probes);
            r.slot.map_or(0, |s| s + 1)
        }
        ApiCall::HashMapErase(g) => {
            let r = state.map_erase(*g, arg(0)?);
            emit(api, r.probes, r.hit, 8 * r.probes);
            u64::from(r.hit)
        }
        ApiCall::VectorGet(g) => {
            let r = state.vec_get(*g, arg(0)?);
            emit(api, r.probes, r.hit, 4);
            r.slot.map_or(0, |s| s + 1)
        }
        ApiCall::VectorPush(g) => {
            let r = state.vec_push(*g);
            emit(api, r.probes, r.hit, 4);
            r.slot.map_or(0, |s| s + 1)
        }
        ApiCall::VectorDelete(g) => {
            let r = state.vec_delete(*g, arg(0)?);
            emit(api, r.probes, r.hit, 4);
            u64::from(r.hit)
        }
        ApiCall::FlowLookup(g) => {
            let r = state.flow_lookup(*g, arg(0)?, *timestamp);
            emit(api, r.probes, r.hit, 8 * r.probes);
            r.slot.map_or(0, |s| s + 1)
        }
        ApiCall::FlowUpsert(g) => {
            let r = state.flow_upsert(*g, arg(0)?, *timestamp);
            emit(api, r.probes, r.hit, 8 * r.probes);
            r.slot.map_or(0, |s| s + 1)
        }
        ApiCall::FlowRemove(g) => {
            let r = state.flow_remove(*g, arg(0)?, *timestamp);
            emit(api, r.probes, r.hit, 8 * r.probes);
            u64::from(r.hit)
        }
        ApiCall::FlowChurn(g) => {
            emit(api, 1, true, 8);
            state.flow_counters(*g).churn()
        }
        ApiCall::PktSend => {
            let raw = arg(0)?;
            let port = u16::try_from(raw).map_err(|_| TraceError::ApiArgOutOfRange {
                api: api.name(),
                value: raw,
                max: u64::from(u16::MAX),
            })?;
            view.verdict = Some(Verdict::Sent(port));
            emit(api, 1, true, 0);
            0
        }
        ApiCall::PktDrop => {
            view.verdict = Some(Verdict::Dropped);
            emit(api, 1, true, 0);
            0
        }
        ApiCall::ChecksumUpdate => {
            // Incremental header checksum over the 20-byte IP header.
            emit(api, 1, true, 20);
            let sum = view.get(nf_ir::PktField::IpSrc)
                ^ view.get(nf_ir::PktField::IpDst)
                ^ view.get(nf_ir::PktField::IpLen);
            let c = mask(sum ^ (sum >> 16), Ty::I16);
            view.set(nf_ir::PktField::IpCsum, c);
            c
        }
        ApiCall::ChecksumFull => {
            let n = u32::from(view.payload_len());
            emit(api, 1, true, n);
            let mut sum = 0u64;
            // Sample the payload rather than summing every byte; the
            // cost model charges by `bytes`, the value just needs to
            // depend on content.
            for off in (0..view.payload_len()).step_by(16) {
                sum = sum.wrapping_add(view.get(nf_ir::PktField::Payload(off)));
            }
            mask(sum ^ (sum >> 16), Ty::I16)
        }
        ApiCall::Timestamp => {
            emit(api, 1, true, 0);
            *timestamp
        }
        ApiCall::Random => {
            emit(api, 1, true, 0);
            let mut x = *rng_state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *rng_state = x;
            mask(x, Ty::I32)
        }
    })
}

fn read_op(env: &[Option<u64>], op: Operand) -> Result<u64, TraceError> {
    match op {
        Operand::Const(c) => Ok(c as u64),
        Operand::Value(v) => env
            .get(v.index())
            .copied()
            .flatten()
            .ok_or(TraceError::UndefinedValue { value: v.0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_ir::{BinOp, FunctionBuilder, Operand, PktField, StateKind};
    use trafgen::{Trace, WorkloadSpec};

    /// A counter NF: loads a scalar, adds 1, stores it back, sends.
    fn counter_module() -> Module {
        let mut m = Module::new("counter");
        let g = m.add_global("ctr", StateKind::Scalar, 4, 1);
        let mut fb = FunctionBuilder::new("process");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let c = fb.load(Ty::I32, MemRef::global(g));
        let c2 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
        fb.store(Ty::I32, c2, MemRef::global(g));
        let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
        fb.ret(Some(c2));
        m.funcs.push(fb.finish());
        m
    }

    #[test]
    fn counter_counts_packets() {
        let m = counter_module();
        let mut machine = Machine::new(&m).unwrap();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 5, 1);
        let mut last = 0;
        for p in &trace.pkts {
            let t = machine.run(p).unwrap();
            last = t.ret.unwrap();
        }
        assert_eq!(last, 5);
    }

    #[test]
    fn trace_records_blocks_state_and_api() {
        let m = counter_module();
        let mut machine = Machine::new(&m).unwrap();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 1, 1);
        let t = machine.run(&trace.pkts[0]).unwrap();
        assert_eq!(t.block_visits(), vec![BlockId(0)]);
        assert_eq!(t.state_access_count(None), 2); // load + store
        assert_eq!(t.api_events().count(), 1); // pkt_send
    }

    /// A flow-table NF exercising hashmap find/insert and branching.
    fn flow_module() -> Module {
        let mut m = Module::new("flows");
        let g = m.add_global("flows", StateKind::HashMap, 16, 256);
        let mut fb = FunctionBuilder::new("process");
        let entry = fb.entry_block();
        let hit = fb.block();
        let miss = fb.block();
        let done = fb.block();
        fb.switch_to(entry);
        let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
        let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
        let key = fb.bin(BinOp::Xor, Ty::I32, src, dst);
        let found = fb.call(ApiCall::HashMapFind(g), vec![key]).unwrap();
        let is_hit = fb.icmp(Pred::Ne, Ty::I32, found, Operand::imm(0));
        fb.cond_br(is_hit, hit, miss);
        fb.switch_to(hit);
        let slot = fb.bin(BinOp::Sub, Ty::I32, found, Operand::imm(1));
        let cnt = fb.load(Ty::I32, MemRef::global_at(g, slot, 8));
        let cnt2 = fb.bin(BinOp::Add, Ty::I32, cnt, Operand::imm(1));
        fb.store(Ty::I32, cnt2, MemRef::global_at(g, slot, 8));
        fb.br(done);
        fb.switch_to(miss);
        let ins = fb.call(ApiCall::HashMapInsert(g), vec![key]).unwrap();
        let islot = fb.bin(BinOp::Sub, Ty::I32, ins, Operand::imm(1));
        fb.store(Ty::I32, Operand::imm(1), MemRef::global_at(g, islot, 8));
        fb.br(done);
        fb.switch_to(done);
        let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
        fb.ret(None);
        m.funcs.push(fb.finish());
        m
    }

    #[test]
    fn flow_table_hits_after_first_packet() {
        let m = flow_module();
        let mut machine = Machine::new(&m).unwrap();
        let spec = WorkloadSpec::large_flows().with_flows(4);
        let trace = Trace::generate(&spec, 40, 3);
        let mut miss_blocks = 0;
        let mut hit_blocks = 0;
        for p in &trace.pkts {
            let t = machine.run(p).unwrap();
            let visits = t.block_visits();
            if visits.contains(&BlockId(1)) {
                hit_blocks += 1;
            }
            if visits.contains(&BlockId(2)) {
                miss_blocks += 1;
            }
        }
        // Exactly one miss per distinct flow; everything else hits.
        assert_eq!(miss_blocks, 4);
        assert_eq!(hit_blocks, 36);
    }

    #[test]
    fn runaway_loop_hits_step_limit() {
        let mut m = Module::new("spin");
        let mut fb = FunctionBuilder::new("process");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        fb.br(bb);
        m.funcs.push(fb.finish());
        let mut machine = Machine::new(&m).unwrap().with_step_limit(100);
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 1, 1);
        assert!(matches!(
            machine.run(&trace.pkts[0]),
            Err(TraceError::StepLimit { .. })
        ));
    }

    #[test]
    fn phi_selects_predecessor_value() {
        let mut m = Module::new("phi");
        let mut fb = FunctionBuilder::new("process");
        let entry = fb.entry_block();
        let a = fb.block();
        let b = fb.block();
        let join = fb.block();
        fb.switch_to(entry);
        let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
        let big = fb.icmp(Pred::UGt, Ty::I16, len, Operand::imm(200));
        fb.cond_br(big, a, b);
        fb.switch_to(a);
        fb.br(join);
        fb.switch_to(b);
        fb.br(join);
        fb.switch_to(join);
        let r = fb.phi(
            Ty::I32,
            vec![(a, Operand::imm(111)), (b, Operand::imm(222))],
        );
        fb.ret(Some(r));
        m.funcs.push(fb.finish());

        let mut machine = Machine::new(&m).unwrap();
        let spec = WorkloadSpec::large_flows().with_pkt_size(256); // ip_len=242 > 200
        let t1 = Trace::generate(&spec, 1, 1);
        assert_eq!(machine.run(&t1.pkts[0]).unwrap().ret, Some(111));
        let spec = spec.with_pkt_size(128); // ip_len=114 < 200
        let t2 = Trace::generate(&spec, 1, 1);
        assert_eq!(machine.run(&t2.pkts[0]).unwrap().ret, Some(222));
    }

    #[test]
    fn reset_clears_cross_packet_state() {
        let m = counter_module();
        let mut machine = Machine::new(&m).unwrap();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 3, 1);
        for p in &trace.pkts {
            machine.run(p).unwrap();
        }
        machine.reset();
        let t = machine.run(&trace.pkts[0]).unwrap();
        assert_eq!(t.ret, Some(1));
    }

    use nf_ir::Pred;
}
