//! Property tests: the interpreter is deterministic and reset is total.

use click_model::Machine;
use proptest::prelude::*;
use trafgen::{Trace, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Re-running the same packets after `reset` reproduces the exact
    /// event traces — state, clock and RNG are all restored.
    #[test]
    fn reset_restores_full_determinism(idx in 0usize..17, seed in 0u64..500) {
        let e = &click_model::corpus()[idx];
        let trace = Trace::generate(&WorkloadSpec::imix(), 25, seed);
        let mut m = Machine::new(&e.module).expect("verifies");
        let first: Vec<_> = trace
            .pkts
            .iter()
            .map(|p| m.run(p).expect("runs"))
            .collect();
        m.reset();
        let second: Vec<_> = trace
            .pkts
            .iter()
            .map(|p| m.run(p).expect("runs"))
            .collect();
        prop_assert_eq!(first, second);
    }

    /// Two independent machines over the same module and packets agree.
    #[test]
    fn independent_machines_agree(idx in 0usize..17, seed in 0u64..500) {
        let e = &click_model::corpus()[idx];
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 15, seed);
        let mut a = Machine::new(&e.module).expect("verifies");
        let mut b = Machine::new(&e.module).expect("verifies");
        for p in &trace.pkts {
            prop_assert_eq!(a.run(p).expect("runs"), b.run(p).expect("runs"));
        }
    }
}
