//! Shared helpers for the experiment binaries that regenerate every table
//! and figure of the Clara paper (see DESIGN.md's per-experiment index).
//!
//! Each binary prints the same rows/series the paper reports. Run with
//! `cargo run --release -p clara-bench --bin <experiment>`; set
//! `CLARA_QUICK=1` to downscale training budgets for smoke runs.

use clara_obs as obs;
use click_model::NfElement;
use nf_ir::BlockId;
use nic_sim::{Accel, NicConfig, PortConfig};
use trafgen::{Trace, WorkloadSpec};

/// RAII run-report sink for a bench binary: armed by `--report [path]`
/// on the command line or the `CLARA_REPORT` environment variable, and
/// written (as `BENCH_<name>.json` unless an explicit path is given)
/// when the binary finishes.
///
/// With neither source set, telemetry stays disabled and the guard does
/// nothing.
pub struct ReportScope {
    name: &'static str,
    sink: Option<String>,
}

impl Drop for ReportScope {
    fn drop(&mut self) {
        let Some(raw) = self.sink.take() else { return };
        let path = obs::resolve_sink(&raw, &format!("BENCH_{}.json", self.name));
        match obs::RunReport::capture().write(&path) {
            Ok(()) => println!("run report written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write run report to {}: {e}", path.display()),
        }
    }
}

/// Arms the experiment's run-report sink; keep the returned guard alive
/// for the whole `main`.
pub fn report_scope(name: &'static str) -> ReportScope {
    let mut args = std::env::args().skip(1);
    let mut sink = None;
    while let Some(a) = args.next() {
        if a == "--report" {
            // A following non-flag argument is the sink path; bare
            // `--report` means "default file in the working directory".
            sink = Some(match args.next() {
                Some(p) if !p.starts_with("--") => p,
                _ => "1".to_string(),
            });
        } else if let Some(p) = a.strip_prefix("--report=") {
            sink = Some(p.to_string());
        }
    }
    let sink = sink.or_else(obs::sink_from_env);
    if sink.is_some() {
        obs::enable();
    }
    ReportScope { name, sink }
}

/// True when `CLARA_QUICK=1` is set (smoke-test scaling).
pub fn quick() -> bool {
    std::env::var("CLARA_QUICK").is_ok_and(|v| v == "1")
}

/// Scales a budget down in quick mode.
pub fn scaled(full: usize) -> usize {
    if quick() {
        (full / 5).max(4)
    } else {
        full
    }
}

/// Looks up a corpus element by name.
///
/// # Panics
///
/// Panics if no element has that name.
pub fn element(name: &str) -> NfElement {
    click_model::extended_corpus()
        .into_iter()
        .find(|e| e.name() == name)
        .unwrap_or_else(|| panic!("no element named {name}"))
}

/// The loop-region blocks of an element's handler (accelerator regions).
pub fn loop_region(e: &NfElement) -> Vec<BlockId> {
    clara_core::prepare_module(&e.module).loop_block_ids()
}

/// A port that replaces the element's loop region with the CRC engine.
pub fn crc_port(e: &NfElement) -> PortConfig {
    PortConfig::naive().accelerate(loop_region(e), Accel::Crc)
}

/// A port that serves the element's loop region from the LPM flow cache.
pub fn lpm_port(e: &NfElement) -> PortConfig {
    PortConfig::naive().accelerate(loop_region(e), Accel::Lpm)
}

/// Standard trace length for profiling runs.
pub fn trace_len() -> usize {
    if quick() {
        500
    } else {
        4000
    }
}

/// Generates the standard large-flow trace.
pub fn large_flow_trace(seed: u64) -> Trace {
    Trace::generate(&WorkloadSpec::large_flows(), trace_len(), seed)
}

/// Generates the standard small-flow trace.
pub fn small_flow_trace(seed: u64) -> Trace {
    Trace::generate(
        &WorkloadSpec::small_flows().with_flows(16384),
        trace_len().max(8000),
        seed,
    )
}

/// The default NIC.
pub fn nic() -> NicConfig {
    NicConfig::default()
}

/// Prints a header banner for an experiment.
pub fn banner(id: &str, title: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Prints an aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_lookup_works() {
        assert_eq!(element("cmsketch").name(), "cmsketch");
    }

    #[test]
    #[should_panic(expected = "no element named")]
    fn unknown_element_panics() {
        let _ = element("nonexistent");
    }

    #[test]
    fn loop_region_nonempty_for_algo_elements() {
        assert!(!loop_region(&element("cmsketch")).is_empty());
        assert!(!loop_region(&element("iplookup")).is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }
}
