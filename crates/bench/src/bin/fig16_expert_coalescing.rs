//! Figure 16: Clara's K-means coalescing vs 'expert' exhaustive layout
//! sweep over the hottest variables.

use clara_bench::{banner, f2, nic, table, trace_len};
use clara_core::coalesce::{eval_plan, exhaustive_coalescing, suggest_coalescing};
use nic_sim::{solve_perf, NicConfig, PerfPoint, PortConfig};
use trafgen::{Trace, WorkloadSpec};

fn cores_to_saturate(pts: &[PerfPoint]) -> u32 {
    let peak = pts.last().expect("non-empty").throughput_mpps;
    pts.iter()
        .find(|p| p.throughput_mpps >= 0.98 * peak)
        .map_or(60, |p| p.cores)
}

fn main() {
    let _report = clara_bench::report_scope("fig16_expert_coalescing");
    banner(
        "Figure 16",
        "memory coalescing: Clara K-means vs expert exhaustive sweep",
    );
    let cfg = NicConfig {
        emem_cache_bytes: 32 * 1024,
        ..nic()
    };
    let spec = WorkloadSpec {
        tcp_ratio: 1.0,
        ..WorkloadSpec::large_flows()
    };
    let trace = Trace::generate(&spec, trace_len(), 91);

    let mut rows = Vec::new();
    for name in ["aggcounter", "timefilter", "webtcp", "tcpgen"] {
        let e = clara_bench::element(name);
        let clara_plan = suggest_coalescing(&e.module, &trace, 91);
        let expert_plan = exhaustive_coalescing(&e.module, &trace, &cfg, 8);

        let eval = |plan: &nic_sim::CoalescePlan| -> (u32, f64, f64) {
            let port = PortConfig::naive().with_coalesce(plan.clone());
            let wp = nic_sim::profile_workload(&e.module, &trace, &port, &cfg, |_| {});
            let pts: Vec<PerfPoint> = (1..=60).map(|c| solve_perf(&wp, &cfg, &port, c)).collect();
            let sat = cores_to_saturate(&pts);
            (
                sat,
                pts[(sat - 1) as usize].latency_us,
                eval_plan(&e.module, &trace, &cfg, plan),
            )
        };
        let (c_cores, c_lat, c_acc) = eval(&clara_plan);
        let (e_cores, e_lat, e_acc) = eval(&expert_plan);
        rows.push(vec![
            name.to_string(),
            c_cores.to_string(),
            e_cores.to_string(),
            f2(c_lat),
            f2(e_lat),
            f2(c_acc),
            f2(e_acc),
        ]);
    }
    table(
        &[
            "NF",
            "Clara cores",
            "expert cores",
            "Clara us",
            "expert us",
            "Clara acc/pkt",
            "expert acc/pkt",
        ],
        &rows,
    );
    println!("\nPaper reference: expert delivers a small advantage (it also tunes the");
    println!("relative position of clusters); Clara remains competitive.");
}
