//! Ablations of Clara's design choices (DESIGN.md Section 4).
//!
//! 1. **Reverse porting** (paper Section 3.3): predict framework-API
//!    block cost with the LSTM instead of substituting the vendor
//!    library's reverse-ported profile — show the fidelity loss.
//! 2. **ILP vs greedy placement**: a frequency-density greedy baseline
//!    vs the exact ILP.
//! 3. **K-means coalescing vs frequency-only packing**: packing the top
//!    variables by access count, ignoring co-access structure.
//!
//! (The other two DESIGN.md ablations ship inside their figure binaries:
//! vocabulary compaction under `fig08_prediction --ablate-vocab`, and
//! guided-vs-unguided synthesis as Table 1's baseline column.)

use clara_bench::{banner, f2, nic, scaled, table, trace_len};
use clara_core::coalesce::{access_vectors, eval_plan, suggest_coalescing};
use clara_core::engine;
use clara_core::placement::{apply_placement, plan::suggest_placement};
use nf_ir::GlobalId;
use nic_sim::{solve_perf, CoalescePlan, MemLevel, NicConfig, PortConfig};
use trafgen::{Trace, WorkloadSpec};

fn main() {
    let _report = clara_bench::report_scope("ablations");
    banner("Ablations", "Clara design choices, one at a time");
    ablate_reverse_porting();
    ablate_ilp_vs_greedy();
    ablate_kmeans_vs_frequency();
    println!("\n{}", engine::EngineStats::snapshot());
}

/// 1. Reverse porting: what if Clara predicted API-call costs with the
///    LSTM (trained on non-API code) instead of using the vendor library?
fn ablate_reverse_porting() {
    println!("\n(1) reverse porting vs predicting API blocks with the LSTM");
    use clara_core::predict::{
        block_samples, InstructionPredictor, PredictTrainConfig, PredictorKind,
    };
    let modules = nf_synth::synth_corpus(scaled(150), true, 7);
    let samples = block_samples(&modules);
    let model = InstructionPredictor::train(
        PredictorKind::ClaraLstm,
        &samples,
        &PredictTrainConfig {
            epochs: scaled(30),
            ..Default::default()
        },
    );

    // Ground truth per-packet cycles come from the simulator's vendor
    // library; the ablation replaces each API event's cost with the
    // LSTM's guess for the calling block (which cannot see probe counts,
    // hit/miss behaviour, or payload sizes).
    let cfg = nic();
    let names = ["iprewriter", "dnsproxy", "mazunat", "udpipencap"];
    let rows = engine::par_map("ablate-reverse-port", &names, |_, name| {
        let e = clara_bench::element(name);
        let trace = Trace::generate(&WorkloadSpec::large_flows(), trace_len(), 8);
        let wp = engine::Engine::new().profile_cached(&e.module, &trace, &PortConfig::naive(), &cfg);
        // Clara: predicted body compute + library profile for APIs (the
        // profile *is* wp.compute's API share, so Clara's estimate is the
        // body prediction plus the true library cycles).
        let prepared = clara_core::prepare_module(&e.module);
        let body_pred: f64 = prepared
            .blocks
            .iter()
            .map(|b| model.predict_block(&b.tokens))
            .sum();
        // Ablated: pretend each API call costs what an average predicted
        // block costs (no reverse-ported knowledge).
        let api_count: usize = prepared.blocks.iter().map(|b| b.api_calls.len()).sum();
        let mean_block = body_pred / prepared.blocks.len().max(1) as f64;
        let ablated_total = body_pred + mean_block * api_count as f64;
        // Reference: the vendor-library truth for one packet's handler
        // visitation, approximated by the profiled mean compute.
        let truth = wp.compute;
        let clara_total = body_pred
            + (truth - f64::from(engine::Engine::new().compile_cached(&e.module).handler().total_compute()))
                .max(0.0); // Library share of the true cycles.
        let err = |est: f64| (est - truth).abs() / truth * 100.0;
        vec![
            name.to_string(),
            f2(truth),
            format!("{:.0}%", err(clara_total)),
            format!("{:.0}%", err(ablated_total)),
        ]
    });
    table(
        &["NF", "true cycles/pkt", "Clara err", "no-reverse-port err"],
        &rows,
    );
    println!("Reverse porting grounds API costs in the vendor library; predicting them blind is far worse.");
}

/// 2. Greedy placement baseline: place structures in descending access
///    frequency, each into the fastest level with space (ignores the
///    opportunity cost the ILP optimizes).
fn greedy_placement(
    module: &nf_ir::Module,
    wp: &nic_sim::WorkloadProfile,
    cfg: &NicConfig,
) -> std::collections::BTreeMap<GlobalId, MemLevel> {
    let mut order: Vec<&nf_ir::GlobalDef> = module.globals.iter().collect();
    order.sort_by(|a, b| {
        wp.accesses_to(b.id)
            .partial_cmp(&wp.accesses_to(a.id))
            .expect("finite")
    });
    let mut remaining: Vec<u64> = MemLevel::ALL
        .iter()
        .map(|l| (cfg.level(*l).capacity as f64 * clara_core::placement::CAPACITY_HEADROOM) as u64)
        .collect();
    let mut out = std::collections::BTreeMap::new();
    for g in order {
        for (j, l) in MemLevel::ALL.iter().enumerate() {
            if g.total_bytes() <= remaining[j] {
                remaining[j] -= g.total_bytes();
                out.insert(g.id, *l);
                break;
            }
        }
    }
    out
}

/// An NF with the classic greedy-killer state shape: one hot large table
/// A (just fits the fast level alone) and two cooler mid-size tables B, C
/// that would *jointly* use the fast level better.
fn greedy_killer_nf() -> click_model::NfElement {
    use nf_ir::{ApiCall, BinOp, FunctionBuilder, MemRef, Operand, PktField, Pred, StateKind, Ty};
    let mut m = nf_ir::Module::new("greedy_killer");
    let a = m.add_global("table_a", StateKind::Array, 8, 48 * 1024); // 384 KB
    let b = m.add_global("table_b", StateKind::Array, 8, 28 * 1024); // 224 KB
    let c = m.add_global("table_c", StateKind::Array, 8, 28 * 1024); // 224 KB
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let hot = fb.block();
    let cool = fb.block();
    let out = fb.block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let sel = fb.bin(BinOp::And, Ty::I32, src, Operand::imm(7));
    // A is touched on 5/8 of packets (hot); B and C on 3/8 each (cooler),
    // but B+C jointly outweigh A.
    let go_hot = fb.icmp(Pred::ULt, Ty::I32, sel, Operand::imm(5));
    fb.cond_br(go_hot, hot, cool);
    fb.switch_to(hot);
    let ia = fb.bin(BinOp::And, Ty::I32, src, Operand::imm(0xbfff));
    for _ in 0..2 {
        let v = fb.load(Ty::I32, MemRef::global_at(a, ia, 0));
        let v1 = fb.bin(BinOp::Add, Ty::I32, v, Operand::imm(1));
        fb.store(Ty::I32, v1, MemRef::global_at(a, ia, 0));
    }
    fb.br(out);
    fb.switch_to(cool);
    let ib = fb.bin(BinOp::And, Ty::I32, src, Operand::imm(0x6fff));
    for g in [b, c] {
        for _ in 0..3 {
            let v = fb.load(Ty::I32, MemRef::global_at(g, ib, 0));
            let v1 = fb.bin(BinOp::Add, Ty::I32, v, Operand::imm(1));
            fb.store(Ty::I32, v1, MemRef::global_at(g, ib, 0));
        }
    }
    fb.br(out);
    fb.switch_to(out);
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
    fb.ret(None);
    m.funcs.push(fb.finish());
    click_model::NfElement {
        module: m,
        meta: click_model::ElementMeta {
            name: "greedy_killer",
            paper_loc: 0,
            stateful: true,
            insights: vec![click_model::InsightClass::Placement],
            description: "adversarial state shape for greedy placement",
        },
    }
}

fn ablate_ilp_vs_greedy() {
    println!("\n(2) exact ILP vs greedy frequency-order placement");
    // Scarce fast memory makes the opportunity cost visible: the fast
    // level (CTM, 512 KB here) fits either the hot table alone or the
    // two cooler tables together.
    let mut cfg = NicConfig {
        emem_cache_bytes: 32 * 1024,
        ..nic()
    };
    cfg.levels[MemLevel::Cls.index()].capacity = 4 * 1024;
    cfg.levels[MemLevel::Ctm.index()].capacity = 512 * 1024;
    cfg.levels[MemLevel::Imem.index()].capacity = 1024 * 1024;
    let cores = 24;
    let spec = WorkloadSpec {
        tcp_ratio: 0.9,
        ..WorkloadSpec::small_flows().with_flows(8192)
    };
    let trace = Trace::generate(&spec, trace_len().max(6000), 9);
    let mut pool: Vec<click_model::NfElement> = ["mazunat", "dnsproxy", "webgen"]
        .iter()
        .map(|n| clara_bench::element(n))
        .collect();
    pool.push(greedy_killer_nf());
    let rows = engine::par_map("ablate-placement", &pool, |_, e| {
        let wp = engine::Engine::new().profile_cached(&e.module, &trace, &PortConfig::naive(), &cfg);
        let ilp = suggest_placement(&e.module, &wp, &cfg).expect("feasible");
        let greedy = greedy_placement(&e.module, &wp, &cfg);
        let point = |m: &std::collections::BTreeMap<GlobalId, MemLevel>| {
            solve_perf(&wp, &cfg, &apply_placement(PortConfig::naive(), m), cores)
        };
        let pi = point(&ilp);
        let pg = point(&greedy);
        vec![
            e.name().to_string(),
            f2(pi.throughput_mpps),
            f2(pg.throughput_mpps),
            f2(pi.latency_us),
            f2(pg.latency_us),
        ]
    });
    table(
        &["NF", "ILP Mpps", "greedy Mpps", "ILP us", "greedy us"],
        &rows,
    );
    println!("The ILP never loses; on the adversarial shape, greedy strands the fast level on one hot table.");
}

/// 3. Frequency-only packing: pack the top-k hottest variables together,
///    ignoring co-access (the structure K-means exploits).
fn ablate_kmeans_vs_frequency() {
    println!("\n(3) K-means coalescing vs frequency-only packing");
    let cfg = nic();
    let spec = WorkloadSpec {
        tcp_ratio: 1.0,
        ..WorkloadSpec::large_flows()
    };
    let trace = Trace::generate(&spec, trace_len(), 10);
    let mut rows = Vec::new();
    for name in ["tcpgen", "webtcp", "timefilter"] {
        let e = clara_bench::element(name);
        let kmeans_plan = suggest_coalescing(&e.module, &trace, 10);
        // Frequency-only: one pack of the 4 hottest variables.
        let av = access_vectors(&e.module, &trace);
        let mut order: Vec<usize> = (0..av.vars.len()).collect();
        order.sort_by(|&a, &b| av.totals[b].partial_cmp(&av.totals[a]).expect("finite"));
        let freq_plan = CoalescePlan {
            clusters: vec![order.iter().take(6).map(|&i| (av.vars[i].0, 0)).collect()],
        };
        let none = eval_plan(&e.module, &trace, &cfg, &CoalescePlan::default());
        let km = eval_plan(&e.module, &trace, &cfg, &kmeans_plan);
        let fr = eval_plan(&e.module, &trace, &cfg, &freq_plan);
        rows.push(vec![name.to_string(), f2(none), f2(km), f2(fr)]);
    }
    table(&["NF", "no packing acc/pkt", "K-means", "freq-only"], &rows);
    println!("Packing by raw frequency ignores *who is accessed with whom*; K-means does not.");
}
