//! Figure 1: performance variability of five NFs across porting variants.
//!
//! For each motivation NF we benchmark 2–4 versions sharing the same core
//! logic but differing in porting/workload knobs (accelerator use, packet
//! size, state placement and flow distribution, rule count and flow
//! cache, packet rate), then normalize latency against the fastest.

use clara_bench::{banner, f2, nic, table, trace_len};
use click_model::elements;
use nf_ir::GlobalId;
use nic_sim::{Accel, MemLevel, NicConfig, PortConfig};
use trafgen::{FlowDist, Trace, WorkloadSpec};

fn main() {
    let _report = clara_bench::report_scope("fig01_variability");
    banner(
        "Figure 1",
        "performance variability of five NFs (2-4 variants each)",
    );
    let cfg = nic();
    let cores = 16;
    let mut rows = Vec::new();
    let mut overall_max: f64 = 1.0;

    // --- NAT: checksum accelerator on/off. ---
    {
        let e = elements::mazunat();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        let trace = Trace::generate(&spec, trace_len(), 1);
        let lat =
            |port: &PortConfig| nic_sim::simulate(&e.module, &trace, port, &cfg, cores).latency_us;
        let variants = vec![
            ("sw-csum", lat(&PortConfig::naive())),
            ("accel-csum", lat(&PortConfig::naive().with_csum_accel())),
        ];
        overall_max = overall_max.max(push_nf(&mut rows, "NAT", &variants));
    }

    // --- DPI: packet sizes. ---
    {
        let e = elements::dpi_with_depth(256);
        let lat = |size: u16| {
            let spec = WorkloadSpec::large_flows().with_pkt_size(size);
            let trace = Trace::generate(&spec, trace_len(), 2);
            nic_sim::simulate(&e.module, &trace, &PortConfig::naive(), &cfg, cores).latency_us
        };
        let variants = vec![("64B", lat(64)), ("512B", lat(512)), ("1500B", lat(1500))];
        overall_max = overall_max.max(push_nf(&mut rows, "DPI", &variants));
    }

    // --- FW: state memory location x flow distribution. ---
    {
        let e = elements::firewall();
        let run = |level: MemLevel, flows: u32, dist: FlowDist| {
            let spec = WorkloadSpec {
                flow_dist: dist,
                tcp_ratio: 1.0,
                syn_ratio: 0.02,
                ..WorkloadSpec::small_flows().with_flows(flows)
            };
            let trace = Trace::generate(&spec, trace_len().max(4000), 3);
            let mut port = PortConfig::naive();
            for g in &e.module.globals {
                if g.total_bytes() <= cfg.level(level).capacity {
                    port = port.place(g.id, level);
                }
            }
            // Admit every flow so the table actually fills.
            let pfx = u64::from(trace.pkts[0].flow.src_ip >> 12);
            let wp = nic_sim::profile_workload(&e.module, &trace, &port, &cfg, |m| {
                m.state.store(GlobalId(1), 0, 0, 4, pfx);
            });
            nic_sim::solve_perf(&wp, &cfg, &port, cores).latency_us
        };
        let variants = vec![
            (
                "emem/uniform",
                run(MemLevel::Emem, 16384, FlowDist::Uniform),
            ),
            (
                "emem/zipf",
                run(MemLevel::Emem, 16384, FlowDist::Zipf { s: 1.2 }),
            ),
            (
                "imem/uniform",
                run(MemLevel::Imem, 16384, FlowDist::Uniform),
            ),
            (
                "imem/zipf",
                run(MemLevel::Imem, 16384, FlowDist::Zipf { s: 1.2 }),
            ),
        ];
        overall_max = overall_max.max(push_nf(&mut rows, "FW", &variants));
    }

    // --- LPM: rule count x flow cache. ---
    {
        let run = |rules: usize, cache: bool| {
            let e = elements::iplookup(8192);
            let spec = WorkloadSpec::small_flows().with_flows(512);
            let trace = Trace::generate(&spec, trace_len(), 4);
            let rlist: Vec<(u32, u8, u32)> = trace
                .pkts
                .iter()
                .take(rules)
                .map(|p| (p.flow.dst_ip, 20, 9))
                .collect();
            let region = clara_bench::loop_region(&e);
            let port = if cache {
                PortConfig::naive().accelerate(region, Accel::Lpm)
            } else {
                PortConfig::naive()
            };
            let wp = nic_sim::profile_workload(&e.module, &trace, &port, &cfg, |m| {
                click_model::elements::algo::build_trie(&mut m.state, GlobalId(0), 8192, &rlist);
            });
            nic_sim::solve_perf(&wp, &cfg, &port, cores).latency_us
        };
        let variants = vec![
            ("16-rules", run(16, false)),
            ("1k-rules", run(1024, false)),
            ("1k+cache", run(1024, true)),
        ];
        overall_max = overall_max.max(push_nf(&mut rows, "LPM", &variants));
    }

    // --- HH: packet rates (offered line rate drives contention). ---
    {
        let e = elements::heavy_hitter();
        let run = |gbps: f64| {
            // Small cache: the counter table contends at EMEM, so the
            // offered rate shows up as queueing latency.
            let rate_cfg = NicConfig {
                line_rate_gbps: gbps,
                emem_cache_bytes: 2 * 1024,
                ..cfg.clone()
            };
            let spec = WorkloadSpec::small_flows()
                .with_flows(65536)
                .with_pkt_size(64);
            let trace = Trace::generate(&spec, trace_len().max(4000), 5);
            nic_sim::simulate(&e.module, &trace, &PortConfig::naive(), &rate_cfg, 60).latency_us
        };
        let variants = vec![("10G", run(10.0)), ("25G", run(25.0)), ("40G", run(40.0))];
        overall_max = overall_max.max(push_nf(&mut rows, "HH", &variants));
    }

    table(&["NF", "variant", "latency(us)", "normalized"], &rows);
    println!();
    println!(
        "Max latency variability across variants: {:.1}x (paper: up to 13.8x)",
        overall_max
    );
}

/// Appends one NF's variants (normalized to its fastest); returns the max
/// normalized latency.
fn push_nf(rows: &mut Vec<Vec<String>>, nf: &str, variants: &[(&str, f64)]) -> f64 {
    let best = variants
        .iter()
        .map(|(_, l)| *l)
        .fold(f64::INFINITY, f64::min);
    let mut max_norm: f64 = 1.0;
    for (name, lat) in variants {
        let norm = lat / best;
        max_norm = max_norm.max(norm);
        rows.push(vec![
            nf.to_string(),
            (*name).to_string(),
            f2(*lat),
            f2(norm),
        ]);
    }
    max_norm
}
