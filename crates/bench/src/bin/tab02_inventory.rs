//! Table 2: the evaluated Click programs and their properties.
//!
//! Prints, for each of the 17 corpus elements: the paper's reported LoC,
//! our measured IR instruction count, statefulness, stateful-memory
//! instruction count, framework API call count, and the insight classes
//! Clara applies — mirroring the paper's Table 2 columns.

use clara_bench::{banner, table};
use nf_ir::ModuleStats;

fn main() {
    let _report = clara_bench::report_scope("tab02_inventory");
    banner("Table 2", "evaluated Click programs");
    let mut rows = Vec::new();
    for e in click_model::corpus() {
        let stats = ModuleStats::of_module(&e.module);
        let insights: Vec<&str> = e.meta.insights.iter().map(|i| i.name()).collect();
        rows.push(vec![
            e.name().to_string(),
            e.meta.paper_loc.to_string(),
            stats.insts.to_string(),
            if e.meta.stateful { "yes" } else { "no" }.to_string(),
            stats.stateful_mem.to_string(),
            stats.api_calls.to_string(),
            insights.join(","),
        ]);
    }
    table(
        &["Element", "LoC", "Instr", "State", "Mem", "API", "Insights"],
        &rows,
    );
    println!();
    println!("LoC = paper-reported Click C++ lines; Instr/Mem/API measured on our IR.");
}
