//! Figure 13: memory access coalescing on the four global-variable-heavy
//! elements — cores needed to saturate, and latency, before/after.

use clara_bench::{banner, f2, nic, table, trace_len};
use clara_core::coalesce::suggest_coalescing;
use nic_sim::{solve_perf, NicConfig, PerfPoint, PortConfig};
use trafgen::{Trace, WorkloadSpec};

/// Smallest core count whose throughput reaches 98% of the 60-core
/// throughput ("number of cores required to saturate the bandwidth").
fn cores_to_saturate(pts: &[PerfPoint]) -> u32 {
    let peak = pts.last().expect("non-empty").throughput_mpps;
    pts.iter()
        .find(|p| p.throughput_mpps >= 0.98 * peak)
        .map_or(60, |p| p.cores)
}

fn main() {
    let _report = clara_bench::report_scope("fig13_coalescing");
    banner(
        "Figure 13",
        "memory access coalescing: cores-to-saturation and latency",
    );
    let cfg = NicConfig {
        emem_cache_bytes: 32 * 1024,
        ..nic()
    };
    let spec = WorkloadSpec {
        tcp_ratio: 1.0,
        ..WorkloadSpec::large_flows()
    };
    let trace = Trace::generate(&spec, trace_len(), 61);

    let mut rows = Vec::new();
    for name in ["aggcounter", "timefilter", "webtcp", "tcpgen"] {
        let e = clara_bench::element(name);
        let plan = suggest_coalescing(&e.module, &trace, 61);
        let eval = |port: &PortConfig| -> (u32, f64) {
            let wp = nic_sim::profile_workload(&e.module, &trace, port, &cfg, |_| {});
            let pts: Vec<PerfPoint> = (1..=60).map(|c| solve_perf(&wp, &cfg, port, c)).collect();
            let sat = cores_to_saturate(&pts);
            (sat, pts[(sat - 1) as usize].latency_us)
        };
        let (n_cores, n_lat) = eval(&PortConfig::naive());
        let (c_cores, c_lat) = eval(&PortConfig::naive().with_coalesce(plan.clone()));
        rows.push(vec![
            name.to_string(),
            n_cores.to_string(),
            c_cores.to_string(),
            f2(n_lat),
            f2(c_lat),
            plan.clusters.len().to_string(),
        ]);
    }
    table(
        &[
            "NF",
            "naive cores",
            "Clara cores",
            "naive us",
            "Clara us",
            "clusters",
        ],
        &rows,
    );
    println!("\nPaper reference: -42% to -68% latency, 25-55% fewer cores to saturate.");
    println!("Example clusters (tcpgen): sport+dport; tcp_state+send_next+recv_next;");
    println!("good_pkt and bad_pkt stay apart (never co-accessed).");
}
