//! Figure 11: multicore scale-out factor analysis.
//!
//! (a) core-count MAE of Clara's GBDT vs kNN, DNN and AutoML;
//! (b) suggested vs sweep-optimal cores on the four complex NFs;
//! (c)-(f) throughput/latency-ratio and raw curves vs core count for two
//! flow profiles, with Clara's suggestions marked, plus the peak gain of
//! the optimum over naively using all cores.

use clara_bench::{banner, f2, f3, nic, scaled, table, trace_len};
use clara_core::scaleout::{optimal_by_sweep, training_set, ScaleoutKind, ScaleoutModel};
use nic_sim::{solve_perf, NicConfig, PortConfig, WorkloadProfile};
use trafgen::{Trace, WorkloadSpec};

fn main() {
    let _report = clara_bench::report_scope("fig11_scaleout");
    banner("Figure 11", "multicore scale-out analysis");
    let cfg = nic();

    // (a) Model comparison on held-out synthesized workloads.
    println!("\n(a) core-count prediction MAE (cores)");
    let train = training_set(scaled(160), 41, &cfg);
    let test = training_set(scaled(20), 42, &cfg);
    let mut rows = Vec::new();
    let mut models = Vec::new();
    for kind in [
        ScaleoutKind::ClaraGbdt,
        ScaleoutKind::AutoMl,
        ScaleoutKind::Knn,
        ScaleoutKind::Dnn,
    ] {
        let m = ScaleoutModel::train(kind, &train, &cfg, 41);
        rows.push(vec![kind.name().to_string(), f2(m.mae(&test))]);
        models.push(m);
    }
    table(&["Model", "MAE"], &rows);
    println!("Paper reference: Clara's GBDT lowest; AutoML also picks GBDT.");

    // (b)-(f): the four complex NFs under two flow profiles.
    let clara = &models[0];
    let nfs = ["mazunat", "dnsproxy", "webgen", "udpcount"];
    // Small EMEM cache in this experiment config exposes the small-flow
    // regime at tractable trace lengths (as in the paper's 256k flows).
    let run_cfg = NicConfig {
        emem_cache_bytes: 32 * 1024,
        ..cfg.clone()
    };

    println!("\n(b) suggested vs optimal cores (small flows)");
    let mut rows = Vec::new();
    let mut profiles: Vec<(String, WorkloadProfile, WorkloadProfile)> = Vec::new();
    for name in nfs {
        let e = clara_bench::element(name);
        let port = PortConfig::naive().with_csum_accel();
        let large = profile(&e, &WorkloadSpec::large_flows(), &run_cfg, &port);
        let small = profile(
            &e,
            &WorkloadSpec::small_flows().with_flows(8192),
            &run_cfg,
            &port,
        );
        let suggested = clara
            .predict(&small, &run_cfg, &port)
            .expect("finite prediction");
        let optimal = optimal_by_sweep(&small, &run_cfg, &port);
        let ratio_sugg = solve_perf(&small, &run_cfg, &port, suggested).ratio();
        let ratio_opt = solve_perf(&small, &run_cfg, &port, optimal).ratio();
        rows.push(vec![
            name.to_string(),
            suggested.to_string(),
            optimal.to_string(),
            format!("{:.1}%", (1.0 - ratio_sugg / ratio_opt).abs() * 100.0),
        ]);
        profiles.push((name.to_string(), large, small));
    }
    table(&["NF", "Clara", "optimal", "perf deviation"], &rows);
    println!("Paper reference: suggestions within 1-6% of optimal.");

    type Pick = fn(&(String, WorkloadProfile, WorkloadProfile)) -> &WorkloadProfile;
    let views: [(&str, Pick); 2] = [("(c) large flows", |t| &t.1), ("(d) small flows", |t| &t.2)];
    for (label, pick) in views {
        println!("\n{label}: throughput/latency ratio vs cores (sampled)");
        let header: Vec<String> = ["NF".to_string()]
            .into_iter()
            .chain([1u32, 4, 8, 16, 24, 32, 40, 48, 56, 60].map(|c| format!("c{c}")))
            .chain(["knee".to_string(), "gain@knee".to_string()])
            .collect();
        let mut rows = Vec::new();
        for t in &profiles {
            let wp = pick(t);
            let port = PortConfig::naive().with_csum_accel();
            let pts: Vec<_> = (1..=60)
                .map(|c| solve_perf(wp, &run_cfg, &port, c))
                .collect();
            let knee = nic_sim::optimal_cores(&pts);
            let all60 = pts[59].ratio();
            let best = pts[(knee - 1) as usize].ratio();
            let mut row = vec![t.0.clone()];
            for c in [1u32, 4, 8, 16, 24, 32, 40, 48, 56, 60] {
                row.push(f3(pts[(c - 1) as usize].ratio()));
            }
            row.push(knee.to_string());
            row.push(format!("{:+.1}%", (best / all60 - 1.0) * 100.0));
            rows.push(row);
        }
        let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
        table(&hdr, &rows);
    }
    println!("\nPaper reference: curves peak at interior core counts; optimum up to 71.1% better than all-cores; large flows peak earlier than small flows.");

    println!("\n(e)-(f) detail: throughput and latency vs cores, mazunat & webgen (small flows)");
    for t in profiles
        .iter()
        .filter(|t| t.0 == "mazunat" || t.0 == "webgen")
    {
        let port = PortConfig::naive().with_csum_accel();
        let suggested = clara
            .predict(&t.2, &run_cfg, &port)
            .expect("finite prediction");
        println!("  {} (Clara suggests {suggested} cores):", t.0);
        let mut rows = Vec::new();
        for c in [1u32, 8, 16, 24, 32, 40, 48, 56, 60] {
            let p = solve_perf(&t.2, &run_cfg, &port, c);
            rows.push(vec![
                c.to_string(),
                f2(p.throughput_mpps),
                f2(p.latency_us),
                f3(p.ratio()),
            ]);
        }
        table(&["cores", "Mpps", "latency us", "ratio"], &rows);
    }
}

fn profile(
    e: &click_model::NfElement,
    spec: &WorkloadSpec,
    cfg: &NicConfig,
    port: &PortConfig,
) -> WorkloadProfile {
    let spec = WorkloadSpec {
        tcp_ratio: 0.9,
        ..spec.clone()
    };
    let n = trace_len().max(6000).min(spec.flows as usize * 4 + 2000);
    let trace = Trace::generate(&spec, n, 40);
    nic_sim::profile_workload(&e.module, &trace, port, cfg, |_| {})
}
