//! Figure 15: Clara's ILP placement vs 'expert' exhaustive search.
//!
//! The expert sweeps every feasible per-structure placement on the
//! simulated NIC and picks the best operating point. Clara's ILP ignores
//! cache and bandwidth-spreading effects, so the expert can be slightly
//! better — the paper reports Clara within 9.7% latency / 7.6% throughput.

use clara_bench::{banner, f2, nic, table};
use clara_core::placement::{apply_placement, exhaustive_placement, plan::suggest_placement};
use nic_sim::{solve_perf, NicConfig, PortConfig};
use trafgen::{Trace, WorkloadSpec};

fn main() {
    let _report = clara_bench::report_scope("fig15_expert_placement");
    banner(
        "Figure 15",
        "state placement: Clara ILP vs expert exhaustive sweep",
    );
    // Scarce fast memory + a useful EMEM cache: the regime of the paper's
    // UDPCount anecdote, where the expert discovers that state the ILP
    // pins into SRAM is just as happy in DRAM behind the cache (and the
    // SRAM is better spent on something else).
    let mut cfg = NicConfig {
        emem_cache_bytes: 256 * 1024,
        ..nic()
    };
    cfg.levels[nic_sim::MemLevel::Cls.index()].capacity = 16 * 1024;
    cfg.levels[nic_sim::MemLevel::Ctm.index()].capacity = 64 * 1024;
    cfg.levels[nic_sim::MemLevel::Imem.index()].capacity = 512 * 1024;
    let cores = 32;
    let spec = WorkloadSpec {
        tcp_ratio: 0.9,
        ..WorkloadSpec::small_flows().with_flows(8192)
    };
    let trace = Trace::generate(&spec, clara_bench::trace_len().max(6000), 81);

    let mut rows = Vec::new();
    let mut worst_thpt_gap = 0.0f64;
    let mut worst_lat_gap = 0.0f64;
    for name in ["mazunat", "dnsproxy", "webgen", "udpcount"] {
        let e = clara_bench::element(name);
        let naive_port = PortConfig::naive();
        let wp = nic_sim::profile_workload(&e.module, &trace, &naive_port, &cfg, |_| {});

        let ilp = suggest_placement(&e.module, &wp, &cfg).expect("feasible");
        let clara_pt = solve_perf(
            &wp,
            &cfg,
            &apply_placement(PortConfig::naive(), &ilp),
            cores,
        );
        let (expert_map, expert_pt) =
            exhaustive_placement(&e.module, &wp, &cfg, &naive_port, cores).expect("feasible");

        let thpt_gap = (1.0 - clara_pt.throughput_mpps / expert_pt.throughput_mpps).max(0.0);
        let lat_gap = (clara_pt.latency_us / expert_pt.latency_us - 1.0).max(0.0);
        worst_thpt_gap = worst_thpt_gap.max(thpt_gap);
        worst_lat_gap = worst_lat_gap.max(lat_gap);

        let diff: Vec<String> = e
            .module
            .globals
            .iter()
            .filter(|g| ilp.get(&g.id) != expert_map.get(&g.id))
            .map(|g| {
                format!(
                    "{}: {}→{}",
                    g.name,
                    ilp.get(&g.id).map_or("?", |l| l.name()),
                    expert_map.get(&g.id).map_or("?", |l| l.name())
                )
            })
            .collect();
        rows.push(vec![
            name.to_string(),
            f2(clara_pt.throughput_mpps),
            f2(expert_pt.throughput_mpps),
            f2(clara_pt.latency_us),
            f2(expert_pt.latency_us),
            if diff.is_empty() {
                "same".to_string()
            } else {
                diff.join("; ")
            },
        ]);
    }
    table(
        &[
            "NF",
            "Clara Mpps",
            "expert Mpps",
            "Clara us",
            "expert us",
            "expert deviations",
        ],
        &rows,
    );
    println!(
        "\nWorst gaps: throughput -{:.1}%, latency +{:.1}%  (paper: ≤7.6% / ≤9.7%)",
        worst_thpt_gap * 100.0,
        worst_lat_gap * 100.0
    );
    println!("Where they differ, the expert exploits cache/bandwidth effects the ILP cannot see (Section 5.8).");
}
