//! Figure 12: NF state placement via Clara's ILP vs the naive all-EMEM
//! port, on the four complex NFs under the small-flow workload.

use clara_bench::{banner, f2, nic, table};
use clara_core::placement::{apply_placement, plan::suggest_placement};
use nic_sim::{solve_perf, NicConfig, PortConfig};
use trafgen::{Trace, WorkloadSpec};

fn main() {
    let _report = clara_bench::report_scope("fig12_placement");
    banner(
        "Figure 12",
        "NF state placement: Clara ILP vs all-EMEM baseline",
    );
    // A small EMEM cache models the paper's 256k-flow small-flow workload
    // at tractable trace lengths.
    let cfg = NicConfig {
        emem_cache_bytes: 32 * 1024,
        ..nic()
    };
    let cores = 24;
    let spec = WorkloadSpec {
        tcp_ratio: 0.9,
        ..WorkloadSpec::small_flows().with_flows(8192)
    };
    let trace = Trace::generate(&spec, clara_bench::trace_len().max(6000), 51);

    let mut rows = Vec::new();
    let mut lat_cuts = Vec::new();
    let mut thpt_gains = Vec::new();
    for name in ["mazunat", "dnsproxy", "webgen", "udpcount"] {
        let e = clara_bench::element(name);
        let naive_port = PortConfig::naive();
        let wp = nic_sim::profile_workload(&e.module, &trace, &naive_port, &cfg, |_| {});
        let naive = solve_perf(&wp, &cfg, &naive_port, cores);
        let placement = suggest_placement(&e.module, &wp, &cfg).expect("feasible");
        let clara_port = apply_placement(PortConfig::naive(), &placement);
        let clara = solve_perf(&wp, &cfg, &clara_port, cores);

        lat_cuts.push(1.0 - clara.latency_us / naive.latency_us);
        thpt_gains.push(clara.throughput_mpps / naive.throughput_mpps - 1.0);
        let placed: Vec<String> = placement
            .iter()
            .map(|(g, l)| {
                format!(
                    "{}→{}",
                    e.module.global(*g).map_or("?", |d| d.name.as_str()),
                    l.name()
                )
            })
            .collect();
        rows.push(vec![
            name.to_string(),
            f2(naive.throughput_mpps),
            f2(clara.throughput_mpps),
            f2(naive.latency_us),
            f2(clara.latency_us),
            placed.join(" "),
        ]);
    }
    table(
        &[
            "NF",
            "naive Mpps",
            "Clara Mpps",
            "naive us",
            "Clara us",
            "placement",
        ],
        &rows,
    );
    let avg_lat = lat_cuts.iter().sum::<f64>() / lat_cuts.len() as f64;
    let avg_thpt = thpt_gains.iter().sum::<f64>() / thpt_gains.len() as f64;
    println!(
        "\nAverage: latency -{:.0}%, throughput +{:.0}%  (paper: -33% latency, +89% throughput)",
        avg_lat * 100.0,
        avg_thpt * 100.0
    );
    println!("ILP solve time is microseconds per NF (paper: 'within a few seconds').");
}
