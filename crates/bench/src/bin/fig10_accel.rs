//! Figure 10: accelerator identification pays off.
//!
//! (a) PCA view of the algorithm-ID feature space (class separation);
//! (b) CRC accelerator benefit on cmsketch and wepdecap;
//! (c) LPM accelerator benefit on iplookup across rule counts.

use clara_bench::{banner, crc_port, f2, lpm_port, nic, scaled, table, trace_len};
use clara_core::algid::{labeled_corpus, AlgoClass, AlgoIdentifier, ClassifierKind};
use clara_core::engine;
use nf_ir::GlobalId;
use nic_sim::PortConfig;
use tinyml::pca::Pca;
use trafgen::{Trace, WorkloadSpec};

fn main() {
    let _report = clara_bench::report_scope("fig10_accel");
    banner("Figure 10", "accelerator identification and its benefits");
    part_a();
    part_b();
    part_c();
    println!("\n{}", engine::EngineStats::snapshot());
}

/// (a) PCA of the feature space: per-class centroids and separation.
fn part_a() {
    println!("\n(a) PCA of algorithm-ID features");
    let corpus = labeled_corpus(scaled(40), 31);
    let id = AlgoIdentifier::train(&corpus, ClassifierKind::ClaraSvm, 31);
    let feats: Vec<Vec<f64>> = corpus.iter().map(|(m, _)| id.features(m)).collect();
    let pca = Pca::fit(&feats, 2);

    let mut sums: std::collections::BTreeMap<usize, (f64, f64, usize)> = Default::default();
    for ((_, class), f) in corpus.iter().zip(feats.iter()) {
        let p = pca.project(f);
        let e = sums.entry(class.label()).or_insert((0.0, 0.0, 0));
        e.0 += p[0];
        e.1 += p[1];
        e.2 += 1;
    }
    let rows: Vec<Vec<String>> = sums
        .iter()
        .map(|(&label, &(x, y, n))| {
            vec![
                AlgoClass::from_label(label).name().to_string(),
                f2(x / n as f64),
                f2(y / n as f64),
                n.to_string(),
            ]
        })
        .collect();
    table(&["class", "PC1 centroid", "PC2 centroid", "samples"], &rows);
    println!(
        "  explained variance: PC1 {:.2}, PC2 {:.2} (distinct centroids = separable classes)",
        pca.explained[0], pca.explained[1]
    );
}

/// (b) CRC accelerator on cmsketch and wepdecap.
fn part_b() {
    println!("\n(b) CRC accelerator benefit (paper: up to 1.6x throughput, -25% latency)");
    let cfg = nic();
    let cores = 20;
    let spec = WorkloadSpec::min_size();
    let trace = Trace::generate(&spec, trace_len(), 32);
    let names = ["cmsketch", "wepdecap"];
    let rows = engine::par_map("fig10-crc", &names, |_, name| {
        let e = clara_bench::element(name);
        let naive = nic_sim::simulate(&e.module, &trace, &PortConfig::naive(), &cfg, cores);
        let accel = nic_sim::simulate(&e.module, &trace, &crc_port(&e), &cfg, cores);
        vec![
            name.to_string(),
            f2(naive.throughput_mpps),
            f2(accel.throughput_mpps),
            format!("{:.2}x", accel.throughput_mpps / naive.throughput_mpps),
            f2(naive.latency_us),
            f2(accel.latency_us),
            format!(
                "{:.0}%",
                (1.0 - accel.latency_us / naive.latency_us) * 100.0
            ),
        ]
    });
    table(
        &[
            "NF",
            "naive Mpps",
            "Clara Mpps",
            "speedup",
            "naive us",
            "Clara us",
            "lat cut",
        ],
        &rows,
    );
}

/// (c) LPM accelerator on iplookup vs rule count.
fn part_c() {
    println!("\n(c) LPM accelerator benefit vs rule count (paper: ~an order of magnitude)");
    let cfg = nic();
    let cores = 20;
    let exps: Vec<u32> = (4..=10).collect();
    let rows = engine::par_map("fig10-lpm", &exps, |_, &exp| {
        let rules = 1usize << exp;
        let e = click_model::elements::iplookup(4 * rules as u32 + 64);
        let spec = WorkloadSpec::small_flows().with_flows(rules as u32);
        let trace = Trace::generate(&spec, trace_len(), 33);
        let rlist: Vec<(u32, u8, u32)> = trace
            .pkts
            .iter()
            .take(rules)
            .map(|p| (p.flow.dst_ip, 20, 9))
            .collect();
        let capacity = 4 * rules as u32 + 64;
        let run = |port: &PortConfig| {
            let rl = rlist.clone();
            let wp = nic_sim::profile_workload(&e.module, &trace, port, &cfg, move |m| {
                click_model::elements::algo::build_trie(&mut m.state, GlobalId(0), capacity, &rl);
            });
            nic_sim::solve_perf(&wp, &cfg, port, cores)
        };
        let naive = run(&PortConfig::naive());
        let accel = run(&lpm_port(&e));
        vec![
            format!("2^{exp}"),
            f2(naive.throughput_mpps),
            f2(accel.throughput_mpps),
            format!("{:.1}x", accel.throughput_mpps / naive.throughput_mpps),
            f2(naive.latency_us),
            f2(accel.latency_us),
            format!("{:.1}x", naive.latency_us / accel.latency_us),
        ]
    });
    table(
        &[
            "rules",
            "naive Mpps",
            "Clara Mpps",
            "thpt gain",
            "naive us",
            "Clara us",
            "lat gain",
        ],
        &rows,
    );
}
