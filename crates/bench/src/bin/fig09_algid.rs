//! Figure 9: algorithm-identification precision and recall for Clara's
//! SVM vs AutoML, kNN, DNN, DT, and GBDT.

use clara_bench::{banner, scaled, table};
use clara_core::algid::{labeled_corpus, AlgoClass, AlgoIdentifier, ClassifierKind};
use tinyml::metrics::micro_precision_recall;

fn main() {
    let _report = clara_bench::report_scope("fig09_algid");
    banner("Figure 9", "algorithm identification: precision / recall");
    let train = labeled_corpus(scaled(60), 21);
    let test = labeled_corpus(scaled(20), 22);
    println!(
        "training corpus: {} samples; held-out test: {} samples\n",
        train.len(),
        test.len()
    );

    let kinds = [
        ClassifierKind::ClaraSvm,
        ClassifierKind::AutoMl,
        ClassifierKind::Knn,
        ClassifierKind::Dnn,
        ClassifierKind::Dt,
        ClassifierKind::Gbdt,
    ];
    let truth: Vec<usize> = test.iter().map(|(_, c)| c.label()).collect();
    let mut rows = Vec::new();
    for kind in kinds {
        let id = AlgoIdentifier::train(&train, kind, 21);
        let preds: Vec<usize> = test.iter().map(|(m, _)| id.identify(m).0.label()).collect();
        let pr = micro_precision_recall(&truth, &preds, AlgoClass::None.label());
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}%", pr.precision * 100.0),
            format!("{:.1}%", pr.recall * 100.0),
        ]);
    }
    table(&["Model", "Precision", "Recall"], &rows);
    println!("\nPaper reference: Clara 96.6% precision / 83.3% recall; others on par.");

    // Concrete example identifications from Section 5.3.
    println!("\nConcrete identifications on real elements:");
    let id = AlgoIdentifier::train(&train, ClassifierKind::ClaraSvm, 21);
    let examples = [
        ("cmsketch", "CRC row hashes"),
        ("wepdecap", "CRC32 integrity loop (rc4-style decap)"),
        ("iplookup", "radix/trie IP lookup"),
        ("aggcounter", "plain counters (no accelerator)"),
        ("mazunat", "NAT (no accelerator)"),
    ];
    let rows: Vec<Vec<String>> = examples
        .iter()
        .map(|(name, what)| {
            let e = clara_bench::element(name);
            let (class, region) = id.identify(&e.module);
            vec![
                name.to_string(),
                (*what).to_string(),
                class.name().to_string(),
                region.len().to_string(),
            ]
        })
        .collect();
    table(&["NF", "contains", "identified", "region-blocks"], &rows);
}
