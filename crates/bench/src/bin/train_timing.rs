//! Wall-clock comparison for `Clara::train(&ClaraConfig::fast(99))`:
//! single engine worker vs a multi-worker pool, with engine statistics.
//!
//! This is the ISSUE's before/after measurement. The determinism tests
//! guarantee both runs produce bit-identical models, so the only thing
//! that changes between the two columns is wall-clock time.
//!
//! Usage: `train_timing [threads]` (default: 4, or `CLARA_THREADS`).

use std::time::{Duration, Instant};

use clara_core::clara::{Clara, ClaraConfig};
use clara_core::engine;

fn run(threads: usize) -> Duration {
    engine::set_threads(threads);
    engine::Engine::new().clear_caches();
    engine::EngineStats::reset();
    let t = Instant::now();
    let clara = Clara::train(&ClaraConfig::fast(99)).expect("training degraded");
    let wall = t.elapsed();
    // Keep the model alive so the compiler can't discard training.
    drop(clara);
    println!("\n== {threads} worker(s): {:.2}s ==", wall.as_secs_f64());
    println!("{}", engine::EngineStats::snapshot());
    wall
}

fn main() {
    let _report = clara_bench::report_scope("train_timing");
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| engine::threads().max(4));
    println!(
        "Clara::train(fast(99)) wall-clock, serial vs {threads}-worker engine \
         (host has {} CPU(s))",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let serial = run(1);
    let parallel = run(threads);
    println!(
        "\nserial {:.2}s -> parallel {:.2}s ({:.2}x)",
        serial.as_secs_f64(),
        parallel.as_secs_f64(),
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
    );
}
