//! Figure 8: instruction-prediction accuracy (WMAPE) of Clara's LSTM+FC
//! vs DNN, CNN and AutoML, per ported Click NF.
//!
//! Also prints the Section 3.2 memory-counting accuracy (96.4–100% in the
//! paper) and, with `--ablate-vocab`, the vocabulary-compaction ablation
//! the paper discusses in Section 6.

use clara_bench::{banner, pct, scaled, table};
use clara_core::engine::EngineStats;
use clara_core::predict::{
    block_samples, memory_count_accuracy, InstructionPredictor, PredictTrainConfig, PredictorKind,
};

fn main() {
    let _report = clara_bench::report_scope("fig08_prediction");
    let ablate = std::env::args().any(|a| a == "--ablate-vocab");
    banner(
        "Figure 8",
        "instruction prediction WMAPE: Clara vs DNN vs CNN vs AutoML",
    );

    // Training data: synthesized program/assembly pairs.
    let train_modules = nf_synth::synth_corpus(scaled(420), true, 11);
    let samples = block_samples(&train_modules);
    println!(
        "training on {} blocks from {} synthesized programs\n",
        samples.len(),
        train_modules.len()
    );

    let cfg = PredictTrainConfig {
        epochs: scaled(60),
        hidden: 36,
        seed: 11,
        ..Default::default()
    };
    let kinds = [
        PredictorKind::ClaraLstm,
        PredictorKind::Dnn,
        PredictorKind::Cnn,
        PredictorKind::AutoMl,
    ];
    let models: Vec<InstructionPredictor> = kinds
        .iter()
        .map(|&k| InstructionPredictor::train(k, &samples, &cfg))
        .collect();

    // The paper's Figure 8 NFs.
    let nf_names = [
        "tcpack",
        "udpipencap",
        "timefilter",
        "anonipaddr",
        "tcpresp",
        "forcetcp",
        "aggcounter",
        "tcpgen",
    ];
    let mut rows = Vec::new();
    let mut sums = vec![0.0; kinds.len()];
    for name in nf_names {
        let e = clara_bench::element(name);
        let mut row = vec![name.to_string()];
        for (i, m) in models.iter().enumerate() {
            let w = m.wmape_module(&e.module);
            sums[i] += w;
            row.push(pct(w));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["(average)".to_string()];
    for s in &sums {
        avg_row.push(pct(s / nf_names.len() as f64));
    }
    rows.push(avg_row);
    table(&["NF", "Clara", "DNN", "CNN", "AutoML"], &rows);
    println!("\nPaper reference: Clara 6.0-22.3% per NF, ~10.7% overall; baselines worse.");

    // Memory-access counting accuracy (Section 3.2 claim).
    println!("\nMemory-access counting accuracy (IR loads/stores vs NFCC):");
    let mem_rows: Vec<Vec<String>> = nf_names
        .iter()
        .map(|name| {
            let e = clara_bench::element(name);
            vec![
                name.to_string(),
                format!("{:.1}%", memory_count_accuracy(&e.module)),
            ]
        })
        .collect();
    table(&["NF", "accuracy"], &mem_rows);
    println!("Paper reference: 96.4%-100%.");

    if ablate {
        println!("\nAblation: vocabulary compaction (Section 6)");
        let mut ab_cfg = cfg;
        ab_cfg.ablate_vocab = true;
        let ablated = InstructionPredictor::train(PredictorKind::ClaraLstm, &samples, &ab_cfg);
        let rows: Vec<Vec<String>> = nf_names
            .iter()
            .map(|name| {
                let e = clara_bench::element(name);
                vec![
                    name.to_string(),
                    pct(models[0].wmape_module(&e.module)),
                    pct(ablated.wmape_module(&e.module)),
                ]
            })
            .collect();
        table(&["NF", "with vocab", "ablated"], &rows);
        println!(
            "Paper: \"applying LSTM without vocabulary compaction shows much lower performance\"."
        );
    }

    println!("\n{}", EngineStats::snapshot());
}
