//! Figure 14: NF colocation ranking.
//!
//! (a) top-1/2/3 ranking accuracy of the four training objectives on
//! synthesized NF groups;
//! (b)-(c) throughput degradation and latency increase for the six pairs
//! of the four real NFs (NF1 Mazu-NAT, NF2 DNSProxy, NF3 UDPCount,
//! NF4 Webgen), ordered by Clara's predicted friendliness.

use clara_bench::{banner, f2, nic, scaled, table};
use clara_core::coloc::{
    measure_pair, synth_profiles, training_groups, ColocRanker, RankObjective,
};
use nic_sim::{solve_colocated, solve_perf, NicConfig, PortConfig};
use trafgen::{Trace, WorkloadSpec};

fn main() {
    let _report = clara_bench::report_scope("fig14_colocation");
    banner("Figure 14", "NF colocation ranking");
    let cfg = NicConfig {
        emem_cache_bytes: 64 * 1024,
        ..nic()
    };

    // (a) Ranking accuracy for all four objectives.
    println!("\n(a) top-k accuracy by training objective (held-out synthesized groups)");
    let profiles = synth_profiles(scaled(48), &cfg, 71);
    let mut rows = Vec::new();
    let mut best_ranker: Option<ColocRanker> = None;
    for objective in RankObjective::ALL {
        let train = training_groups(&profiles, &cfg, objective, scaled(160), 5, 72);
        let test = training_groups(&profiles, &cfg, objective, scaled(40), 5, 73);
        let ranker = ColocRanker::train(&train, objective);
        rows.push(vec![
            objective.name().to_string(),
            f2(ranker.topk_accuracy(&test, 1) * 100.0),
            f2(ranker.topk_accuracy(&test, 2) * 100.0),
            f2(ranker.topk_accuracy(&test, 3) * 100.0),
        ]);
        if objective == RankObjective::TotalThroughput {
            best_ranker = Some(ranker);
        }
    }
    table(&["objective", "top-1 %", "top-2 %", "top-3 %"], &rows);
    println!("Paper reference: total-throughput objective best, 70+% top-1, 85+% top-3.");

    // (b)-(c) Real-NF pairs.
    println!("\n(b)-(c) the six pairs of NF1=mazunat NF2=dnsproxy NF3=udpcount NF4=webgen");
    let ranker = best_ranker.expect("trained");
    let spec = WorkloadSpec {
        tcp_ratio: 0.9,
        ..WorkloadSpec::small_flows().with_flows(8192)
    };
    let trace = Trace::generate(&spec, clara_bench::trace_len().max(6000), 74);
    let names = ["mazunat", "dnsproxy", "udpcount", "webgen"];
    let port = PortConfig::naive();
    let wps: Vec<_> = names
        .iter()
        .map(|n| {
            let e = clara_bench::element(n);
            nic_sim::profile_workload(&e.module, &trace, &port, &cfg, |_| {})
        })
        .collect();

    let half = cfg.cores / 2;
    let mut pairs = Vec::new();
    for i in 0..4 {
        for j in (i + 1)..4 {
            let score = ranker.score(&wps[i], &wps[j], &cfg, &port);
            let measured = measure_pair(
                &wps[i],
                &wps[j],
                &cfg,
                &port,
                RankObjective::TotalThroughput,
            );
            let solo_i = solve_perf(&wps[i], &cfg, &port, half);
            let solo_j = solve_perf(&wps[j], &cfg, &port, half);
            let pair = solve_colocated(&[&wps[i], &wps[j]], &cfg, &[&port, &port], &[half, half]);
            pairs.push((
                format!("NF{}+NF{}", i + 1, j + 1),
                score,
                measured,
                pair[0].throughput_mpps + pair[1].throughput_mpps,
                solo_i.throughput_mpps + solo_j.throughput_mpps,
                (pair[0].latency_us / solo_i.latency_us + pair[1].latency_us / solo_j.latency_us)
                    / 2.0,
            ));
        }
    }
    // Order by Clara's predicted friendliness (descending score).
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|(name, score, measured, coloc_t, solo_t, lat_infl)| {
            vec![
                name.clone(),
                f2(*score),
                f2(*measured),
                f2(*coloc_t),
                f2(*solo_t),
                format!("{:.0}%", (coloc_t / solo_t) * 100.0),
                format!("{:.2}x", lat_infl),
            ]
        })
        .collect();
    table(
        &[
            "pair (Clara order)",
            "score",
            "retention",
            "coloc Mpps",
            "solo Mpps",
            "thpt kept",
            "lat inflation",
        ],
        &rows,
    );

    // Rank-correlation check: predicted order vs measured friendliness.
    let pred: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let meas: Vec<f64> = pairs.iter().map(|p| p.2).collect();
    let tau = tinyml::metrics::kendall_tau(&pred, &meas);
    println!("\nKendall tau between Clara's ranking and measured friendliness: {tau:.2}");
    println!(
        "Paper reference: Clara correctly ranked all top-3 choices; degradation varies up to 15%."
    );
}
