//! Criterion benches for the reproduced system's own performance:
//! vendor-compiler speed, interpreter packet rate, model inference
//! latency, ILP solve time, and the analytic performance model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clara_core::predict::{block_samples, InstructionPredictor, PredictTrainConfig, PredictorKind};
use ilp_solver::AssignmentProblem;
use nic_sim::{solve_perf, NicConfig, PortConfig};
use trafgen::{Trace, WorkloadSpec};

fn bench_nfcc_compile(c: &mut Criterion) {
    let corpus = click_model::corpus();
    c.bench_function("nfcc_compile_corpus", |b| {
        b.iter(|| {
            for e in &corpus {
                black_box(nfcc::compile_module(&e.module));
            }
        });
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let e = click_model::elements::mazunat();
    let spec = WorkloadSpec {
        tcp_ratio: 1.0,
        ..WorkloadSpec::large_flows()
    };
    let trace = Trace::generate(&spec, 256, 1);
    c.bench_function("interp_mazunat_256pkts", |b| {
        let mut machine = click_model::Machine::new(&e.module).expect("verifies");
        b.iter(|| {
            for p in &trace.pkts {
                black_box(machine.run(p).expect("runs"));
            }
        });
    });
}

fn bench_lstm_inference(c: &mut Criterion) {
    let modules = nf_synth::synth_corpus(20, true, 5);
    let samples = block_samples(&modules);
    let model = InstructionPredictor::train(
        PredictorKind::ClaraLstm,
        &samples,
        &PredictTrainConfig {
            epochs: 3,
            ..Default::default()
        },
    );
    let tokens = samples[0].tokens.clone();
    c.bench_function("lstm_predict_block", |b| {
        b.iter(|| black_box(model.predict_block(&tokens)));
    });
}

fn bench_ilp(c: &mut Criterion) {
    // A placement-shaped instance: 8 structures, 4 levels.
    let p = AssignmentProblem {
        costs: (0..8)
            .map(|i| {
                vec![
                    25.0 * (i + 1) as f64,
                    55.0 * (i + 1) as f64,
                    150.0 * (i + 1) as f64,
                    500.0 * (i + 1) as f64,
                ]
            })
            .collect(),
        sizes: vec![64, 4096, 16384, 128, 65536, 8, 1024, 32768],
        caps: vec![131072, 1048576, 4194304, u64::MAX / 2],
    };
    c.bench_function("ilp_placement_8x4", |b| {
        b.iter(|| black_box(p.solve_within(u64::MAX)));
    });
}

fn bench_perf_model(c: &mut Criterion) {
    let e = click_model::elements::udpcount();
    let trace = Trace::generate(&WorkloadSpec::small_flows().with_flows(2048), 400, 2);
    let cfg = NicConfig::default();
    let port = PortConfig::naive();
    let wp = nic_sim::profile_workload(&e.module, &trace, &port, &cfg, |_| {});
    c.bench_function("solve_perf_60core_sweep", |b| {
        b.iter(|| {
            for cores in 1..=60 {
                black_box(solve_perf(&wp, &cfg, &port, cores));
            }
        });
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let profile = nf_synth::CorpusProfile::measure(&click_model::corpus());
    c.bench_function("synth_generate_10_programs", |b| {
        b.iter(|| {
            let mut synth = nf_synth::Synthesizer::new(profile.clone(), 7);
            black_box(synth.generate_many(10, "bench"));
        });
    });
}

fn bench_profiling(c: &mut Criterion) {
    let e = click_model::elements::udpcount();
    let trace = Trace::generate(&WorkloadSpec::large_flows(), 512, 3);
    let cfg = NicConfig::default();
    let port = PortConfig::naive();
    c.bench_function("profile_udpcount_512pkts", |b| {
        b.iter(|| {
            black_box(nic_sim::profile_workload(
                &e.module,
                &trace,
                &port,
                &cfg,
                |_| {},
            ));
        });
    });
    // Recorded replay (the placement/coalescing sweep fast path).
    let rec = nic_sim::record_workload(&e.module, &trace, |_| {});
    c.bench_function("replay_udpcount_512pkts", |b| {
        b.iter(|| {
            black_box(nic_sim::profile_recorded(&e.module, &rec, &port, &cfg));
        });
    });
}

fn bench_training(c: &mut Criterion) {
    use tinyml::gbdt::{GbdtConfig, GbdtRegressor};
    use tinyml::svm::{MultiSvm, SvmConfig};
    let x: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![(i % 17) as f64, (i % 5) as f64, (i % 3) as f64])
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 + r[1] - r[2]).collect();
    let labels: Vec<usize> = x.iter().map(|r| (r[2] as usize) % 3).collect();
    c.bench_function("gbdt_train_200x3", |b| {
        b.iter(|| black_box(GbdtRegressor::fit(&x, &y, &GbdtConfig::default())));
    });
    c.bench_function("svm_train_200x3", |b| {
        b.iter(|| black_box(MultiSvm::fit(&x, &labels, 3, &SvmConfig::default())));
    });
}

fn bench_vendor_asm(c: &mut Criterion) {
    let e = click_model::elements::mazunat();
    c.bench_function("nfcc_compile_mazunat", |b| {
        b.iter(|| black_box(nfcc::compile_module(&e.module)));
    });
}

criterion_group!(
    benches,
    bench_nfcc_compile,
    bench_interpreter,
    bench_lstm_inference,
    bench_ilp,
    bench_perf_model,
    bench_synthesis,
    bench_profiling,
    bench_training,
    bench_vendor_asm
);
criterion_main!(benches);
