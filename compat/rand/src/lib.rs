//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships a small, dependency-free replacement that
//! covers exactly the API surface the other crates use: [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — fast, well-distributed for simulation
//! workloads, and fully deterministic from its 64-bit seed, which is all
//! the corpus synthesis, model training, and traffic generation here
//! require. Streams differ from upstream `rand`'s ChaCha-based `StdRng`,
//! but every consumer in this workspace only relies on determinism and
//! uniformity, never on a specific stream.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Non-deterministic construction (time-derived; no OS entropy in the
    /// offline environment).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // One warm-up mix so that nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    /// Alias: the small generator is the standard one here.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience constructor mirroring `rand::thread_rng` (seeded from the
/// clock; prefer `StdRng::seed_from_u64` for reproducibility).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
