//! Offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates.io, so this workspace ships
//! a small self-contained serialization framework under the same crate
//! name. It is **not** wire-compatible with upstream serde — it defines
//! its own [`Value`] tree and a pair of traits ([`Serialize`],
//! [`Deserialize`]) that `#[derive(Serialize, Deserialize)]` (from the
//! sibling `serde_derive` proc-macro crate) implements for structs and
//! enums. The sibling `serde_json` crate renders a [`Value`] as JSON text
//! and parses it back, which is all `Clara::save`/`Clara::load` and the
//! IR round-trip tests need.
//!
//! Encoding conventions (chosen so that the derive stays simple and the
//! output remains valid JSON):
//!
//! - named-field structs → object `{"field": value, ...}`;
//! - tuple structs → array of fields (`[v0, v1]`), including newtypes;
//! - unit enum variants → string `"Variant"`;
//! - data-carrying variants → single-key object `{"Variant": payload}`
//!   with the payload encoded like the matching struct flavour;
//! - maps (`BTreeMap`/`HashMap`) → array of `[key, value]` pairs, so
//!   non-string keys (tuple-struct ids, enums) need no special casing.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// The self-describing serialization tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (also carries unsigned values ≤ `i64::MAX`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// String-keyed map (struct fields, enum payloads).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialization tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by the derive expansion ------------------------------

/// Extracts a named struct field (derive helper).
///
/// # Errors
///
/// Returns an error if the field is missing or mistyped.
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(f) => T::from_value(f)
            .map_err(|e| Error(format!("field `{name}`: {}", e.0))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error(format!("missing field `{name}` in {}", v.kind()))),
    }
}

/// Extracts a positional tuple-struct / tuple-variant field (derive helper).
///
/// # Errors
///
/// Returns an error if the element is missing or mistyped.
pub fn from_index<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
    match v {
        Value::Seq(items) => match items.get(i) {
            Some(f) => T::from_value(f).map_err(|e| Error(format!("element {i}: {}", e.0))),
            None => Err(Error(format!("sequence too short: no element {i}"))),
        },
        // A 1-tuple may have been flattened by hand-written values.
        other if i == 0 => T::from_value(other),
        other => Err(Error(format!("expected sequence, got {}", other.kind()))),
    }
}

/// Splits an encoded enum into `(variant name, payload)` (derive helper).
///
/// # Errors
///
/// Returns an error if the value is neither a variant string nor a
/// single-key object.
pub fn variant(v: &Value) -> Result<(&str, &Value), Error> {
    match v {
        Value::Str(name) => Ok((name.as_str(), &Value::Null)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), &entries[0].1))
        }
        other => Err(Error(format!(
            "expected enum variant, got {}",
            other.kind()
        ))),
    }
}

// ---- primitive impls ---------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("{} out of range for {}", i, stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("{} out of range for {}", u, stringify!($t)))),
                    other => Err(Error(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error(format!("{} out of range for {}", i, stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("{} out of range for {}", u, stringify!($t)))),
                    other => Err(Error(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(f64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // Non-finite floats are rendered as strings by serde_json.
                    Value::Str(s) => match s.as_str() {
                        "NaN" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(Error(format!("expected number, got string {s:?}"))),
                    },
                    other => Err(Error(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!("expected char, got {}", other.kind()))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, got {}", other.kind()))),
        }
    }
}

// ---- containers --------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            // Wrap in a 1-element sequence so Some(None) stays distinguishable.
            Some(x) => Value::Seq(vec![x.to_value()]),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            Value::Seq(items) if items.len() == 1 => Ok(Some(T::from_value(&items[0])?)),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected {N}-element array, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => Ok(($(
                        $t::from_value(items.get($n).ok_or_else(|| {
                            Error(format!("tuple too short at {}", $n))
                        })?)?,
                    )+)),
                    other => Err(Error(format!(
                        "expected tuple sequence, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    it: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        it.map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Seq(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(Error(format!(
                    "expected [key, value] pair, got {}",
                    other.kind()
                ))),
            })
            .collect(),
        other => Err(Error(format!("expected map pairs, got {}", other.kind()))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: order by the rendered key.
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| cmp_value(&a.0, &b.0));
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(cmp_value);
        Value::Seq(items)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(v)?.into_iter().collect())
    }
}

/// Total order over values, used to canonicalize hash-container output.
fn cmp_value(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::UInt(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Seq(_) => 5,
            Value::Map(_) => 6,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::UInt(x), Value::UInt(y)) => x.cmp(y),
        (Value::Int(x), Value::UInt(_)) if *x < 0 => Ordering::Less,
        (Value::Int(x), Value::UInt(y)) => (*x as u64).cmp(y),
        (Value::UInt(_), Value::Int(y)) if *y < 0 => Ordering::Greater,
        (Value::UInt(x), Value::Int(y)) => x.cmp(&(*y as u64)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (i, j) in x.iter().zip(y.iter()) {
                let o = cmp_value(i, j);
                if o != Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((ka, va), (kb, vb)) in x.iter().zip(y.iter()) {
                let o = ka.cmp(kb).then_with(|| cmp_value(va, vb));
                if o != Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
