//! Derive macros for the offline `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! non-generic structs and enums by walking the raw
//! [`proc_macro::TokenStream`] — no `syn`/`quote`, since the build
//! environment cannot fetch crates.io. The generated code targets the
//! sibling `serde` crate's `Value`-tree traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field list flavour.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// The parsed derive input.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips outer attributes (`#[...]`) starting at `i`; returns new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...); returns new index.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Skips a type (or discriminant expression) until a top-level comma,
/// tracking `<`/`>` nesting depth; returns the index of the comma or end.
fn skip_until_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses a named-field group body into field names.
fn parse_named(group: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        if i >= group.len() {
            break;
        }
        i = skip_vis(group, i);
        let TokenTree::Ident(name) = &group[i] else {
            panic!("serde_derive: expected field name, got {:?}", group[i]);
        };
        fields.push(name.to_string());
        i += 1;
        assert!(is_punct(&group[i], ':'), "serde_derive: expected `:`");
        i = skip_until_comma(group, i + 1);
        i += 1; // past the comma (or end)
    }
    fields
}

/// Counts fields of a tuple group body.
fn parse_tuple(group: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        if i >= group.len() {
            break;
        }
        i = skip_vis(group, i);
        if i >= group.len() {
            break;
        }
        count += 1;
        i = skip_until_comma(group, i);
        i += 1;
    }
    count
}

fn group_tokens(t: &TokenTree) -> Vec<TokenTree> {
    match t {
        TokenTree::Group(g) => g.stream().into_iter().collect(),
        other => panic!("serde_derive: expected a group, got {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected a name, got {other:?}"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive: generic types are not supported by the offline serde stand-in");
    }
    match kind.as_str() {
        "struct" => {
            let fields = if i >= tokens.len() || is_punct(&tokens[i], ';') {
                Fields::Unit
            } else {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named(&group_tokens(&tokens[i])))
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(parse_tuple(&group_tokens(&tokens[i])))
                    }
                    other => panic!("serde_derive: unexpected struct body {other:?}"),
                }
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = group_tokens(&tokens[i]);
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs(&body, j);
                if j >= body.len() {
                    break;
                }
                let TokenTree::Ident(vname) = &body[j] else {
                    panic!("serde_derive: expected variant name, got {:?}", body[j]);
                };
                let vname = vname.to_string();
                j += 1;
                let fields = if j < body.len() {
                    match &body[j] {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            let f = Fields::Named(parse_named(&group_tokens(&body[j])));
                            j += 1;
                            f
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                            let f = Fields::Tuple(parse_tuple(&group_tokens(&body[j])));
                            j += 1;
                            f
                        }
                        _ => Fields::Unit,
                    }
                } else {
                    Fields::Unit
                };
                // Skip an optional discriminant and the separating comma.
                j = skip_until_comma(&body, j);
                j += 1;
                variants.push((vname, fields));
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

// ---- Serialize ---------------------------------------------------------

/// Generates `impl Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({binds}) => \
                             ::serde::Value::Map(::std::vec![(\
                                ::std::string::String::from(\"{vname}\"), \
                                ::serde::Value::Seq(::std::vec![{vals}]))]),",
                            binds = binds.join(", "),
                            vals = vals.join(", "),
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => \
                             ::serde::Value::Map(::std::vec![(\
                                ::std::string::String::from(\"{vname}\"), \
                                ::serde::Value::Map(::std::vec![{entries}]))]),",
                            entries = entries.join(", "),
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

// ---- Deserialize -------------------------------------------------------

/// Generates `impl Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_field(v, \"{f}\")?"))
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::from_index(v, {k})?"))
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    ),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::from_index(payload, {k})?"))
                            .collect();
                        format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                             {name}::{vname}({})),",
                            inits.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| format!("{f}: ::serde::from_field(payload, \"{f}\")?"))
                            .collect();
                        format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                             {name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let (variant_name, payload) = ::serde::variant(v)?;\n\
                         let _ = payload;\n\
                         match variant_name {{\n{}\n\
                             other => ::std::result::Result::Err(::serde::Error(\
                                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}
