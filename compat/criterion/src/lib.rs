//! Offline stand-in for `criterion`.
//!
//! Provides the tiny API surface the workspace benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each bench runs a
//! short calibration pass, then enough iterations to fill a fixed
//! measurement window, and prints mean wall-clock time per iteration.
//! There is no statistical analysis, HTML report, or baseline storage.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(400);

/// Benchmark registry/driver handed to each group function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Upstream parses CLI filters here; the stand-in runs everything.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Measures `f` (which calls [`Bencher::iter`]) and prints the result.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / u32::try_from(b.iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        println!("bench {id:<32} {:>12} iters  {per_iter:>12.3?}/iter", b.iters);
        self
    }
}

/// Timing handle passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find how many iterations fit in the window.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let target = (MEASURE_WINDOW.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }
}

/// Declares a group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($bench(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
