//! Offline stand-in for `proptest`.
//!
//! Deterministic random-input property testing with the strategy
//! combinators this workspace actually uses: ranges, tuples, [`Just`],
//! `prop_map`, `prop_flat_map`, [`prop_oneof!`], `collection::vec`,
//! `sample::select`, and simple regex-like string patterns
//! (`".{0,400}"`, `"[ -~]{0,30}"`). No shrinking and no failure
//! persistence: a failing case panics with the ordinary assertion
//! message, and every run draws the same deterministic case sequence
//! (seeded from the test body's location), so failures reproduce
//! exactly by re-running the test.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic seed for a named test (FNV-1a over the name).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds the per-test RNG (used by the `proptest!` expansion).
pub fn rng_for(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy drawing uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// The macro behind `proptest! { ... }` blocks.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by test
/// functions whose arguments use `name in strategy` syntax. Each function
/// expands to a plain `#[test]` (the attribute is written by the caller,
/// as with upstream proptest) running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); ) => {};
    (@expand ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $strat;)*
            let strategies = ($($arg,)*);
            #[allow(non_snake_case)]
            let ($(ref $arg,)*) = strategies;
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate($arg, &mut rng);)*
                $body
            }
        }
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assertion macro mirroring `proptest::prop_assert!` (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion macro mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assertion macro mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among same-valued strategies, mirroring `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
