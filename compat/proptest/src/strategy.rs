//! Strategy trait and combinators for the offline proptest stand-in.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (re-draws, bounded attempts).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 draws: {}", self.whence);
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` expansion).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.arms[rng.gen_range(0..self.arms.len())].generate(rng)
    }
}

// ---- ranges ------------------------------------------------------------

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- tuples ------------------------------------------------------------

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
}

// ---- string patterns ---------------------------------------------------

/// One atom of the simplified pattern grammar.
enum Atom {
    /// Any printable ASCII character (`.`).
    AnyPrintable,
    /// An explicit character set (`[ -~]`, `[abc]`, `[a-z0-9]`).
    Set(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

/// `(atom, min repeats, max repeats)` — from `{lo,hi}` or exactly once.
type Piece = (Atom, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyPrintable
            }
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pat:?}"));
                let body = &chars[i + 1..close];
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        set.push((body[j], body[j + 2]));
                        j += 3;
                    } else if j + 2 == body.len() && body[j + 1] == '-' {
                        // Trailing `-` is a literal.
                        set.push((body[j], body[j]));
                        set.push(('-', '-'));
                        j += 2;
                    } else {
                        set.push((body[j], body[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Set(set)
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| {
                    panic!("dangling escape in pattern {pat:?}")
                });
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional {lo,hi} / {n} repetition.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("pattern repeat lower bound"),
                    b.trim().parse().expect("pattern repeat upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("pattern repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push((atom, lo, hi));
    }
    pieces
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::AnyPrintable => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
        Atom::Lit(c) => *c,
        Atom::Set(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(a, b)| b as u32 - a as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(a, b) in ranges {
                let span = b as u32 - a as u32 + 1;
                if pick < span {
                    return char::from_u32(a as u32 + pick).unwrap();
                }
                pick -= span;
            }
            unreachable!("set selection out of bounds")
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &pieces {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                out.push(gen_atom(atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn patterns_generate_within_spec() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = ".{0,400}".generate(&mut rng);
            assert!(s.len() <= 400);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let t = "[ -~]{0,30}".generate(&mut rng);
            assert!(t.chars().count() <= 30);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = "[a-c]{2}x".generate(&mut rng);
            assert_eq!(u.chars().count(), 3);
            assert!(u.ends_with('x'));
        }
    }

    #[test]
    fn oneof_union_hits_every_arm() {
        let mut rng = TestRng::seed_from_u64(2);
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n..=n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
