//! Offline stand-in for `serde_json`.
//!
//! Renders the offline `serde` stand-in's [`Value`] tree as JSON text and
//! parses it back. The encoding is plain JSON: every tree this crate
//! emits is valid JSON, and [`from_str`] accepts any JSON document
//! (objects become [`Value::Map`], arrays [`Value::Seq`]). Floats are
//! printed with Rust's shortest round-trip formatting, so
//! serialize → parse → deserialize reproduces every finite `f64`
//! bit-exactly; non-finite floats are encoded as the strings `"NaN"`,
//! `"inf"`, and `"-inf"` (the `serde` float impls decode them).

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Infallible for the value model in this workspace; the `Result` shape
/// mirrors upstream `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Infallible; mirrors upstream's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or on a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

/// Parses a JSON string into a raw [`Value`].
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---- rendering ---------------------------------------------------------

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => render_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(k, out);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

fn render_pretty(v: &Value, out: &mut String, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        for _ in 0..d {
            out.push_str("  ");
        }
    };
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, depth + 1);
                render_pretty(item, out, depth + 1);
            }
            out.push('\n');
            pad(out, depth);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, depth + 1);
                render_str(k, out);
                out.push_str(": ");
                render_pretty(item, out, depth + 1);
            }
            out.push('\n');
            pad(out, depth);
            out.push('}');
        }
        other => render(other, out),
    }
}

fn render_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("\"NaN\"");
    } else if f == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if f == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        // `{:?}` is Rust's shortest representation that round-trips the
        // exact bits; it always contains '.', 'e', or is integral-looking,
        // all of which are valid JSON numbers.
        let _ = write!(out, "{f:?}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "-17", "18446744073709551615"] {
            let v = parse_value(json).expect(json);
            let mut out = String::new();
            render(&v, &mut out);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MAX, 4.9e-324] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} via {s}");
        }
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}f → λ";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn containers_round_trip() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<(u32, u8), Vec<f64>> = BTreeMap::new();
        m.insert((7, 1), vec![1.5, -0.25]);
        m.insert((2, 9), vec![]);
        let json = to_string(&m).unwrap();
        let back: BTreeMap<(u32, u8), Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, m);

        let opt: Vec<Option<Option<u8>>> = vec![None, Some(None), Some(Some(3))];
        let json = to_string(&opt).unwrap();
        let back: Vec<Option<Option<u8>>> = from_str(&json).unwrap();
        assert_eq!(back, opt);
    }

    #[test]
    fn malformed_input_errors_without_panic() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "nul", "1.2.3", "[}]"] {
            assert!(parse_value(bad).is_err(), "{bad:?} should fail");
        }
    }
}
