//! The `clara cache-verify` CLI path, end to end as a subprocess.
//!
//! ISSUE satellite: corrupt an artifact on disk and assert the CLI
//! exits with the dedicated cache-corruption code (4) and names the
//! damage loudly, while a healthy cache and a missing configuration
//! both exit 0.

use std::path::PathBuf;
use std::process::Command;

use clara_repro::clara::engine::{self, Engine, EngineOptions};
use clara_repro::nicsim::{NicConfig, PortConfig};
use clara_repro::trafgen::WorkloadSpec;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clara-cli-verify-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn cache_verify(dir: Option<&PathBuf>) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_clara"));
    cmd.arg("cache-verify");
    match dir {
        Some(d) => cmd.env("CLARA_CACHE_DIR", d),
        None => cmd.env_remove("CLARA_CACHE_DIR"),
    };
    cmd.output().expect("spawn clara cache-verify")
}

/// Profiles a couple of corpus elements with the disk cache pointed at
/// `dir`, then restores default engine options.
fn populate(dir: &PathBuf) {
    engine::configure(&EngineOptions::builder().workers(1).cache_dir(dir).build());
    Engine::new().clear_caches();
    let modules: Vec<_> = ["aggcounter", "cmsketch"]
        .iter()
        .map(|name| {
            clara_repro::click::corpus()
                .into_iter()
                .find(|e| e.name() == *name)
                .expect("known corpus element")
                .module
        })
        .collect();
    engine::profile_matrix(
        &modules,
        &[WorkloadSpec::large_flows()],
        40,
        9,
        &PortConfig::naive(),
        &NicConfig::default(),
    );
    engine::configure(&EngineOptions::default());
}

#[test]
fn missing_cache_configuration_exits_zero() {
    let out = cache_verify(None);
    assert_eq!(out.status.code(), Some(0), "no cache dir is not an error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no persistent cache configured"),
        "CLI must say why there was nothing to verify: {stderr}"
    );
}

#[test]
fn corrupt_artifact_exits_four_and_is_named_loudly() {
    let dir = tmp_dir("corrupt");
    populate(&dir);

    // Healthy cache first: exit 0 and a clean scan summary.
    let out = cache_verify(Some(&dir));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "healthy cache must verify clean (stdout: {stdout})"
    );
    assert!(stdout.contains("0 corrupt"), "clean summary expected: {stdout}");

    // Flip one byte in one artifact's body; the header checksum now
    // disagrees with the content.
    let victim = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("clc"))
        .expect("populate stored at least one artifact");
    let raw = std::fs::read_to_string(&victim).expect("artifact readable");
    let (header, body) = raw.split_once('\n').expect("artifact has a header");
    let mut bytes = body.as_bytes().to_vec();
    let last = bytes.len() - 1;
    bytes[last] = if bytes[last] == b'}' { b')' } else { b'}' };
    std::fs::write(
        &victim,
        format!("{header}\n{}", String::from_utf8_lossy(&bytes)),
    )
    .expect("rewrite artifact");

    let out = cache_verify(Some(&dir));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(4),
        "corruption must map to the dedicated exit code (stdout: {stdout}, stderr: {stderr})"
    );
    assert!(
        stdout.contains("scanned") && stdout.contains("1 corrupt"),
        "scan summary must count the damage: {stdout}"
    );
    assert!(
        stderr.contains("corrupt:") && stderr.contains(victim.file_name().unwrap().to_str().unwrap()),
        "the corrupt artifact must be named on stderr: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
