//! Cross-crate integration: every corpus element flows through the whole
//! substrate stack (IR → vendor compiler → interpreter → profiler →
//! performance model) without inconsistency.

use clara_repro::nicsim::{self, NicConfig, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

#[test]
fn corpus_flows_through_the_full_stack() {
    let cfg = NicConfig::default();
    let specs = [
        WorkloadSpec::large_flows(),
        WorkloadSpec::small_flows().with_flows(1024),
        WorkloadSpec::imix(),
    ];
    for e in clara_repro::click::corpus() {
        // Vendor compiler produces nonempty code for every block.
        let nic = clara_repro::nfcc::compile_module(&e.module);
        for (i, b) in nic.handler().blocks.iter().enumerate() {
            assert!(
                b.issue_cycles() > 0,
                "{} bb{i} compiled to nothing",
                e.name()
            );
        }
        for (si, spec) in specs.iter().enumerate() {
            let trace = Trace::generate(spec, 150, si as u64 + 1);
            let wp =
                nicsim::profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, |_| {});
            assert!(wp.compute > 0.0, "{} has no compute cost", e.name());
            let p1 = nicsim::solve_perf(&wp, &cfg, &PortConfig::naive(), 1);
            let p60 = nicsim::solve_perf(&wp, &cfg, &PortConfig::naive(), 60);
            assert!(
                p60.throughput_mpps >= p1.throughput_mpps,
                "{}: more cores lost throughput ({} vs {})",
                e.name(),
                p60.throughput_mpps,
                p1.throughput_mpps
            );
            assert!(p1.latency_us > 0.0 && p1.latency_us.is_finite());
        }
    }
}

#[test]
fn throughput_is_monotone_in_cores_for_every_element() {
    let cfg = NicConfig::default();
    let trace = Trace::generate(&WorkloadSpec::large_flows(), 200, 9);
    for e in clara_repro::click::corpus().into_iter().take(6) {
        let wp = nicsim::profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, |_| {});
        let mut last = 0.0;
        for cores in [1u32, 2, 4, 8, 16, 32, 60] {
            let p = nicsim::solve_perf(&wp, &cfg, &PortConfig::naive(), cores);
            assert!(
                p.throughput_mpps >= last - 1e-9,
                "{}: non-monotone at {cores} cores",
                e.name()
            );
            last = p.throughput_mpps;
        }
    }
}

#[test]
fn cls_placement_of_small_state_never_hurts() {
    // CLS is strictly faster than every other path (including the EMEM
    // cache), so moving small structures there must not worsen latency.
    // (IMEM is *not* universally better than EMEM: cache-resident DRAM
    // state can be faster — the Section 5.8 expert insight.)
    use clara_repro::nicsim::MemLevel;
    let cfg = NicConfig::default();
    let trace = Trace::generate(&WorkloadSpec::small_flows().with_flows(2048), 400, 3);
    for name in ["aggcounter", "udpcount", "timefilter"] {
        let e = clara_repro::click::corpus()
            .into_iter()
            .find(|e| e.name() == name)
            .expect("known element");
        let wp = nicsim::profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, |_| {});
        let naive = nicsim::solve_perf(&wp, &cfg, &PortConfig::naive(), 16);
        let mut fast_port = PortConfig::naive();
        for g in &e.module.globals {
            if g.total_bytes() <= cfg.level(MemLevel::Cls).capacity / 4 {
                fast_port = fast_port.place(g.id, MemLevel::Cls);
            }
        }
        let fast = nicsim::solve_perf(&wp, &cfg, &fast_port, 16);
        assert!(
            fast.latency_us <= naive.latency_us + 1e-9,
            "{name}: faster placement raised latency ({} vs {})",
            fast.latency_us,
            naive.latency_us
        );
    }
}

#[test]
fn interpreter_and_static_analysis_agree_on_structure() {
    // Blocks visited at runtime are a subset of the blocks the static
    // analysis knows, for every element and workload.
    let trace = Trace::generate(&WorkloadSpec::imix(), 60, 4);
    for e in clara_repro::click::corpus() {
        let prepared = clara_repro::clara::prepare_module(&e.module);
        let known: std::collections::HashSet<u32> =
            prepared.blocks.iter().map(|b| b.id.0).collect();
        let mut machine = clara_repro::click::Machine::new(&e.module).expect("verifies");
        for p in &trace.pkts {
            let t = machine.run(p).expect("runs");
            for b in t.block_visits() {
                assert!(known.contains(&b.0), "{}: unknown block {}", e.name(), b.0);
            }
        }
    }
}
