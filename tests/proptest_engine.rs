//! Property test: the engine's profile cache is invisible to callers.
//!
//! For any synthesized NF, trace, and port, a cache-miss `profile_cached`
//! call, the subsequent cache-hit call, and a direct `profile_workload`
//! all return the same `WorkloadProfile`.

use proptest::prelude::*;

use clara_repro::clara::engine;
use clara_repro::nicsim::{self, NicConfig, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cache_hit_equals_cache_miss_equals_direct(seed in 0u64..3000) {
        let m = clara_repro::synth::synth_corpus(1, true, seed).remove(0);
        let trace = Trace::generate(&WorkloadSpec::imix(), 60, seed);
        let cfg = NicConfig::default();
        let port = PortConfig::naive();

        engine::clear_caches();
        let stats0 = engine::EngineStats::snapshot();
        let direct = nicsim::profile_workload(&m, &trace, &port, &cfg, |_| {});
        let miss = engine::profile_cached(&m, &trace, &port, &cfg);
        let hit = engine::profile_cached(&m, &trace, &port, &cfg);
        let stats1 = engine::EngineStats::snapshot();

        prop_assert_eq!(&direct, &miss, "cache miss diverged from direct profiling");
        prop_assert_eq!(&miss, &hit, "cache hit diverged from cache miss");
        prop_assert!(stats1.profile_hits > stats0.profile_hits, "second call did not hit");
        prop_assert!(stats1.profile_misses > stats0.profile_misses, "first call did not miss");
    }
}
