//! Property tests for the engine: cache transparency and fault-injection
//! determinism.
//!
//! For any synthesized NF, trace, and port, a cache-miss `profile_cached`
//! call, the subsequent cache-hit call, and a direct `profile_workload`
//! all return the same `WorkloadProfile`. And for *any* seeded
//! [`engine::FaultPlan`] whose fault depth stays within the retry budget,
//! a faulted stage produces output bit-identical to a fault-free run.

use std::sync::Mutex;

use proptest::prelude::*;

use clara_repro::clara::engine::{self, EngineOptions, FaultPlan};
use clara_repro::nicsim::{self, NicConfig, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

/// The engine configuration and caches are process globals; tests in this
/// binary serialize on this lock.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cache_hit_equals_cache_miss_equals_direct(seed in 0u64..3000) {
        let _g = ENGINE_LOCK.lock().unwrap();
        let m = clara_repro::synth::synth_corpus(1, true, seed).remove(0);
        let trace = Trace::generate(&WorkloadSpec::imix(), 60, seed);
        let cfg = NicConfig::default();
        let port = PortConfig::naive();

        let eng = engine::Engine::new();
        eng.clear_caches();
        let stats0 = engine::EngineStats::snapshot();
        let direct = nicsim::profile_workload(&m, &trace, &port, &cfg, |_| {});
        let miss = eng.profile_cached(&m, &trace, &port, &cfg);
        let hit = eng.profile_cached(&m, &trace, &port, &cfg);
        let stats1 = engine::EngineStats::snapshot();

        prop_assert_eq!(&direct, &miss, "cache miss diverged from direct profiling");
        prop_assert_eq!(&miss, &hit, "cache hit diverged from cache miss");
        prop_assert!(stats1.profile_hits > stats0.profile_hits, "second call did not hit");
        prop_assert!(stats1.profile_misses > stats0.profile_misses, "first call did not miss");
    }

    /// ISSUE acceptance, generalized: for ANY plan seed and rate, faults
    /// whose depth stays within the retry budget leave stage output
    /// bit-identical to a fault-free run — the failure list is empty and
    /// the serialized results fingerprint-match.
    #[test]
    fn any_fault_plan_within_retry_budget_is_invisible(
        plan_seed in 0u64..100_000,
        rate in 0.0f64..=1.0,
        workers in 1usize..=4,
    ) {
        let _g = ENGINE_LOCK.lock().unwrap();
        let items: Vec<u64> = (0..48).collect();
        let work = |i: usize, x: &u64| x.wrapping_mul(0x9e3779b97f4a7c15) ^ i as u64;

        engine::configure(&EngineOptions::default());
        let clean = engine::try_par_map("proptest-faults", &items, work);
        prop_assert!(clean.is_complete());
        let clean: Vec<u64> = clean.successes();

        // depth 2 ≤ retries 2: every selected task faults on its first
        // two attempts and must succeed on the third.
        let plan = { let mut p = FaultPlan::new(plan_seed, rate); p.depth = 2; p };
        engine::configure(
            &EngineOptions::builder().workers(workers).retries(2).faults(plan).build(),
        );
        let faulted = engine::try_par_map("proptest-faults", &items, work);
        engine::configure(&EngineOptions::default());

        prop_assert!(
            faulted.failures.is_empty(),
            "within-budget faults must retry out: {:?}",
            faulted.failures
        );
        let faulted: Vec<u64> = faulted.successes();
        prop_assert_eq!(
            engine::value_fingerprint(&faulted),
            engine::value_fingerprint(&clean),
            "faulted stage output diverged from fault-free run"
        );
    }
}
