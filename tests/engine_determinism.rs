//! The engine's parallel execution is bit-identical to a serial run.
//!
//! ISSUE requirement: for 3 corpus elements × 2 workloads × 2 seeds, the
//! outputs computed with a multi-worker pool must equal — bit for bit —
//! the outputs of the same computation on a single worker. Determinism
//! comes from index-assigned tasks and order-restoring merges, not from
//! luck: these tests run both modes in one process (via
//! [`engine::set_threads`]) and compare both the values and their
//! serialized fingerprints.

use std::sync::Mutex;

use clara_repro::clara::engine;
use clara_repro::clara::predict::block_samples;
use clara_repro::clara::scaleout::training_set;
use clara_repro::ir::Module;
use clara_repro::nicsim::{NicConfig, PortConfig};
use clara_repro::trafgen::WorkloadSpec;

/// `set_threads` is a process global; tests in this binary run on
/// separate threads, so every test that flips it holds this lock.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Three corpus elements of different character: CRC loops, plain
/// stateful counting, and an LPM table.
fn elements() -> Vec<Module> {
    ["cmsketch", "aggcounter", "mazunat"]
        .iter()
        .map(|name| {
            clara_repro::click::corpus()
                .into_iter()
                .find(|e| e.name() == *name)
                .expect("known corpus element")
                .module
        })
        .collect()
}

/// Runs `f` serially, then with a 4-worker pool, caches cleared in
/// between, and returns both results.
fn serial_then_parallel<R>(f: impl Fn() -> R) -> (R, R) {
    engine::set_threads(1);
    engine::Engine::new().clear_caches();
    let serial = f();
    engine::set_threads(4);
    engine::Engine::new().clear_caches();
    let parallel = f();
    engine::set_threads(0); // back to CLARA_THREADS / machine default
    (serial, parallel)
}

#[test]
fn profile_matrix_is_bit_identical_across_worker_counts() {
    let _g = THREADS_LOCK.lock().unwrap();
    let modules = elements();
    let workloads = [
        WorkloadSpec::large_flows(),
        WorkloadSpec::small_flows().with_flows(512),
    ];
    let cfg = NicConfig::default();
    let port = PortConfig::naive();
    for seed in [11u64, 42] {
        let (serial, parallel) = serial_then_parallel(|| {
            engine::profile_matrix(&modules, &workloads, 120, seed, &port, &cfg)
        });
        assert_eq!(serial.len(), modules.len() * workloads.len());
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s, p, "profile cell {i} diverged for seed {seed}");
            // Bit-identical serialized form, not just PartialEq.
            assert_eq!(
                engine::value_fingerprint(s),
                engine::value_fingerprint(p),
                "profile cell {i} fingerprint diverged for seed {seed}"
            );
        }
    }
}

#[test]
fn block_samples_are_bit_identical_across_worker_counts() {
    let _g = THREADS_LOCK.lock().unwrap();
    for seed in [3u64, 8] {
        let modules = clara_repro::synth::synth_corpus(10, true, seed);
        let (serial, parallel) = serial_then_parallel(|| block_samples(&modules));
        assert_eq!(serial, parallel, "block samples diverged for seed {seed}");
    }
}

#[test]
fn scaleout_training_set_is_bit_identical_across_worker_counts() {
    let _g = THREADS_LOCK.lock().unwrap();
    let cfg = NicConfig::default();
    for seed in [5u64, 21] {
        let (serial, parallel) = serial_then_parallel(|| training_set(6, seed, &cfg));
        assert_eq!(serial.x, parallel.x, "features diverged for seed {seed}");
        assert_eq!(serial.y, parallel.y, "labels diverged for seed {seed}");
    }
}

#[test]
fn trained_pipeline_is_bit_identical_across_worker_counts() {
    use clara_repro::clara::{Clara, ClaraConfig};
    let _g = THREADS_LOCK.lock().unwrap();
    let cfg = ClaraConfig::fast(17)
        .to_builder()
        .predict_programs(12)
        .algid_per_class(8)
        .scaleout_programs(4)
        .epochs(4)
        .build();
    let (serial, parallel) = serial_then_parallel(|| Clara::train(&cfg).expect("train"));
    // Whole-model comparison via the serialized form: every weight of
    // every sub-model must match bit for bit.
    assert_eq!(
        engine::value_fingerprint(&serial),
        engine::value_fingerprint(&parallel),
        "trained pipeline diverged between 1 and 4 workers"
    );
}

#[test]
fn deterministic_run_report_is_byte_identical_across_worker_counts() {
    let _g = THREADS_LOCK.lock().unwrap();
    let modules = elements();
    let workloads = [WorkloadSpec::large_flows()];
    let cfg = NicConfig::default();
    let port = PortConfig::naive();
    // One full telemetry capture per worker count: same work-derived
    // counters and span tree, so the deterministic rendering (volatile
    // metrics and timestamps stripped, siblings sorted) must not change
    // by a single byte.
    let capture = |threads: usize| {
        engine::set_threads(threads);
        engine::Engine::new().clear_caches();
        clara_repro::obs::enable();
        clara_repro::obs::reset();
        let profiles = engine::profile_matrix(&modules, &workloads, 80, 7, &port, &cfg);
        assert_eq!(profiles.len(), modules.len());
        let json = clara_repro::obs::RunReport::capture().to_json_deterministic();
        clara_repro::obs::disable();
        json
    };
    let serial = capture(1);
    let parallel = capture(4);
    engine::set_threads(0);
    assert!(serial.contains("nicsim.profile_runs"), "{serial}");
    assert!(serial.contains("nfcc.modules_compiled"), "{serial}");
    assert_eq!(
        serial, parallel,
        "deterministic run report diverged between 1 and 4 workers"
    );
}

/// ISSUE acceptance: with a seeded fault plan whose faults all stay
/// within the retry budget, the trained pipeline is bit-identical to a
/// fault-free run — at one worker and at four. Injection decisions hash
/// `(seed, stage, index, attempt)`, never wall-clock or scheduling, and
/// an injected fault fires *before* the task body runs, so a retried
/// attempt replays the exact same pure computation.
#[test]
fn faulted_training_within_retry_budget_is_bit_identical_to_fault_free() {
    use clara_repro::clara::engine::{EngineOptions, FaultPlan};
    use clara_repro::clara::{Clara, ClaraConfig};
    let _g = THREADS_LOCK.lock().unwrap();
    let small = |engine: EngineOptions| {
        ClaraConfig::fast(29)
            .to_builder()
            .predict_programs(10)
            .algid_per_class(6)
            .scaleout_programs(3)
            .epochs(3)
            .engine(engine)
            .build()
    };
    // depth 2 ≤ retries 2: every selected task faults twice, then its
    // third attempt succeeds — nothing fails permanently.
    let plan = { let mut p = FaultPlan::new(61, 0.35); p.depth = 2; p };
    let faulted_opts = EngineOptions::builder().retries(2).faults(plan).build();

    engine::set_threads(1);
    engine::Engine::new().clear_caches();
    let clean = Clara::train(&small(EngineOptions::default())).expect("fault-free train");
    let clean_fp = engine::value_fingerprint(&clean);

    for threads in [1usize, 4] {
        engine::set_threads(threads);
        engine::Engine::new().clear_caches();
        let faulted = Clara::train(&small(faulted_opts.clone()))
            .expect("within-budget faults must retry out");
        let stats = engine::EngineStats::snapshot();
        assert!(
            stats.faults_injected > 0,
            "a 35% plan must inject something at {threads} worker(s)"
        );
        assert_eq!(
            engine::value_fingerprint(&faulted),
            clean_fp,
            "faulted pipeline diverged from fault-free run at {threads} worker(s)"
        );
    }
    // Restore the default engine configuration for the other tests.
    engine::configure(&EngineOptions::default());
    engine::set_threads(0);
}

#[test]
fn par_map_preserves_input_order() {
    let _g = THREADS_LOCK.lock().unwrap();
    engine::set_threads(4);
    let items: Vec<u64> = (0..257).collect();
    let out = engine::par_map("order-test", &items, |i, &x| (i as u64, x * x));
    engine::set_threads(0);
    for (i, (idx, sq)) in out.iter().enumerate() {
        assert_eq!(*idx, i as u64);
        assert_eq!(*sq, (i as u64) * (i as u64));
    }
}
