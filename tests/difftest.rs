//! Seed-pinned regression suite for the `clara difftest` oracle.
//!
//! Each fixed miscompile class gets a hand-written NIR module pinned as
//! a golden file under `tests/golden/difftest/`; the test asserts both
//! that the printed IR is stable and that all three execution layers
//! (reference executor, interpreter, optimized-module interpreter)
//! still agree on it. The shrinker's minimized output for the injected
//! smoke divergence is pinned the same way.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```sh
//! CLARA_BLESS=1 cargo test --test difftest
//! ```

use std::path::Path;

use clara_repro::clara::difftest::{self, DifftestConfig, Injection};
use clara_repro::ir::{
    print, ApiCall, BinOp, CastOp, FunctionBuilder, MemRef, Module, Operand, PktField, Pred,
    StateKind, Ty,
};

fn golden_path(name: &str) -> String {
    format!(
        "{}/tests/golden/difftest/{name}.nir",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Pins `module` under `tests/golden/difftest/<name>.nir` and asserts
/// the parsed golden replays with no divergence across all layers.
fn pin_and_replay(name: &str, module: &Module) {
    let path = golden_path(name);
    let got = print::module(module);
    if std::env::var("CLARA_BLESS").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
    } else {
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{path}: {e}; regenerate with CLARA_BLESS=1 cargo test --test difftest")
        });
        assert_eq!(
            got, want,
            "{name}: printed IR changed; if intentional, regenerate with \
             CLARA_BLESS=1 cargo test --test difftest"
        );
    }
    // Replay the on-disk artifact exactly as `clara difftest --replay`
    // does: parse, then run the three-layer oracle.
    let div = difftest::replay(Path::new(&path), 32, 0xd1f7, None).expect("golden parses");
    assert!(
        div.is_none(),
        "{name}: golden module diverges: {}",
        div.unwrap()
    );
}

/// Shift amounts at and past the type width. The interpreter used to
/// reduce them with a hardcoded `& 63` while constant folding used the
/// type width, so raw and optimized modules disagreed for every type
/// narrower than 64 bits. All layers now share the amount-mod-width
/// rule in `nf_ir::opt::eval_bin`.
fn shift_width_module() -> Module {
    let mut m = Module::new("regress_shift_width");
    let acc = m.add_global("acc", StateKind::Scalar, 8, 1);
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let wide = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, len);
    let narrow = fb.cast(CastOp::Trunc, Ty::I16, Ty::I8, len);
    // Immediate amounts: width + 1 wraps to 1, 2 * width to 0.
    let a = fb.bin(BinOp::Shl, Ty::I16, len, Operand::imm(17));
    let b = fb.bin(BinOp::LShr, Ty::I16, len, Operand::imm(16));
    let c = fb.bin(BinOp::AShr, Ty::I8, narrow, Operand::imm(9));
    let d = fb.bin(BinOp::Shl, Ty::I32, wide, Operand::imm(33));
    // A computed amount takes the non-constant-foldable path.
    let amt = fb.bin(BinOp::Add, Ty::I16, len, Operand::imm(16));
    let e = fb.bin(BinOp::Shl, Ty::I16, len, amt);
    // Fold everything into an observable store so nothing is dead.
    let ab = fb.bin(BinOp::Xor, Ty::I16, a, b);
    let cw = fb.cast(CastOp::Zext, Ty::I8, Ty::I32, c);
    let cd = fb.bin(BinOp::Xor, Ty::I32, cw, d);
    let ew = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, e);
    let abw = fb.cast(CastOp::Zext, Ty::I16, Ty::I32, ab);
    let s1 = fb.bin(BinOp::Xor, Ty::I32, cd, ew);
    let s2 = fb.bin(BinOp::Xor, Ty::I32, s1, abw);
    fb.store(Ty::I32, s2, MemRef::global(acc));
    fb.ret(Some(s2));
    m.funcs.push(fb.finish());
    m
}

/// Dead loads from globals and packet fields. Dead-code elimination
/// used to delete them, which silently changed the optimized module's
/// state-access event sequence and its `nicsim` access profile — the
/// exact signals Clara's insights are trained on. `dce` now treats
/// those loads as observable; only the dead *stack* load may go.
fn dce_observable_module() -> Module {
    let mut m = Module::new("regress_dce_observable");
    let ctr = m.add_global("ctr", StateKind::Scalar, 8, 1);
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let slot = fb.slot();
    fb.store(Ty::I32, Operand::imm(5), MemRef::stack(slot));
    let _dead_global = fb.load(Ty::I32, MemRef::global(ctr));
    let _dead_pkt = fb.load(Ty::I16, MemRef::pkt(PktField::TcpSport));
    let _dead_stack = fb.load(Ty::I32, MemRef::stack(slot));
    let ttl = fb.load(Ty::I8, MemRef::pkt(PktField::IpTtl));
    fb.store(Ty::I8, ttl, MemRef::global(ctr));
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(1)]);
    fb.ret(None);
    m.funcs.push(fb.finish());
    m
}

/// Strict framework-API semantics: exact arity and a range-checked
/// `pkt_send` port, computed from packet data so no layer can fold it
/// away. All layers must agree on the resulting verdicts.
fn api_strict_module() -> Module {
    let mut m = Module::new("regress_api_strict");
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let out = fb.block();
    fb.switch_to(entry);
    let port = fb.load(Ty::I16, MemRef::pkt(PktField::TcpDport));
    let masked = fb.bin(BinOp::And, Ty::I16, port, Operand::imm(0x3f));
    let ok = fb.icmp(Pred::ULt, Ty::I16, masked, Operand::imm(64));
    fb.cond_br(ok, out, out);
    fb.switch_to(out);
    let widened = fb.cast(CastOp::Zext, Ty::I16, Ty::I64, masked);
    let narrowed = fb.cast(CastOp::Trunc, Ty::I64, Ty::I16, widened);
    let _ = fb.call(ApiCall::PktSend, vec![narrowed]);
    fb.ret(None);
    m.funcs.push(fb.finish());
    m
}

#[test]
fn golden_shift_width_regression() {
    pin_and_replay("shift_width", &shift_width_module());
}

#[test]
fn golden_dce_observable_regression() {
    pin_and_replay("dce_observable", &dce_observable_module());
}

#[test]
fn golden_api_strict_regression() {
    pin_and_replay("api_strict", &api_strict_module());
}

#[test]
fn golden_minimized_smoke_repro() {
    // The shrinker's output for the injected smoke divergence is pinned
    // too: minimization is deterministic, so a change here means the
    // shrinker (or the oracle it queries) changed behavior.
    let module = difftest::smoke_module();
    let trace = difftest::trace_for_seed(0xd1ff, 24);
    let out = difftest::shrink(&module, &trace, Some(Injection::FlipArith));
    assert!(
        out.blocks_after <= 3,
        "shrinker left {} blocks",
        out.blocks_after
    );
    let path = golden_path("smoke_min");
    let got = print::module(&out.module);
    if std::env::var("CLARA_BLESS").is_ok() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{path}: {e}; regenerate with CLARA_BLESS=1 cargo test --test difftest")
    });
    assert_eq!(got, want, "minimized smoke repro changed");
    // The minimized module must still diverge under the same injection.
    let div = difftest::replay(Path::new(&path), 24, 0xd1ff, Some(Injection::FlipArith))
        .expect("golden parses");
    assert!(div.is_some(), "minimized repro no longer diverges");
}

#[test]
fn pinned_seed_sweep_is_clean() {
    for start in [0u64, 1000] {
        let cfg = DifftestConfig {
            seeds: 25,
            start_seed: start,
            pkts: 24,
            shrink: false,
            ..DifftestConfig::default()
        };
        let report = difftest::run(&cfg).expect("no backends configured");
        assert_eq!(report.engine_failures, 0, "start={start}");
        assert!(
            report.divergent.is_empty(),
            "start={start} first divergence: {}",
            report.divergent[0].divergence.as_ref().unwrap()
        );
    }
}
