//! End-to-end integration: the trained Clara pipeline produces insights
//! whose port configurations actually pay off on the simulated NIC.

use clara_repro::clara::{Clara, ClaraConfig};
use clara_repro::nicsim::{self, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

fn trained() -> Clara {
    Clara::train(&ClaraConfig::fast(99)).expect("train")
}

#[test]
fn clara_port_beats_naive_port_on_accelerator_elements() {
    let clara = trained();
    let trace = Trace::generate(&WorkloadSpec::large_flows(), 800, 1);
    for name in ["cmsketch", "wepdecap"] {
        let e = clara_repro::click::corpus()
            .into_iter()
            .find(|e| e.name() == name)
            .expect("known");
        let insights = clara.analyze(&e.module, &trace).expect("analysis succeeds");
        let cores = insights.suggested_cores;
        let naive = nicsim::simulate(&e.module, &trace, &PortConfig::naive(), &clara.nic, cores);
        let tuned = nicsim::simulate(
            &e.module,
            &trace,
            &insights.port_config(),
            &clara.nic,
            cores,
        );
        assert!(
            tuned.throughput_mpps >= naive.throughput_mpps,
            "{name}: Clara port lost throughput ({} vs {})",
            tuned.throughput_mpps,
            naive.throughput_mpps
        );
        assert!(
            tuned.latency_us <= naive.latency_us,
            "{name}: Clara port raised latency ({} vs {})",
            tuned.latency_us,
            naive.latency_us
        );
    }
}

#[test]
fn insights_are_internally_consistent() {
    let clara = trained();
    let trace = Trace::generate(&WorkloadSpec::small_flows().with_flows(1024), 800, 2);
    for e in clara_repro::click::corpus() {
        let insights = clara.analyze(&e.module, &trace).expect("analysis succeeds");
        // Core suggestions in range.
        assert!(
            (1..=clara.nic.cores).contains(&insights.suggested_cores),
            "{}",
            e.name()
        );
        // Placement only names real globals.
        for g in insights.placement.keys() {
            assert!(e.module.global(*g).is_some(), "{}", e.name());
        }
        // Coalescing only packs scalar globals of this module.
        for cluster in &insights.coalesce.clusters {
            assert!(cluster.len() >= 2);
            for (g, _) in cluster {
                assert!(e.module.global(*g).is_some(), "{}", e.name());
            }
        }
        // Accel regions reference real blocks.
        if let Some((_, region)) = &insights.accel {
            let n = e.module.handler().unwrap().blocks.len() as u32;
            assert!(region.iter().all(|b| b.0 < n), "{}", e.name());
        }
        // The counted memory matches the prepared module.
        let prepared = clara_repro::clara::prepare_module(&e.module);
        assert_eq!(insights.counted_mem, prepared.counted_mem(), "{}", e.name());
    }
}

#[test]
fn prediction_correlates_with_ground_truth_across_corpus() {
    let clara = trained();
    // Module-level predicted compute must rank-correlate with the vendor
    // compiler's true totals across the corpus.
    let mut pred = Vec::new();
    let mut truth = Vec::new();
    for e in clara_repro::click::corpus() {
        pred.push(clara.predictor.predict_module_compute(&e.module));
        truth.push(f64::from(
            clara_repro::nfcc::compile_module(&e.module)
                .handler()
                .total_compute(),
        ));
    }
    let tau = clara_repro::ml::metrics::kendall_tau(&pred, &truth);
    assert!(tau > 0.5, "prediction rank correlation too weak: {tau:.2}");
}
