//! The serving layer, end to end over real sockets.
//!
//! ISSUE acceptance: (a) responses served through the daemon's queue,
//! batching, and worker pool are byte-identical to the equivalent
//! one-shot facade calls; (b) an over-capacity burst yields typed
//! `overloaded` rejections while admitted requests still succeed;
//! (c) a repeated identical request is served entirely from warm
//! caches (zero recomputes); (d) drain finishes in-flight work and
//! answers with a well-formed deterministic run report; (e) tenants
//! registered over the wire get scoped NF sets, typed
//! `unknown_tenant`/`quota_exceeded` rejections, and fair latency
//! while another tenant bursts; (f) drain racing concurrent
//! enqueuers always terminates with every admitted job answered;
//! (g) the UDS frame transport serves bytes identical to TCP lines.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex, OnceLock};

use clara_repro::clara::{Clara, ClaraConfig, Precision};
use clara_repro::hal::Backend as _;
use clara_repro::serve::protocol::{self, RegisterSpec, Request, WorkSpec};
use clara_repro::serve::server::ServerHandle;
use clara_repro::serve::{ServeOptions, Server};
use serde::Value;

/// The engine (caches, stats) and the obs registry are process globals;
/// tests in this binary serialize on this lock. Poisoning is ignored:
/// one test's failure must not cascade into the other ten.
static SERVE_LOCK: Mutex<()> = Mutex::new(());

fn serve_lock() -> std::sync::MutexGuard<'static, ()> {
    SERVE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One pipeline trained for the whole binary (training dominates debug
/// runtime; every test shares the same warm state, like the daemon does).
fn clara() -> Arc<Clara> {
    static CLARA: OnceLock<Arc<Clara>> = OnceLock::new();
    CLARA
        .get_or_init(|| Arc::new(Clara::train(&ClaraConfig::fast(11)).expect("training succeeds")))
        .clone()
}

fn start(workers: usize, queue_cap: usize, batch_max: usize) -> ServerHandle {
    start_with_backends(workers, queue_cap, batch_max, Vec::new())
}

fn start_with_backends(
    workers: usize,
    queue_cap: usize,
    batch_max: usize,
    backends: Vec<String>,
) -> ServerHandle {
    Server::start(
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            uds_path: None,
            workers,
            queue_cap,
            batch_max,
            deadline: None,
            backends,
            precision: Precision::F64,
        },
        clara(),
    )
    .expect("server binds an ephemeral port")
}

/// A persistent client connection.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: std::net::SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Conn { stream, reader }
    }

    fn send(&mut self, line: &str) -> String {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .expect("write request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "server closed the connection unexpectedly");
        resp.trim_end().to_string()
    }

    /// Like [`Conn::send`] but tolerates the server shutting the
    /// connection down mid-exchange (drain races do that by design).
    /// `None` means the request was never admitted; an admitted job is
    /// always answered, so a written-then-dropped request is the one
    /// legal "no response" outcome.
    fn try_send(&mut self, line: &str) -> Option<String> {
        if self
            .stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .is_err()
        {
            return None;
        }
        let mut resp = String::new();
        match self.reader.read_line(&mut resp) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(resp.trim_end().to_string()),
        }
    }
}

fn module_of(nf: &str) -> clara_repro::ir::Module {
    clara_repro::click::extended_corpus()
        .into_iter()
        .find(|e| e.name() == nf)
        .expect("known corpus element")
        .module
}

fn predict_req(id: u64, nf: &str, packets: usize, seed: u64) -> (String, WorkSpec) {
    let w = WorkSpec {
        nf: nf.to_string(),
        packets,
        seed,
        small_flows: false,
        backend: None,
        precision: None,
    };
    (
        protocol::render_request(Some(id), &Request::Predict(w.clone())),
        w,
    )
}

fn stat_u64(resp: &str, key: &str) -> u64 {
    let v = serde_json::parse_value(resp).expect("stats response parses");
    match v.get(key) {
        Some(Value::Int(i)) => *i as u64,
        Some(Value::UInt(u)) => *u,
        other => panic!("stats `{key}` missing or non-integer: {other:?} in {resp}"),
    }
}

/// (a) Concurrent clients through queue + micro-batching get responses
/// byte-identical to one-shot facade calls.
#[test]
fn concurrent_requests_match_one_shot_facade() {
    let _g = serve_lock();
    let clara = clara();
    let handle = start(3, 64, 4);
    let addr = handle.addr();

    // (nf, packets, seed, analyze?) — distinct NFs and seeds so the mix
    // exercises both the batched predict path and the single analyze path.
    let cases = [
        ("tcpack", 80, 1, false),
        ("udpipencap", 90, 2, false),
        ("aggcounter", 100, 3, true),
        ("cmsketch", 110, 4, false),
        ("anonipaddr", 70, 5, true),
        ("iplookup", 60, 6, false),
        ("vlantag", 80, 7, false),
        ("timefilter", 90, 8, true),
    ];

    // Expected lines via the one-shot facade, same WorkSpec -> trace.
    let expected: Vec<String> = cases
        .iter()
        .enumerate()
        .map(|(i, &(nf, packets, seed, analyze))| {
            let module = module_of(nf);
            let w = WorkSpec {
                nf: nf.to_string(),
                packets,
                seed,
                small_flows: false,
                backend: None,
                precision: None,
            };
            let trace = w.trace();
            let default = clara_repro::hal::DEFAULT_BACKEND;
            if analyze {
                let ins = clara.analyze(&module, &trace).expect("facade analyze");
                protocol::analyze_response(
                    Some(i as u64),
                    nf,
                    default,
                    Precision::F64,
                    &module,
                    &ins,
                )
            } else {
                let p = clara.predict_one(&module, &trace).expect("facade predict");
                protocol::predict_response(Some(i as u64), nf, default, Precision::F64, &p)
            }
        })
        .collect();

    // Four concurrent client threads, two requests each.
    let got: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                scope.spawn(move || {
                    let mut conn = Conn::open(addr);
                    let mut out = Vec::new();
                    for i in [t, t + 4] {
                        let (nf, packets, seed, analyze) = cases[i];
                        let w = WorkSpec {
                            nf: nf.to_string(),
                            packets,
                            seed,
                            small_flows: false,
                            backend: None,
                            precision: None,
                        };
                        let req = if analyze {
                            Request::Analyze(w)
                        } else {
                            Request::Predict(w)
                        };
                        let line = protocol::render_request(Some(i as u64), &req);
                        out.push((i, conn.send(&line)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (i, resp) in got {
        assert_eq!(
            resp, expected[i],
            "served response {i} must be byte-identical to the one-shot facade rendering"
        );
    }
    handle.drain();
    handle.join();
}

/// (b) Past queue capacity the server rejects with typed `overloaded`
/// responses while admitted requests still complete successfully.
#[test]
fn over_capacity_burst_yields_typed_overloaded() {
    let _g = serve_lock();
    let handle = start(1, 1, 1);
    let addr = handle.addr();
    let n = 10;
    let barrier = Arc::new(Barrier::new(n));

    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut conn = Conn::open(addr);
                    // Distinct heavy seeds: none of these can be served
                    // from cache, so the single worker stays busy while
                    // the burst lands.
                    let (line, _) = predict_req(i as u64, "cmsketch", 1200, 5000 + i as u64);
                    barrier.wait();
                    conn.send(&line)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst thread"))
            .collect()
    });

    let mut ok = 0;
    let mut overloaded = 0;
    for resp in &responses {
        let v = serde_json::parse_value(resp).expect("response parses");
        if v.get("ok") == Some(&Value::Bool(true)) {
            ok += 1;
        } else if v.get("error") == Some(&Value::Str("overloaded".to_string())) {
            overloaded += 1;
        } else {
            panic!("unexpected non-overloaded failure: {resp}");
        }
    }
    assert!(ok >= 1, "admitted requests must still succeed under burst");
    assert!(
        overloaded >= 1,
        "a {n}-wide burst into workers=1/queue_cap=1 must trip admission control"
    );
    let summary = {
        handle.drain();
        handle.join()
    };
    assert_eq!(summary.served, ok, "server tallies admitted successes");
    assert_eq!(
        summary.overloaded, overloaded,
        "server tallies admission rejections"
    );
    assert_eq!(summary.errors, 0, "nothing else may fail");
}

/// (c) The second identical request is served entirely from the warm
/// serve-level prediction cache: it never re-enters the engine (profile
/// stats frozen), the response is byte-identical, and the drain report
/// tallies the hit.
#[test]
fn repeated_request_is_served_from_warm_caches() {
    let _g = serve_lock();
    let handle = start(2, 16, 4);
    let mut conn = Conn::open(handle.addr());
    // A (nf, seed) pair no other test uses, so the first request is
    // genuinely cold even though the binary shares process caches.
    let (line, _) = predict_req(900, "ratelimiter", 90, 777);

    let before = conn.send(&protocol::render_request(None, &Request::Stats));
    let first = conn.send(&line);
    let mid = conn.send(&protocol::render_request(None, &Request::Stats));
    let second = conn.send(&line);
    let after = conn.send(&protocol::render_request(None, &Request::Stats));

    assert!(first.contains("\"ok\":true"), "first request succeeds: {first}");
    assert_eq!(first, second, "identical requests must render identically");

    let (miss_before, miss_mid, miss_after) = (
        stat_u64(&before, "profile_misses"),
        stat_u64(&mid, "profile_misses"),
        stat_u64(&after, "profile_misses"),
    );
    assert!(
        miss_mid > miss_before,
        "the first request must actually compute a profile (cold)"
    );
    assert_eq!(
        miss_after, miss_mid,
        "the second identical request must recompute nothing"
    );
    assert_eq!(
        stat_u64(&after, "profile_hits"),
        stat_u64(&mid, "profile_hits"),
        "the repeat is answered above the engine: no profile lookup at all"
    );
    let resp = conn.send(&protocol::render_request(Some(7), &Request::Drain));
    for counter in ["serve.cache.predict_hits", "serve.cache.predict_misses"] {
        assert!(
            resp.contains(counter),
            "drain report must carry `{counter}`: {resp}"
        );
    }
    handle.join();
}

/// Per-request device routing: a server warm on two backends answers
/// interleaved clients with the right device's predictions (each
/// byte-identical to the facade's rendering for that device), the two
/// devices' answers demonstrably differ, and a name that is not loaded
/// is rejected with a typed `unknown_backend` error before queueing.
#[test]
fn per_request_backend_routing() {
    let _g = serve_lock();
    let clara = clara();
    let handle = start_with_backends(
        2,
        32,
        4,
        vec!["agilio-cx".to_string(), "dpu-offpath".to_string()],
    );
    let addr = handle.addr();

    let module = module_of("cmsketch");
    let mk = |backend: Option<&str>| WorkSpec {
        nf: "cmsketch".to_string(),
        packets: 120,
        seed: 909,
        small_flows: false,
        backend: backend.map(str::to_string),
        precision: None,
    };
    let trace = mk(None).trace();
    let agilio = clara_repro::hal::builtin("agilio-cx").expect("shipped");
    let dpu = clara_repro::hal::builtin("dpu-offpath").expect("shipped");
    let p_agilio = clara
        .predict_one_on(&module, &trace, agilio)
        .expect("facade predict on agilio");
    let p_dpu = clara
        .predict_one_on(&module, &trace, dpu)
        .expect("facade predict on dpu");
    // The devices must actually disagree (different clock and memory),
    // otherwise this test could pass with routing broken.
    assert_ne!(
        p_agilio.predicted_latency_us, p_dpu.predicted_latency_us,
        "devices with different clocks must predict different latencies"
    );

    // Interleaved clients: each thread alternates default/explicit
    // backends, crossing coalescing boundaries.
    let expected_for = |id: u64, backend: Option<&str>| match backend {
        None | Some("agilio-cx") => protocol::predict_response(
            Some(id),
            "cmsketch",
            "agilio-cx",
            Precision::F64,
            &p_agilio,
        ),
        Some("dpu-offpath") => protocol::predict_response(
            Some(id),
            "cmsketch",
            "dpu-offpath",
            Precision::F64,
            &p_dpu,
        ),
        Some(other) => panic!("unexpected backend {other}"),
    };
    let plan: [Option<&str>; 6] = [
        None,
        Some("dpu-offpath"),
        Some("agilio-cx"),
        Some("dpu-offpath"),
        None,
        Some("agilio-cx"),
    ];
    let got: Vec<(u64, Option<&str>, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let plan = &plan;
                let mk = &mk;
                scope.spawn(move || {
                    let mut conn = Conn::open(addr);
                    let mut out = Vec::new();
                    for (j, backend) in plan.iter().enumerate() {
                        let id = (t * 100 + j) as u64;
                        let line = protocol::render_request(
                            Some(id),
                            &Request::Predict(mk(*backend)),
                        );
                        out.push((id, *backend, conn.send(&line)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (id, backend, resp) in got {
        assert_eq!(
            resp,
            expected_for(id, backend),
            "response for backend {backend:?} must match that device's facade rendering"
        );
    }

    // An unloaded (but perfectly valid) built-in is still rejected: only
    // *warm* backends serve.
    let mut conn = Conn::open(addr);
    let resp = conn.send(&protocol::render_request(
        Some(7),
        &Request::Predict(mk(Some("wimpy-onpath"))),
    ));
    let v = serde_json::parse_value(&resp).expect("rejection parses");
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{resp}");
    assert_eq!(
        v.get("error"),
        Some(&Value::Str("unknown_backend".to_string())),
        "unloaded backend must be a typed rejection, not `internal`: {resp}"
    );

    // Stats advertises exactly the warm set, in routing order.
    let stats = conn.send(&protocol::render_request(None, &Request::Stats));
    assert!(
        stats.contains(r#""backends":["agilio-cx","dpu-offpath"]"#),
        "stats must list the warm backends: {stats}"
    );

    handle.drain();
    let summary = handle.join();
    assert_eq!(summary.served, 12, "both clients' routed requests served");
    assert_eq!(summary.errors, 1, "exactly the unknown-backend rejection");
}

/// Per-request precision routing: one warm server answers interleaved
/// f64/q16 predicts with each path's own facade rendering (responses
/// echo the precision that served them), coalescing never mixes the
/// paths, and an unknown precision string is a typed `bad_request`.
#[test]
fn per_request_precision_routing() {
    let _g = serve_lock();
    let clara = clara();
    let handle = start(2, 32, 4);
    let addr = handle.addr();

    let module = module_of("heavy_hitter");
    let mk = |precision: Option<Precision>| WorkSpec {
        nf: "heavy_hitter".to_string(),
        packets: 110,
        seed: 4242,
        small_flows: false,
        backend: None,
        precision,
    };
    let trace = mk(None).trace();
    let default = clara_repro::hal::default_backend();
    let p_f64 = clara
        .predict_one_on_prec(&module, &trace, default, Precision::F64)
        .expect("facade predict at f64");
    let p_q16 = clara
        .predict_one_on_prec(&module, &trace, default, Precision::Q16)
        .expect("facade predict at q16");

    let expected_for = |id: u64, precision: Option<Precision>| match precision {
        None | Some(Precision::F64) => protocol::predict_response(
            Some(id),
            "heavy_hitter",
            default.name(),
            Precision::F64,
            &p_f64,
        ),
        Some(Precision::Q16) => protocol::predict_response(
            Some(id),
            "heavy_hitter",
            default.name(),
            Precision::Q16,
            &p_q16,
        ),
        Some(other) => panic!("unexpected precision {other:?}"),
    };
    let plan: [Option<Precision>; 6] = [
        None,
        Some(Precision::Q16),
        Some(Precision::F64),
        Some(Precision::Q16),
        None,
        Some(Precision::Q16),
    ];
    let mut conn = Conn::open(addr);
    for (j, precision) in plan.iter().enumerate() {
        let id = 500 + j as u64;
        let line = protocol::render_request(Some(id), &Request::Predict(mk(*precision)));
        let resp = conn.send(&line);
        assert_eq!(
            resp,
            expected_for(id, *precision),
            "response at precision {precision:?} must match that path's facade rendering"
        );
        let v = serde_json::parse_value(&resp).expect("response parses");
        let want = precision.unwrap_or(Precision::F64).as_str();
        assert_eq!(
            v.get("precision"),
            Some(&Value::Str(want.to_string())),
            "response must echo the precision that served it: {resp}"
        );
    }

    // An unknown precision string is rejected at parse time with a
    // typed `bad_request`, never queued.
    let resp = conn.send(
        r#"{"v":1,"op":"predict","nf":"heavy_hitter","precision":"bf16"}"#,
    );
    let v = serde_json::parse_value(&resp).expect("rejection parses");
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{resp}");
    assert_eq!(
        v.get("error"),
        Some(&Value::Str("bad_request".to_string())),
        "unknown precision must be a typed bad_request: {resp}"
    );

    handle.drain();
    let summary = handle.join();
    assert_eq!(summary.served, 6, "every routed predict served");
    assert_eq!(summary.errors, 1, "exactly the bad_request rejection");
}

/// `op:"place"` end to end: a served placement plan is byte-identical
/// to the facade's rendering for the same request, an NF outside the
/// corpus is rejected with a typed `unknown_nf` before queueing, a
/// replayed request re-solves on drift, and the drain report carries
/// the placement counters.
#[test]
fn place_requests_route_replan_and_land_in_the_drain_report() {
    let _g = serve_lock();
    let clara = clara();
    let handle = start(2, 16, 4);
    let addr = handle.addr();
    let mut conn = Conn::open(addr);

    // One-shot plan, byte-identical to the facade rendering.
    let req = clara_repro::clara::PlacementRequest::builder(["firewall", "mazunat"])
        .packets(150)
        .seed(31)
        .build();
    let default = clara_repro::hal::default_backend();
    let expected = protocol::place_response(
        Some(40),
        &clara
            .place_on_prec(&req, default, Precision::F64)
            .expect("facade place"),
    );
    let resp = conn.send(&protocol::render_request(Some(40), &Request::Place(req)));
    assert_eq!(
        resp, expected,
        "served op:\"place\" must be byte-identical to the one-shot rendering"
    );

    // A drifting replay re-solves at least once and reports it.
    // The large→small phase flip moves udpcount's access mix by ~14%;
    // a 10% threshold makes the re-solve deterministic for these params.
    let replay_req = clara_repro::clara::PlacementRequest::builder(["udpcount"])
        .packets(150)
        .seed(31)
        .replay("shift")
        .epochs(4)
        .drift_threshold(0.1)
        .build();
    let resp = conn.send(&protocol::render_request(
        Some(41),
        &Request::Place(replay_req),
    ));
    let v = serde_json::parse_value(&resp).expect("replay response parses");
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{resp}");
    let replay = v.get("replay").expect("replay summary present");
    match replay.get("resolves") {
        Some(Value::UInt(n)) => assert!(*n >= 1, "shift replay must re-solve: {resp}"),
        Some(Value::Int(n)) => assert!(*n >= 1, "shift replay must re-solve: {resp}"),
        other => panic!("replay `resolves` missing or non-integer: {other:?} in {resp}"),
    }

    // Unknown NFs are rejected before queueing, with the typed kind.
    let resp = conn.send(&protocol::render_request(
        Some(42),
        &Request::Place(clara_repro::clara::PlacementRequest::new([
            "firewall",
            "not-an-nf",
        ])),
    ));
    let v = serde_json::parse_value(&resp).expect("rejection parses");
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{resp}");
    assert_eq!(
        v.get("error"),
        Some(&Value::Str("unknown_nf".to_string())),
        "unknown NF must be a typed rejection: {resp}"
    );

    // Drain: the deterministic report carries the re-plan counters.
    let resp = conn.send(&protocol::render_request(Some(43), &Request::Drain));
    assert!(resp.contains("\"ok\":true"), "drain succeeds: {resp}");
    for counter in ["serve.ops.place", "place.requests", "place.epochs", "place.resolves"] {
        assert!(
            resp.contains(counter),
            "drain report must carry `{counter}`: {resp}"
        );
    }

    let summary = handle.join();
    assert_eq!(summary.served, 2, "both placement plans served");
    assert_eq!(summary.errors, 1, "exactly the unknown-NF rejection");
}

/// (d) Drain stops admission, finishes in-flight work, and answers with
/// a well-formed deterministic run report.
#[test]
fn drain_completes_with_deterministic_report() {
    let _g = serve_lock();
    let handle = start(2, 16, 4);
    let mut conn = Conn::open(handle.addr());

    for i in 0..3 {
        let (line, _) = predict_req(i, "tcpresp", 60, 30 + i);
        let resp = conn.send(&line);
        assert!(resp.contains("\"ok\":true"), "warm-up predict {i} succeeds: {resp}");
    }

    let resp = conn.send(&protocol::render_request(Some(99), &Request::Drain));
    let v = serde_json::parse_value(&resp).expect("drain response is valid JSON");
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "drain succeeds: {resp}");
    assert_eq!(
        stat_u64(&resp, "served"),
        3,
        "drain reports exactly the requests this server answered"
    );
    let report = v.get("report").expect("drain carries the final run report");
    assert!(
        matches!(report, Value::Map(_)),
        "report must be an embedded JSON object"
    );
    assert!(
        report.get("counters").is_some() && report.get("spans").is_some(),
        "report must carry the counters and span tree sections"
    );
    assert!(
        resp.contains("serve.ops.predict"),
        "report must include the serving layer's deterministic op counters"
    );
    assert!(
        resp.contains("clara-serve"),
        "report must include the server's root span"
    );

    let summary = handle.join();
    assert_eq!(summary.served, 3);
    assert_eq!(summary.errors, 0);
}

/// Extracts an integer field from a `Value::Map` entry.
fn map_u64(m: &Value, key: &str) -> u64 {
    match m.get(key) {
        Some(Value::Int(i)) => *i as u64,
        Some(Value::UInt(u)) => *u,
        other => panic!("map `{key}` missing or non-integer: {other:?}"),
    }
}

/// Sums the per-tenant counters out of a wire `stats` response:
/// (served, overloaded, quota_exceeded, errors).
fn tenant_sums(stats: &str) -> (u64, u64, u64, u64) {
    let v = serde_json::parse_value(stats).expect("stats parses");
    let Some(Value::Seq(tenants)) = v.get("tenants") else {
        panic!("stats must carry a `tenants` array: {stats}");
    };
    let mut sums = (0, 0, 0, 0);
    for t in tenants {
        sums.0 += map_u64(t, "served");
        sums.1 += map_u64(t, "overloaded");
        sums.2 += map_u64(t, "quota_exceeded");
        sums.3 += map_u64(t, "errors");
    }
    sums
}

fn p95_us(mut lat: Vec<u64>) -> u64 {
    lat.sort_unstable();
    lat[((lat.len() * 95) / 100).min(lat.len() - 1)]
}

/// (e) Tenancy over the wire: `op:"register"` pins an NF set and quota,
/// scoped requests serve byte-identically to the facade, out-of-set and
/// unregistered-tenant requests get typed rejections, and the `stats`
/// response pins its key order (including the new `errors` and
/// `quota_exceeded` counters, per-tenant sections, and coloc pairs).
#[test]
fn registered_tenants_are_scoped_and_stats_pin_key_order() {
    let _g = serve_lock();
    let clara = clara();
    let handle = start(2, 8, 4);
    let mut conn = Conn::open(handle.addr());

    // Register two tenants with disjoint NF sets. The response echoes
    // the admitted configuration (NF set sorted, quota clamped).
    let resp = conn.send(&protocol::render_request_as(
        Some(1),
        Some("alpha"),
        &Request::Register(RegisterSpec {
            nfs: vec!["iplookup".to_string(), "cmsketch".to_string()],
            backend: None,
            precision: None,
            quota: Some(2),
        }),
    ));
    let v = serde_json::parse_value(&resp).expect("register response parses");
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{resp}");
    assert_eq!(v.get("tenant"), Some(&Value::Str("alpha".to_string())), "{resp}");
    assert_eq!(map_u64(&v, "quota"), 2, "quota echoes as admitted: {resp}");
    assert!(
        resp.contains(r#""nfs":["cmsketch","iplookup"]"#),
        "NF set must come back sorted: {resp}"
    );
    let resp = conn.send(&protocol::render_request_as(
        Some(2),
        Some("beta"),
        &Request::Register(RegisterSpec {
            nfs: vec!["firewall".to_string()],
            backend: None,
            precision: None,
            quota: None,
        }),
    ));
    assert!(resp.contains("\"ok\":true"), "beta registers: {resp}");

    // A scoped predict serves byte-identically to the one-shot facade.
    let w = WorkSpec {
        nf: "cmsketch".to_string(),
        packets: 100,
        seed: 8181,
        small_flows: false,
        backend: None,
        precision: None,
    };
    let expected = protocol::predict_response(
        Some(3),
        "cmsketch",
        clara_repro::hal::DEFAULT_BACKEND,
        Precision::F64,
        &clara
            .predict_one(&module_of("cmsketch"), &w.trace())
            .expect("facade predict"),
    );
    let resp = conn.send(&protocol::render_request_as(
        Some(3),
        Some("alpha"),
        &Request::Predict(w.clone()),
    ));
    assert_eq!(resp, expected, "tenant-scoped predict is byte-identical to the facade");

    // Out-of-set NF: typed `unknown_nf`. Unregistered tenant: typed
    // `unknown_tenant`. Register without a tenant name: `bad_request`.
    let resp = conn.send(&protocol::render_request_as(
        Some(4),
        Some("alpha"),
        &Request::Predict(WorkSpec { nf: "tcpack".to_string(), ..w.clone() }),
    ));
    assert!(
        resp.contains(r#""error":"unknown_nf""#),
        "out-of-set NF must be typed: {resp}"
    );
    let resp = conn.send(&protocol::render_request_as(
        Some(5),
        Some("ghost"),
        &Request::Predict(w.clone()),
    ));
    assert!(
        resp.contains(r#""error":"unknown_tenant""#),
        "unregistered tenant must be typed: {resp}"
    );
    let resp = conn.send(&protocol::render_request_as(
        Some(6),
        None,
        &Request::Register(RegisterSpec::default()),
    ));
    assert!(
        resp.contains(r#""error":"bad_request""#),
        "register without a tenant name must be typed: {resp}"
    );

    // Stats: every global key in pinned order, then per-tenant entries
    // (each in pinned order) and the coloc pairs for the two profiled
    // tenants.
    let stats = conn.send(&protocol::render_request(None, &Request::Stats));
    let global_keys = [
        "queue_depth", "in_flight", "served", "overloaded", "quota_exceeded",
        "errors", "draining", "workers", "shards", "queue_cap", "batch_max",
        "precision", "backends", "tenants", "coloc", "compile_hits",
        "compile_misses", "profile_hits", "profile_misses", "disk_hits",
        "disk_recomputes",
    ];
    let mut at = 0;
    for key in global_keys {
        let needle = format!("\"{key}\":");
        let pos = stats[at..]
            .find(&needle)
            .unwrap_or_else(|| panic!("stats must carry `{key}` after byte {at}: {stats}"));
        at += pos + needle.len();
    }
    let tenants_at = stats.find("\"tenants\":").expect("tenants section");
    let mut at = tenants_at;
    for key in [
        "name", "shard", "quota", "queued", "served", "overloaded",
        "quota_exceeded", "errors",
    ] {
        let needle = format!("\"{key}\":");
        let pos = stats[at..]
            .find(&needle)
            .unwrap_or_else(|| panic!("tenant entries must carry `{key}` in order: {stats}"));
        at += pos + needle.len();
    }
    assert!(
        stats.contains(r#""name":"alpha""#) && stats.contains(r#""name":"beta""#),
        "stats must list both registered tenants: {stats}"
    );
    assert!(
        stats.contains(r#""name":"default""#),
        "the default tenant is always listed: {stats}"
    );
    // alpha and beta both registered non-empty NF sets, so they carry
    // workload profiles and the coloc model predicts their pairwise
    // interference.
    let coloc_at = stats.find("\"coloc\":").expect("coloc section");
    for key in ["\"a\":", "\"b\":", "\"a_loss_pct\":", "\"b_loss_pct\":"] {
        assert!(
            stats[coloc_at..].contains(key),
            "coloc pairs must carry {key}: {stats}"
        );
    }

    handle.drain();
    let summary = handle.join();
    assert_eq!(summary.served, 1, "exactly the scoped predict served");
    assert_eq!(
        summary.errors, 3,
        "unknown_nf + unknown_tenant + nameless register"
    );
    assert_eq!(summary.quota_exceeded, 0);
}

/// (e) Fairness: while one tenant floods past its admission quota, the
/// other tenant keeps its latency (p95 within 2x its solo baseline,
/// with a 10ms floor against scheduler noise), collects zero
/// rejections, and the flooding tenant's overflow is answered with
/// typed `quota_exceeded` — and the per-tenant counters on the wire
/// reconcile exactly with the lifetime `ServeSummary`.
#[test]
fn bursting_tenant_is_quota_limited_while_victim_keeps_latency() {
    let _g = serve_lock();
    let handle = start(2, 16, 4);
    let addr = handle.addr();
    let mut victim = Conn::open(addr);

    // Victim first (shard 1 on a 2-worker pool), burster second: the
    // deficit-round-robin ring plus sharding keep their queues apart.
    let resp = victim.send(&protocol::render_request_as(
        Some(1),
        Some("victim"),
        &Request::Register(RegisterSpec {
            nfs: vec!["vlantag".to_string()],
            backend: None,
            precision: None,
            quota: None,
        }),
    ));
    assert!(resp.contains("\"ok\":true"), "victim registers: {resp}");
    let resp = victim.send(&protocol::render_request_as(
        Some(2),
        Some("burster"),
        &Request::Register(RegisterSpec {
            nfs: vec!["cmsketch".to_string()],
            backend: None,
            precision: None,
            quota: Some(1),
        }),
    ));
    assert!(resp.contains("\"ok\":true"), "burster registers: {resp}");

    let victim_line = |id: u64| {
        protocol::render_request_as(
            Some(id),
            Some("victim"),
            &Request::Predict(WorkSpec {
                nf: "vlantag".to_string(),
                packets: 90,
                seed: 880,
                small_flows: false,
                backend: None,
                precision: None,
            }),
        )
    };
    // Warm the victim's caches, then measure the solo baseline.
    for i in 0..3 {
        let resp = victim.send(&victim_line(10 + i));
        assert!(resp.contains("\"ok\":true"), "victim warm-up: {resp}");
    }
    let solo: Vec<u64> = (0..20)
        .map(|i| {
            let t0 = std::time::Instant::now();
            let resp = victim.send(&victim_line(100 + i));
            assert!(resp.contains("\"ok\":true"), "solo victim predict: {resp}");
            t0.elapsed().as_micros() as u64
        })
        .collect();

    // Contended phase: six connections flood the burster with heavy
    // uncacheable predicts (quota 1 admits at most one queued at a
    // time) while the victim keeps sending.
    let (contended, burst_ok, burst_quota) = std::thread::scope(|scope| {
        let bursters: Vec<_> = (0..6)
            .map(|c| {
                scope.spawn(move || {
                    let mut conn = Conn::open(addr);
                    let (mut ok, mut quota) = (0u64, 0u64);
                    for j in 0..2u64 {
                        let line = protocol::render_request_as(
                            Some(7000 + c * 10 + j),
                            Some("burster"),
                            &Request::Predict(WorkSpec {
                                nf: "cmsketch".to_string(),
                                packets: 1200,
                                seed: 7000 + c * 10 + j,
                                small_flows: false,
                                backend: None,
                                precision: None,
                            }),
                        );
                        let resp = conn.send(&line);
                        if resp.contains("\"ok\":true") {
                            ok += 1;
                        } else if resp.contains(r#""error":"quota_exceeded""#) {
                            quota += 1;
                        } else {
                            panic!("burster overflow must be typed quota_exceeded: {resp}");
                        }
                    }
                    (ok, quota)
                })
            })
            .collect();
        let contended: Vec<u64> = (0..20)
            .map(|i| {
                let t0 = std::time::Instant::now();
                let resp = victim.send(&victim_line(200 + i));
                assert!(
                    resp.contains("\"ok\":true"),
                    "victim must collect zero rejections while the burster floods: {resp}"
                );
                t0.elapsed().as_micros() as u64
            })
            .collect();
        let (mut ok, mut quota) = (0u64, 0u64);
        for b in bursters {
            let (o, q) = b.join().expect("burster thread");
            ok += o;
            quota += q;
        }
        (contended, ok, quota)
    });

    assert!(
        burst_quota >= 1,
        "a 6-wide flood into quota=1 must trip per-tenant admission \
         (ok={burst_ok}, quota_exceeded={burst_quota})"
    );
    let (solo_p95, contended_p95) = (p95_us(solo), p95_us(contended));
    let bound = (2 * solo_p95).max(10_000);
    assert!(
        contended_p95 <= bound,
        "victim p95 must stay within 2x its solo baseline (10ms floor): \
         solo={solo_p95}us contended={contended_p95}us bound={bound}us"
    );

    // Per-tenant counters on the wire reconcile with the globals in the
    // same response, and with the lifetime summary after drain.
    let stats = victim.send(&protocol::render_request(None, &Request::Stats));
    let (t_served, t_over, t_quota, t_errors) = tenant_sums(&stats);
    assert_eq!(t_served, stat_u64(&stats, "served"), "served attribution: {stats}");
    assert_eq!(t_over, stat_u64(&stats, "overloaded"), "overloaded attribution: {stats}");
    assert_eq!(
        t_quota,
        stat_u64(&stats, "quota_exceeded"),
        "quota_exceeded attribution: {stats}"
    );
    assert_eq!(t_errors, stat_u64(&stats, "errors"), "errors attribution: {stats}");

    handle.drain();
    let summary = handle.join();
    assert_eq!(summary.served, t_served, "wire stats reconcile with the summary");
    assert_eq!(summary.overloaded, t_over);
    assert_eq!(summary.quota_exceeded, t_quota);
    assert_eq!(summary.errors, t_errors);
    assert_eq!(summary.served, 43 + burst_ok, "3 warm-ups + 40 timed + admitted burst");
    assert_eq!(summary.quota_exceeded, burst_quota);
    assert_eq!(summary.errors, 0);
}

/// (f) The drain/enqueue race: 50 rounds of `drain` fired into
/// concurrent enqueuers. Admission and drain are linearized under the
/// queue lock, so every admitted job is answered (no abandoned client
/// blocks forever) and drain always terminates. Before the fix this
/// test wedges on a job admitted after the drain flag flipped.
#[test]
fn drain_racing_concurrent_enqueuers_always_terminates() {
    let _g = serve_lock();
    for round in 0..50u64 {
        let handle = start(2, 8, 2);
        let addr = handle.addr();
        let barrier = Arc::new(Barrier::new(5));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    // Connect before the race starts; the acceptor may be
                    // gone by the time this thread would reconnect.
                    let mut conn = Conn::open(addr);
                    barrier.wait();
                    for j in 0..3u64 {
                        // Cached after round 0, so rounds are fast and the
                        // race window sits in admission, not in the work.
                        let (line, _) = predict_req(round * 100 + t * 10 + j, "tcpresp", 60, 30 + j);
                        match conn.try_send(&line) {
                            None => break, // connection torn down post-drain
                            Some(resp) => {
                                let v = serde_json::parse_value(&resp).expect("response parses");
                                let admitted = v.get("ok") == Some(&Value::Bool(true));
                                let refused = matches!(
                                    v.get("error"),
                                    Some(Value::Str(e)) if e == "draining" || e == "overloaded"
                                );
                                assert!(
                                    admitted || refused,
                                    "round {round}: every answered request is served or \
                                     typed-refused: {resp}"
                                );
                            }
                        }
                    }
                });
            }
            barrier.wait();
            // Race drain against the enqueuers. This must terminate: the
            // draining flag flips under the queue lock, so no job can be
            // admitted after it and then sit unanswered.
            handle.drain();
        });
        let summary = handle.join();
        assert_eq!(summary.quota_exceeded, 0, "round {round}: no tenant quota in play");
        assert_eq!(summary.errors, 0, "round {round}: nothing may hard-fail");
    }
}

/// (g) The UDS frame transport: the same request over TCP JSON-lines
/// and over length-prefixed frames on a Unix socket yields the same
/// response bytes, and one framed connection serves repeated requests
/// (the reusable-buffer path).
#[cfg(unix)]
#[test]
fn uds_frames_serve_bytes_identical_to_tcp_lines() {
    use clara_repro::serve::transport;
    use std::os::unix::net::UnixStream;

    let _g = serve_lock();
    let sock = std::env::temp_dir().join(format!("clara-serve-test-{}.sock", std::process::id()));
    let handle = Server::start(
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            uds_path: Some(sock.to_string_lossy().into_owned()),
            workers: 2,
            queue_cap: 16,
            batch_max: 4,
            deadline: None,
            backends: Vec::new(),
            precision: Precision::F64,
        },
        clara(),
    )
    .expect("server binds TCP and UDS");
    let uds_path = handle.uds_path().expect("uds enabled").to_string();

    let (line, _) = predict_req(77, "udpipencap", 80, 6262);
    let mut tcp = Conn::open(handle.addr());
    let tcp_resp = tcp.send(&line);

    let mut uds = UnixStream::connect(&uds_path).expect("connect unix socket");
    let mut wbuf = Vec::new();
    let mut rbuf = Vec::new();
    let mut uds_send = |stream: &mut UnixStream, line: &str| {
        transport::write_frame(stream, &mut wbuf, line).expect("write frame");
        transport::read_frame(stream, &mut rbuf)
            .expect("read frame")
            .expect("server answers the frame")
    };
    let uds_resp = uds_send(&mut uds, &line);
    assert_eq!(
        uds_resp, tcp_resp,
        "the same request over UDS frames and TCP lines must serve identical bytes"
    );
    // Repeated frames on one connection exercise the reusable buffers.
    let again = uds_send(&mut uds, &line);
    assert_eq!(again, uds_resp, "framed responses are stable across reuse");
    let stats = uds_send(&mut uds, &protocol::render_request(None, &Request::Stats));
    let v = serde_json::parse_value(&stats).expect("framed stats parses");
    assert!(
        matches!(v.get("tenants"), Some(Value::Seq(_))),
        "framed stats carries the tenant section: {stats}"
    );

    drop(uds);
    handle.drain();
    let summary = handle.join();
    assert_eq!(summary.served, 3, "one TCP predict + two framed predicts");
    assert_eq!(summary.errors, 0);
    assert!(!sock.exists(), "join must remove the socket file");
}
