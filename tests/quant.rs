//! The fixed-point precision axis, end to end.
//!
//! ISSUE acceptance: (a) quantized predictions stay within the pinned
//! tolerance of the f64 reference across the full extended corpus and
//! the suggested offload levels (core counts) are corpus-identical
//! between precisions; (b) the per-NF f64-vs-q16 wMAPE deltas are
//! pinned in a golden file (`CLARA_BLESS=1` regenerates); (c) v2 model
//! envelopes round-trip with their quantized twins, v1 envelopes still
//! load as f64 and rebuild the twins, and a future version is still
//! `UnsupportedVersion`; (d) the tolerance also holds on synthesized
//! (out-of-corpus) modules, property-tested.
//!
//! ```text
//! CLARA_BLESS=1 cargo test --test quant
//! ```

use std::fmt::Write as _;
use std::sync::OnceLock;

use clara_repro::clara::quantcheck::{self, QuantcheckConfig};
use clara_repro::clara::{prepare_module, Clara, ClaraConfig, ClaraError, Precision};
use proptest::prelude::*;
use serde::Value;

/// One pipeline trained for the whole binary.
fn clara() -> &'static Clara {
    static CLARA: OnceLock<Clara> = OnceLock::new();
    CLARA.get_or_init(|| Clara::train(&ClaraConfig::fast(19)).expect("training succeeds"))
}

/// Small quantcheck config so the cores-identity sweep stays quick in
/// debug builds; tolerances stay at their pinned defaults.
fn fast_cfg() -> QuantcheckConfig {
    QuantcheckConfig {
        packets: 120,
        reps: 1,
        ..QuantcheckConfig::default()
    }
}

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("CLARA_BLESS").is_ok() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("{path} missing; regenerate with CLARA_BLESS=1 cargo test --test quant")
    });
    assert_eq!(
        got, &want,
        "{name} changed; if intentional, regenerate with CLARA_BLESS=1 cargo test --test quant"
    );
}

/// (a)+(b): the oracle passes over the whole extended corpus and the
/// per-NF wMAPE deltas match the pinned golden.
#[test]
fn quantcheck_corpus_within_tolerance_and_golden_wmape() {
    let report = quantcheck::run(clara(), &fast_cfg()).expect("no quantization violations");
    assert_eq!(
        report.rows.len(),
        clara_repro::click::extended_corpus().len(),
        "every corpus NF is checked"
    );
    let mut golden = String::from(
        "# quant corpus golden: <nf> wmape=<Σ|q16−f64| / Σ|f64| over handler blocks>\n",
    );
    for r in &report.rows {
        assert!(!r.violated, "{} violated the pinned tolerance", r.nf);
        assert_eq!(
            r.cores_f64, r.cores_q16,
            "{}: suggested offload level must be precision-invariant",
            r.nf
        );
        let _ = writeln!(golden, "{} wmape={:.6}", r.nf, r.wmape);
    }
    check_golden("quant_corpus.txt", &golden);
}

/// Rewrites the top-level entries of a saved model envelope.
fn edit_envelope(json: &str, f: impl Fn(&mut Vec<(String, Value)>)) -> String {
    let mut v = serde_json::parse_value(json).expect("model file parses");
    match &mut v {
        Value::Map(entries) => f(entries),
        other => panic!("model envelope must be a map, got {other:?}"),
    }
    serde_json::to_string(&v).expect("envelope re-renders")
}

/// Strips a field from a nested map value.
fn strip_field(v: &mut Value, name: &str) {
    if let Value::Map(entries) = v {
        entries.retain(|(k, _)| k != name);
    }
}

/// (c): v2 round-trip preserves both inference paths bit for bit; a v1
/// envelope (no precision, no quantized twins) still loads as f64 and
/// rebuilds the twins; version 3 is rejected as `UnsupportedVersion`.
#[test]
fn model_envelope_versions_round_trip() {
    let clara = clara();
    let dir = std::env::temp_dir().join(format!("clara_quant_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let v2_path = dir.join("model_v2.json");
    clara.save(&v2_path).expect("save v2 model");

    let module = clara_repro::click::elements::cmsketch().module;
    let expect_f64 = clara.predictor.predict_module_compute(&module);
    let expect_q16 = clara
        .predictor
        .predict_module_compute_prec(&module, Precision::Q16);

    let loaded = Clara::load(&v2_path).expect("v2 model loads");
    assert_eq!(loaded.precision, Precision::F64);
    assert_eq!(
        loaded.predictor.predict_module_compute(&module).to_bits(),
        expect_f64.to_bits(),
        "f64 path must round-trip bit-identically"
    );
    assert_eq!(
        loaded
            .predictor
            .predict_module_compute_prec(&module, Precision::Q16)
            .to_bits(),
        expect_q16.to_bits(),
        "quantized twins are integer-exact and must round-trip bit-identically"
    );

    // A v1 envelope: version 1, no `precision` key, no quantized twins
    // anywhere in the model sections.
    let json = std::fs::read_to_string(&v2_path).expect("read saved model");
    let v1 = edit_envelope(&json, |entries| {
        entries.retain(|(k, _)| k != "precision");
        for (k, v) in entries.iter_mut() {
            match k.as_str() {
                "format_version" => *v = Value::UInt(1),
                "models" => {
                    if let Value::Map(models) = v {
                        for (_, model) in models.iter_mut() {
                            strip_field(model, "quant");
                        }
                    }
                }
                _ => {}
            }
        }
    });
    let v1_path = dir.join("model_v1.json");
    std::fs::write(&v1_path, v1).expect("write v1 model");
    let legacy = Clara::load(&v1_path).expect("v1 model still loads");
    assert_eq!(
        legacy.precision,
        Precision::F64,
        "v1 envelopes default to the f64 path"
    );
    assert!(
        legacy.predictor.has_quantized(),
        "loading must rebuild the quantized twins a v1 file lacks"
    );
    assert_eq!(
        legacy.predictor.predict_module_compute(&module).to_bits(),
        expect_f64.to_bits(),
        "v1 f64 predictions are unchanged"
    );
    assert_eq!(
        legacy
            .predictor
            .predict_module_compute_prec(&module, Precision::Q16)
            .to_bits(),
        expect_q16.to_bits(),
        "twins rebuilt from f64 weights are identical to saved twins"
    );

    // A future version is rejected with the typed mismatch error.
    let v3 = edit_envelope(&json, |entries| {
        for (k, v) in entries.iter_mut() {
            if k == "format_version" {
                *v = Value::UInt(3);
            }
        }
    });
    let v3_path = dir.join("model_v3.json");
    std::fs::write(&v3_path, v3).expect("write v3 model");
    match Clara::load(&v3_path) {
        Err(ClaraError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 3);
            assert_eq!(supported, clara_repro::clara::MODEL_FORMAT_VERSION);
        }
        Err(other) => panic!("version 3 must be UnsupportedVersion, got {other}"),
        Ok(_) => panic!("version 3 must not load"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (d): the pinned tolerance holds on synthesized modules the
    /// predictor never trained on — quantization error is a property of
    /// the weights, not of the corpus.
    #[test]
    fn synthesized_modules_stay_within_tolerance(seed in 0u64..3000) {
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let predictor = &clara().predictor;
        for block in &prepare_module(&m).blocks {
            let f = predictor.predict_block(&block.tokens);
            let q = predictor.predict_block_prec(&block.tokens, Precision::Q16);
            let bound = quantcheck::QUANT_ABS_TOLERANCE
                .max(quantcheck::QUANT_REL_TOLERANCE * f.abs());
            prop_assert!(
                (q - f).abs() <= bound,
                "seed {seed}: block predicts {f} (f64) vs {q} (q16), bound {bound}"
            );
        }
    }
}
