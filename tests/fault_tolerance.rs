//! Fault tolerance at the facade boundary: runs whose engine tasks fail
//! permanently surface as [`ClaraError::Degraded`] with exact counts,
//! while within-budget faults are invisible (see
//! `tests/engine_determinism.rs` for the bit-identity half).

use std::sync::Mutex;

use clara_repro::clara::engine::{self, EngineOptions, FaultKind, FaultPlan};
use clara_repro::clara::{Clara, ClaraConfig, ClaraError};
use clara_repro::trafgen::{Trace, WorkloadSpec};

/// Engine configuration is a process global; tests in this binary
/// serialize on this lock and restore the defaults before releasing it.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn tiny(engine_opts: EngineOptions) -> ClaraConfig {
    ClaraConfig::fast(31)
        .to_builder()
        .predict_programs(6)
        .algid_per_class(4)
        .scaleout_programs(2)
        .epochs(2)
        .engine(engine_opts)
        .build()
}

#[test]
fn over_budget_faults_degrade_training_with_exact_counts() {
    let _g = ENGINE_LOCK.lock().unwrap();
    // depth 9 with a retry budget of 1: every selected Panic/Error task
    // fails permanently (Stall tasks still succeed — a stall delays the
    // attempt, it does not fail it).
    let plan = { let mut p = FaultPlan::new(3, 0.6); p.depth = 9; p };
    let opts = EngineOptions::builder().retries(1).faults(plan).build();
    engine::Engine::new().clear_caches();
    let before = engine::EngineStats::snapshot();
    let result = Clara::train(&tiny(opts));
    let after = engine::EngineStats::snapshot();
    engine::configure(&EngineOptions::default());

    match result {
        Err(ClaraError::Degraded { failed, total }) => {
            assert!(failed > 0, "a 60% permanent plan must fail something");
            assert!(total >= failed, "failed {failed} of {total}");
            assert_eq!(ClaraError::Degraded { failed, total }.exit_code(), 3);
        }
        Err(other) => panic!("expected Degraded, got {other}"),
        Ok(_) => panic!("expected Degraded, got a trained pipeline"),
    }
    assert!(
        after.faults_injected > before.faults_injected,
        "injection counter must move"
    );
    assert!(
        after.task_failures > before.task_failures,
        "permanent-failure counter must move"
    );
    assert!(after.retries > before.retries, "retry counter must move");
}

#[test]
fn within_budget_faults_still_produce_a_pipeline() {
    let _g = ENGINE_LOCK.lock().unwrap();
    // depth 1 ≤ retries 2: every fault retries out.
    let plan = FaultPlan::new(12, 0.3);
    let opts = EngineOptions::builder().retries(2).faults(plan).build();
    engine::Engine::new().clear_caches();
    let result = Clara::train(&tiny(opts));
    engine::configure(&EngineOptions::default());
    let clara = result.expect("within-budget faults must not degrade the run");
    let trace = Trace::generate(&WorkloadSpec::large_flows(), 60, 4);
    let module = clara_repro::click::corpus()
        .into_iter()
        .find(|e| e.name() == "aggcounter")
        .expect("known element")
        .module;
    let insights = clara.analyze(&module, &trace).expect("analysis succeeds");
    assert!(insights.suggested_cores >= 1);
}

#[test]
fn analyze_profile_fault_surfaces_as_degraded() {
    let _g = ENGINE_LOCK.lock().unwrap();
    engine::Engine::new().clear_caches();
    let clara = Clara::train(&tiny(EngineOptions::default())).expect("clean train");
    // Pick a seed whose injection for ("analyze-profile", task 0) is a
    // hard failure; Stall injections succeed after sleeping, so they
    // cannot drive this test. The search is deterministic.
    let plan = (0..500u64)
        .map(|seed| { let mut p = FaultPlan::new(seed, 1.0); p.depth = 9; p })
        .find(|p| {
            matches!(
                p.decide("analyze-profile", 0, 0),
                Some(FaultKind::Panic | FaultKind::Error)
            )
        })
        .expect("some seed selects a hard fault");
    engine::configure(&EngineOptions::builder().retries(1).faults(plan).build());
    let trace = Trace::generate(&WorkloadSpec::large_flows(), 60, 4);
    let module = clara_repro::click::corpus()
        .into_iter()
        .find(|e| e.name() == "cmsketch")
        .expect("known element")
        .module;
    let result = clara.analyze(&module, &trace);
    engine::configure(&EngineOptions::default());
    match result {
        Err(ClaraError::Degraded { failed: 1, total: 1 }) => {}
        Err(other) => panic!("expected Degraded {{1, 1}}, got {other}"),
        Ok(_) => panic!("expected Degraded, got insights"),
    }
}

#[test]
fn clara_faults_env_override_reaches_the_engine() {
    let _g = ENGINE_LOCK.lock().unwrap();
    engine::configure(&EngineOptions::default());
    // Deterministically pick an env plan that permanently fails at least
    // one task of this stage under a zero-retry budget.
    let seed = (0..500u64)
        .find(|&s| {
            let p = { let mut p = FaultPlan::new(s, 0.8); p.depth = 9; p };
            (0..8usize).any(|i| {
                matches!(
                    p.decide("env-fault-stage", i, 0),
                    Some(FaultKind::Panic | FaultKind::Error)
                )
            })
        })
        .expect("some seed hard-faults the stage");
    engine::configure(&EngineOptions::builder().retries(0).build());
    std::env::set_var("CLARA_FAULTS", format!("{seed}:0.8:9"));
    let items: Vec<u64> = (0..8).collect();
    let out = engine::try_par_map("env-fault-stage", &items, |_, &x| x);
    std::env::remove_var("CLARA_FAULTS");
    engine::configure(&EngineOptions::default());
    assert!(
        !out.failures.is_empty(),
        "CLARA_FAULTS must inject without any configured plan"
    );
    // Malformed env values are ignored, not fatal.
    std::env::set_var("CLARA_FAULTS", "not-a-plan");
    let ok = engine::try_par_map("env-fault-stage", &items, |_, &x| x);
    std::env::remove_var("CLARA_FAULTS");
    assert!(ok.is_complete(), "malformed CLARA_FAULTS must be ignored");
}
