//! Flow-state corpus acceptance.
//!
//! Two contracts from the stateful-NF engine:
//!
//! 1. a churn schedule drives real flow-table eviction *and* idle
//!    expiration in a corpus NF, with counter values pinned — any change
//!    to probe order, timeout comparison, or victim selection breaks the
//!    pin before it can silently shift a profile;
//! 2. eviction order is deterministic across engine worker counts: the
//!    full profile of every flow NF under flow-storm workloads is
//!    bit-identical between a 1-worker and a 4-worker pool.

use std::sync::Mutex;

use proptest::prelude::*;

use clara_repro::clara::engine;
use clara_repro::click::{elements, Machine};
use clara_repro::ir::{GlobalId, Module};
use clara_repro::nicsim::{NicConfig, PortConfig};
use clara_repro::trafgen::{Schedule, WorkloadSpec};

/// `set_threads` is a process global; every test that flips it holds
/// this lock (same pattern as `engine_determinism.rs`).
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// The five flow-table NFs added with the stateful corpus engine.
fn flow_modules() -> Vec<Module> {
    [
        elements::natchurn(),
        elements::fwstate(),
        elements::conntrack(),
        elements::dnscache(),
        elements::flowlimiter(),
    ]
    .into_iter()
    .map(|e| e.module)
    .collect()
}

#[test]
fn churn_schedule_drives_pinned_flow_table_eviction() {
    // natchurn's NAT table: 1024 entries x 4-way buckets, idle timeout 64
    // ticks, LRU. The churn schedule floods it with four disjoint
    // small-flow populations: every phase boundary inserts thousands of
    // never-seen keys while the previous phase's entries go idle.
    let nf = elements::natchurn();
    let mut m = Machine::new(&nf.module).expect("valid module");
    let s = Schedule::churn(8);
    for epoch in 0..s.epochs() {
        let trace = s.epoch_trace(epoch, 400, 1311).expect("in range");
        for p in &trace.pkts {
            m.run(p).expect("no step limit");
        }
    }
    let c = m.state.flow_counters(GlobalId(0));
    assert!(
        c.insertions > 0 && c.evictions > 0 && c.expirations > 0,
        "churn must exercise every counter: {c:?}"
    );
    // Pinned: these counters ARE the eviction semantics. If this pin
    // moves without an intentional semantics change, the difftest oracle
    // layers have silently diverged from what this test observed.
    assert_eq!(
        (c.insertions, c.evictions, c.expirations),
        (2823, 2505, 78),
        "flow-table churn counters moved"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Eviction order is deterministic across 1 vs 4 engine workers: the
    /// per-NF workload profiles (which fold in every stateful address
    /// touched, and therefore every slot-reuse decision the flow tables
    /// made) fingerprint-match bit for bit.
    #[test]
    fn flow_eviction_order_is_deterministic_across_worker_counts(seed in 0u64..1000) {
        let _g = THREADS_LOCK.lock().unwrap();
        let modules = flow_modules();
        let workloads = [
            WorkloadSpec::small_flows().with_flows(4096),
            WorkloadSpec::small_flows().with_flows(16384),
        ];
        let cfg = NicConfig::default();
        let port = PortConfig::naive();

        engine::set_threads(1);
        engine::Engine::new().clear_caches();
        let serial = engine::profile_matrix(&modules, &workloads, 300, seed, &port, &cfg);
        engine::set_threads(4);
        engine::Engine::new().clear_caches();
        let parallel = engine::profile_matrix(&modules, &workloads, 300, seed, &port, &cfg);
        engine::set_threads(0);

        prop_assert_eq!(serial.len(), modules.len() * workloads.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(
                engine::value_fingerprint(s),
                engine::value_fingerprint(p),
                "flow profile cell {} diverged between 1 and 4 workers (seed {})",
                i,
                seed
            );
        }
    }
}
