//! Placement-API integration pins: the ILP-vs-greedy difftest across
//! the full corpus × every built-in device, a golden plan matrix, and
//! the drift-driven replay invariants.
//!
//! Three layers of pin live here:
//!
//! - `ilp_never_loses_to_greedy_across_corpus_and_backends` is the
//!   difftest the ISSUE asks for: on every (extended-corpus NF, HAL
//!   backend) pair the exact solver's objective must be at least the
//!   greedy fallback's, and the two must agree on feasibility in the
//!   one direction that is a theorem (an instance the greedy heuristic
//!   solves is feasible, so the ILP must solve it too).
//! - `placement_matrix_matches_golden` renders the chosen level per
//!   global (plus objective and greedy delta) into
//!   `tests/golden/place_matrix.txt`, so cost-model or solver changes
//!   surface as a readable diff. Regenerate intentionally with
//!   `CLARA_BLESS=1 cargo test --test placement`.
//! - the replay properties: a single-phase (drift-free) schedule never
//!   migrates state, a phase-shifting schedule re-solves at least once,
//!   and two identical `place` calls render byte-identical responses.

use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;

use clara_repro::clara::placement::plan::{self, DEFAULT_NODE_BUDGET};
use clara_repro::clara::{Clara, ClaraConfig, ClaraError, PlacementFailure, PlacementRequest};
use clara_repro::hal::{self, Backend as _};
use clara_repro::nicsim::PortConfig;
use clara_repro::trafgen::{Trace, WorkloadSpec};

/// Replay tests drive the process-global telemetry registry; keep them
/// from interleaving with each other.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// One trained pipeline shared by every facade-level test here.
fn clara() -> &'static Clara {
    static CLARA: OnceLock<Clara> = OnceLock::new();
    CLARA.get_or_init(|| Clara::train(&ClaraConfig::fast(11)).expect("training succeeds"))
}

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("CLARA_BLESS").is_ok() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("{path} missing; regenerate with CLARA_BLESS=1 cargo test --test placement")
    });
    assert_eq!(
        got, &want,
        "{name} changed; if intentional, regenerate with CLARA_BLESS=1 cargo test --test placement"
    );
}

/// Profiles one corpus element on one backend (no trained model needed:
/// placement inputs are pure profiling artifacts).
fn profile(
    e: &clara_repro::click::NfElement,
    b: &hal::DeviceBackend,
) -> clara_repro::nicsim::WorkloadProfile {
    let trace = Trace::generate(&WorkloadSpec::small_flows().with_flows(2048), 300, 5);
    clara_repro::nicsim::profile_workload(&e.module, &trace, &PortConfig::naive(), b.nic(), |_| {})
}

#[test]
fn ilp_never_loses_to_greedy_across_corpus_and_backends() {
    for e in clara_repro::click::extended_corpus() {
        for b in hal::builtins() {
            let wp = profile(&e, b);
            match plan::solve_nf(&e.module, &wp, b.nic(), DEFAULT_NODE_BUDGET) {
                Ok(solve) => {
                    assert!(
                        solve.objective >= -1e-9,
                        "{} on {}: negative objective {}",
                        e.name(),
                        b.name(),
                        solve.objective
                    );
                    if let Some(g) = &solve.greedy {
                        assert!(
                            solve.objective >= g.objective - 1e-9,
                            "{} on {}: ILP objective {} below greedy {}",
                            e.name(),
                            b.name(),
                            solve.objective,
                            g.objective
                        );
                        // Shared NFs must agree on per-global feasibility:
                        // both placements cover exactly the module's globals.
                        assert_eq!(solve.placement.len(), e.module.globals.len());
                        assert_eq!(g.placement.len(), e.module.globals.len());
                    }
                }
                Err(ClaraError::Placement {
                    kind: PlacementFailure::Infeasible,
                    ..
                }) => {
                    // Greedy never solves an instance the exact search
                    // proves infeasible.
                    assert!(
                        plan::greedy_placement(&e.module, &wp, b.nic()).is_none(),
                        "{} on {}: greedy found a plan the ILP called infeasible",
                        e.name(),
                        b.name()
                    );
                }
                Err(other) => panic!("{} on {}: unexpected error {other}", e.name(), b.name()),
            }
        }
    }
}

#[test]
fn placement_matrix_matches_golden() {
    let mut out = String::from(
        "# placement matrix golden: <element> <backend> obj=<saved cycles/pkt> \
         greedy=<greedy objective|none> <global>=<level>...\n",
    );
    for e in clara_repro::click::extended_corpus() {
        for b in hal::builtins() {
            let wp = profile(&e, b);
            match plan::solve_nf(&e.module, &wp, b.nic(), DEFAULT_NODE_BUDGET) {
                Ok(solve) => {
                    let greedy = solve
                        .greedy
                        .as_ref()
                        .map_or("none".to_string(), |g| format!("{:.3}", g.objective));
                    let levels: Vec<String> = solve
                        .placement
                        .iter()
                        .map(|(g, l)| {
                            format!(
                                "{}={}",
                                e.module.global(*g).map_or("?", |d| d.name.as_str()),
                                l.name()
                            )
                        })
                        .collect();
                    writeln!(
                        out,
                        "{} {} obj={:.3} greedy={} {}",
                        e.name(),
                        b.name(),
                        solve.objective,
                        greedy,
                        levels.join(" ")
                    )
                    .expect("write to string");
                }
                Err(e2) => {
                    writeln!(out, "{} {} error={e2}", e.name(), b.name())
                        .expect("write to string");
                }
            }
        }
    }
    check_golden("place_matrix.txt", &out);
}

#[test]
fn place_plan_has_the_request_shape_and_beats_greedy() {
    let _g = OBS_LOCK.lock().unwrap();
    let req = PlacementRequest::new(["firewall", "mazunat"]);
    let plan = clara().place(&req).expect("feasible request");
    assert_eq!(plan.nfs.len(), 2);
    assert_eq!(plan.nfs[0].nf, "firewall");
    assert_eq!(plan.nfs[1].nf, "mazunat");
    assert!(plan.total_objective >= plan.greedy_total_objective - 1e-9);
    assert_eq!(plan.split.total_stages, 2);
    assert!(plan.split.nic_stages <= plan.split.total_stages);
    assert!(plan.replay.is_none());
    for nf in &plan.nfs {
        assert!(nf.throughput_mpps > 0.0 && nf.throughput_mpps.is_finite());
        assert!(nf.latency_us > 0.0 && nf.latency_us.is_finite());
        assert!(nf.suggested_cores >= 1);
        assert!(nf.solve.delta() >= -1e-9, "delta {}", nf.solve.delta());
    }
}

#[test]
fn unknown_nf_is_a_typed_placement_error() {
    let _g = OBS_LOCK.lock().unwrap();
    let err = clara()
        .place(&PlacementRequest::new(["not-an-nf"]))
        .expect_err("must fail");
    match err {
        ClaraError::Placement { kind, .. } => assert_eq!(kind, PlacementFailure::UnknownNf),
        other => panic!("unexpected error {other}"),
    }
    assert_eq!(err.exit_code(), 10);
}

#[test]
fn shifting_replay_resolves_and_renders_deterministically() {
    let _g = OBS_LOCK.lock().unwrap();
    let req = PlacementRequest::builder(["mazunat"])
        .replay("shift")
        .epochs(4)
        .build();
    let a = clara().place(&req).expect("feasible replay");
    let replay = a.replay.as_ref().expect("replay summary present");
    assert_eq!(replay.schedule, "shift");
    assert_eq!(replay.epochs.len(), 4);
    assert!(
        replay.resolves >= 1,
        "phase boundary must trigger a re-solve: {replay:?}"
    );
    // Epoch 0 always solves but is not a re-solve.
    assert!(replay.epochs[0].resolved);
    assert_eq!(replay.epochs[0].drift, 0.0);
    // Byte-determinism: the same request renders the same response.
    let b = clara().place(&req).expect("feasible replay");
    assert_eq!(
        clara_repro::serve::protocol::place_response(None, &a),
        clara_repro::serve::protocol::place_response(None, &b),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A drift-free (single-phase) replay never migrates: every epoch of
    /// a `steady` schedule regenerates a bit-identical trace, so drift
    /// is exactly zero and the epoch-0 plan survives the whole replay.
    #[test]
    fn steady_replay_never_migrates(seed in 0u64..500, epochs in 2usize..5) {
        let _g = OBS_LOCK.lock().unwrap();
        let req = PlacementRequest::builder(["udpcount"])
            .seed(seed)
            .packets(200)
            .replay("steady")
            .epochs(epochs)
            .build();
        let plan = clara().place(&req).expect("feasible replay");
        let replay = plan.replay.as_ref().expect("replay summary present");
        prop_assert_eq!(replay.resolves, 0, "{:?}", replay);
        prop_assert_eq!(replay.migrated_globals, 0);
        prop_assert_eq!(replay.migration_bytes, 0);
        for ep in replay.epochs.iter().skip(1) {
            prop_assert_eq!(ep.drift, 0.0);
            prop_assert!(!ep.resolved);
        }
    }
}
