//! Golden cross-device matrix: one trained pipeline, every Click corpus
//! element, every built-in device manifest.
//!
//! Two pins live here:
//!
//! - `cross_device_matrix_matches_golden` renders per-(element, backend)
//!   prediction summaries (suggested cores, modeled throughput/latency,
//!   compute estimate, counted memory accesses) and compares them to
//!   `tests/golden/backend_matrix.txt`. A change to any manifest, to the
//!   performance model, or to the HAL plumbing shows up as a readable
//!   diff instead of a silent drift.
//! - `default_backend_report_is_byte_identical_to_legacy` proves the
//!   ISSUE's compatibility clause: analyzing on the default `agilio-cx`
//!   backend produces a deterministic telemetry report byte-identical to
//!   the legacy pre-HAL path, and pins that report's fingerprint in
//!   `tests/golden/backend_report_fp.txt`.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```sh
//! CLARA_BLESS=1 cargo test --test backend_matrix
//! ```

use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use clara_repro::clara::{engine, Clara, ClaraConfig};
use clara_repro::hal::{self, Backend as _};
use clara_repro::trafgen::{Trace, WorkloadSpec};

/// Both tests drive the process-global engine and telemetry registry;
/// they must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// One trained pipeline shared by both tests (training dominates
/// runtime; predictions are cheap).
fn clara() -> &'static Clara {
    static CLARA: OnceLock<Clara> = OnceLock::new();
    CLARA.get_or_init(|| Clara::train(&ClaraConfig::fast(11)).expect("training succeeds"))
}

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn check_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var("CLARA_BLESS").is_ok() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("{path} missing; regenerate with CLARA_BLESS=1 cargo test --test backend_matrix")
    });
    assert_eq!(
        got, &want,
        "{name} changed; if intentional, regenerate with CLARA_BLESS=1 cargo test --test backend_matrix"
    );
}

#[test]
fn cross_device_matrix_matches_golden() {
    let _g = OBS_LOCK.lock().unwrap();
    let clara = clara();
    let mut out = String::from(
        "# backend matrix golden: <element> <backend> cores=<suggested> \
         mpps=<throughput> lat_us=<latency> compute=<cycles/pkt> mem=<counted>\n",
    );
    for e in clara_repro::click::corpus() {
        let trace = Trace::generate(&WorkloadSpec::imix(), 60, 7);
        for b in hal::builtins() {
            let p = clara
                .predict_one_on(&e.module, &trace, b)
                .expect("prediction succeeds");
            writeln!(
                out,
                "{} {} cores={} mpps={:.3} lat_us={:.3} compute={:.1} mem={}",
                e.name(),
                b.name(),
                p.suggested_cores,
                p.predicted_throughput_mpps,
                p.predicted_latency_us,
                p.predicted_compute,
                p.counted_mem
            )
            .expect("write to string");
        }
    }
    // Ported compute cycles for the accelerator-eligible NFs — the rows
    // where a device's declared catalog variant shows: dpu-offpath's
    // `crc64-ecma` menu entry doubles the CRC per-iteration charge, so
    // its `ported` rows for the CRC NFs differ from what the identical
    // device with the default variant would produce (see
    // `dpu_crc_variant_delta_is_attributable_to_the_catalog`).
    for name in ["cmsketch", "wepdecap", "iplookup"] {
        let e = clara_repro::click::corpus()
            .into_iter()
            .find(|e| e.name() == name)
            .expect("known corpus element");
        let trace = Trace::generate(&WorkloadSpec::imix(), 60, 7);
        for b in hal::builtins() {
            let insights = clara.analyze_on(&e.module, &trace, b).expect("analyze succeeds");
            let port = insights.port_config();
            let wp =
                clara_repro::nicsim::profile_workload(&e.module, &trace, &port, b.nic(), |_| {});
            writeln!(out, "ported {} {} cycles={:.3}", e.name(), b.name(), wp.compute)
                .expect("write to string");
        }
    }
    check_golden("backend_matrix.txt", &out);
}

/// Cross-device accelerator-variant pin: porting a CRC NF onto each
/// device charges the device's CRC engine, and `dpu-offpath`'s declared
/// `crc64-ecma` variant (2x per-iteration cost) produces a compute delta
/// attributable to *nothing but* the catalog variant. The per-device
/// ported cycle counts are pinned in `backend_matrix.txt` alongside the
/// prediction rows (see `cross_device_matrix_matches_golden`).
#[test]
fn dpu_crc_variant_delta_is_attributable_to_the_catalog() {
    let _g = OBS_LOCK.lock().unwrap();
    let clara = clara();
    let trace = Trace::generate(&WorkloadSpec::imix(), 60, 7);
    let e = clara_repro::click::corpus()
        .into_iter()
        .find(|e| e.name() == "wepdecap")
        .expect("known corpus element");
    let dpu = hal::builtin("dpu-offpath").expect("shipped");
    let insights = clara.analyze_on(&e.module, &trace, dpu).expect("analyze");
    let (class, _) = insights.accel.clone().expect("wepdecap has a CRC region");
    assert_eq!(class.name(), "crc");
    let port = insights.port_config();

    // The same manifest with the `variant` key stripped lowers to the
    // catalog default (crc32-ieee, scale 1.0).
    let text = std::fs::read_to_string(format!(
        "{}/crates/hal/manifests/dpu-offpath.toml",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("shipped manifest readable");
    let stripped: String = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("variant"))
        .collect::<Vec<_>>()
        .join("\n");
    let base = hal::DeviceBackend::parse("dpu-default-crc.toml", &stripped).expect("valid");
    assert_eq!(base.manifest().crc.variant, "crc32-ieee");
    assert_eq!(dpu.nic().crc_accel_per_iter, 2.0 * base.nic().crc_accel_per_iter);

    // Profile the ported NF under both lowered configs: identical except
    // for the CRC engine's per-iteration cost, so the compute delta is
    // exactly the collapsed CRC iterations' share.
    let with = clara_repro::nicsim::profile_workload(&e.module, &trace, &port, dpu.nic(), |_| {});
    let without =
        clara_repro::nicsim::profile_workload(&e.module, &trace, &port, base.nic(), |_| {});
    assert!(
        with.compute > without.compute,
        "crc64-ecma must cost more per packet: {} vs {}",
        with.compute,
        without.compute
    );
    assert_eq!(with.pkts, without.pkts);
    assert_eq!(with.fixed_accesses, without.fixed_accesses);
    assert_eq!(with.global_access, without.global_access);
}

#[test]
fn default_backend_report_is_byte_identical_to_legacy() {
    let _g = OBS_LOCK.lock().unwrap();
    let clara = clara();
    let e = clara_repro::click::corpus()
        .into_iter()
        .find(|e| e.name() == "cmsketch")
        .expect("known corpus element");
    let trace = Trace::generate(&WorkloadSpec::imix(), 60, 7);
    // Capture a full deterministic telemetry report for one analysis.
    // Caches are cleared before each capture so both runs do identical
    // cold work and their counters agree.
    let capture = |run: &dyn Fn()| {
        engine::Engine::new().clear_caches();
        clara_repro::obs::enable();
        clara_repro::obs::reset();
        run();
        let json = clara_repro::obs::RunReport::capture().to_json_deterministic();
        clara_repro::obs::disable();
        json
    };
    let legacy = capture(&|| {
        clara.analyze(&e.module, &trace).expect("legacy analyze");
    });
    let default_backend = hal::default_backend();
    assert_eq!(default_backend.name(), hal::DEFAULT_BACKEND);
    let on_default = capture(&|| {
        clara
            .analyze_on(&e.module, &trace, default_backend)
            .expect("analyze on default backend");
    });
    assert!(legacy.contains("clara-analyze"), "{legacy}");
    assert_eq!(
        legacy, on_default,
        "analyze_on(default) must be byte-identical to the legacy path"
    );
    // Pin the deterministic report shape itself, so a change to the span
    // tree or the work-derived counters is an explicit golden update.
    let fp = format!("{:016x}\n", engine::value_fingerprint(&legacy));
    check_golden("backend_report_fp.txt", &fp);
}
