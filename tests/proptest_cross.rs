//! Cross-crate property tests: random synthesized NFs flow through the
//! compiler, interpreter, profiler, and performance model while
//! preserving system invariants.

use proptest::prelude::*;

use clara_repro::nicsim::{self, MemLevel, NicConfig, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Synthesized programs compile and run end to end; costs are finite
    /// and positive.
    #[test]
    fn synthesized_nfs_flow_through_the_stack(seed in 0u64..5000) {
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let nic = clara_repro::nfcc::compile_module(&m);
        prop_assert!(nic.handler().total_compute() > 0);
        let trace = Trace::generate(&WorkloadSpec::imix(), 40, seed);
        let cfg = NicConfig::default();
        let wp = nicsim::profile_workload(&m, &trace, &PortConfig::naive(), &cfg, |_| {});
        prop_assert!(wp.compute.is_finite() && wp.compute > 0.0);
        let p = nicsim::solve_perf(&wp, &cfg, &PortConfig::naive(), 16);
        prop_assert!(p.throughput_mpps > 0.0 && p.throughput_mpps.is_finite());
        prop_assert!(p.latency_us > 0.0 && p.latency_us.is_finite());
    }

    /// Recording traces once and re-costing equals direct profiling.
    #[test]
    fn recorded_profile_equals_direct_profile(seed in 0u64..2000) {
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 30, seed);
        let cfg = NicConfig::default();
        let port = PortConfig::naive();
        let direct = nicsim::profile_workload(&m, &trace, &port, &cfg, |_| {});
        let rec = nicsim::record_workload(&m, &trace, |_| {});
        let replayed = nicsim::profile_recorded(&m, &rec, &port, &cfg);
        prop_assert_eq!(direct, replayed);
    }

    /// Clara's placement never violates memory capacities.
    #[test]
    fn suggested_placements_fit_capacities(seed in 0u64..2000) {
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let trace = Trace::generate(&WorkloadSpec::small_flows().with_flows(512), 60, seed);
        let cfg = NicConfig::default();
        let wp = nicsim::profile_workload(&m, &trace, &PortConfig::naive(), &cfg, |_| {});
        if let Some(placement) =
            clara_repro::clara::placement::plan::suggest_placement(&m, &wp, &cfg)
        {
            let mut used = [0u64; 4];
            for g in &m.globals {
                used[placement[&g.id].index()] += g.total_bytes();
            }
            for l in MemLevel::ALL {
                prop_assert!(
                    used[l.index()] <= cfg.level(l).capacity,
                    "{} overfull", l.name()
                );
            }
        }
    }

    /// Coalescing plans suggested by Clara never increase channel demand.
    #[test]
    fn coalescing_never_hurts(seed in 0u64..1000) {
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 80, seed);
        let cfg = NicConfig::default();
        let plan = clara_repro::clara::coalesce::suggest_coalescing(&m, &trace, seed);
        let base = clara_repro::clara::coalesce::eval_plan(
            &m, &trace, &cfg, &nicsim::CoalescePlan::default());
        let packed = clara_repro::clara::coalesce::eval_plan(&m, &trace, &cfg, &plan);
        prop_assert!(packed <= base + 1e-9, "packed {packed} > base {base}");
    }

    /// Optimized modules are semantically identical to the originals:
    /// same return values and verdicts on every packet of a shared trace.
    #[test]
    fn optimizer_preserves_interpreter_semantics(seed in 0u64..3000) {
        let original = nf_synth::synth_corpus(1, true, seed).remove(0);
        let mut optimized = original.clone();
        let _ = clara_repro::ir::opt::optimize(&mut optimized);
        clara_repro::ir::verify::verify_module(&optimized).expect("optimized verifies");

        let trace = Trace::generate(&WorkloadSpec::imix(), 40, seed ^ 0xbeef);
        let mut m1 = clara_repro::click::Machine::new(&original).expect("verifies");
        let mut m2 = clara_repro::click::Machine::new(&optimized).expect("verifies");
        for p in &trace.pkts {
            let mut v1 = clara_repro::click::PacketView::new(p);
            let mut v2 = clara_repro::click::PacketView::new(p);
            let (t1, verdict1) = m1.run_view(&mut v1).expect("runs");
            let (t2, verdict2) = m2.run_view(&mut v2).expect("runs");
            prop_assert_eq!(t1.ret, t2.ret, "return value diverged");
            prop_assert_eq!(verdict1, verdict2, "verdict diverged");
        }
    }

    /// Device manifests change *costs*, never *semantics*: profiling the
    /// same NF and trace under every built-in backend yields identical
    /// access-side profiles (packet counts, fixed and per-global access
    /// frequencies, working sets), because all of those derive from the
    /// device-independent interpreter event stream. Meanwhile the
    /// performance model must be honest about the device: a backend with
    /// a different core clock cannot report the same latency.
    #[test]
    fn profiles_are_backend_invariant(seed in 0u64..2000) {
        use clara_repro::hal::Backend as _;
        let m = nf_synth::synth_corpus(1, true, seed).remove(0);
        let trace = Trace::generate(&WorkloadSpec::imix(), 40, seed);
        let port = PortConfig::naive();
        let backends = clara_repro::hal::builtins();
        let profiles: Vec<_> = backends
            .iter()
            .map(|b| nicsim::profile_workload(&m, &trace, &port, b.nic(), |_| {}))
            .collect();
        for (b, wp) in backends.iter().zip(&profiles).skip(1) {
            if let Some(d) = profiles[0].access_divergence_from(wp) {
                prop_assert!(
                    false,
                    "{} diverged from {}: {}", b.name(), backends[0].name(), d
                );
            }
        }
        let base = nicsim::solve_perf(&profiles[0], backends[0].nic(), &port, 8);
        for (b, wp) in backends.iter().zip(&profiles).skip(1) {
            if b.nic().freq_ghz != backends[0].nic().freq_ghz {
                let p = nicsim::solve_perf(wp, b.nic(), &port, 8);
                prop_assert!(
                    p.latency_us != base.latency_us,
                    "{} latency matches {} despite a different clock",
                    b.name(), backends[0].name()
                );
            }
        }
    }

    /// Colocating with any neighbour never *improves* a tenant's
    /// performance vs running alone on the same cores.
    #[test]
    fn colocation_never_helps(seed in 0u64..1000) {
        let mods = nf_synth::synth_corpus(2, true, seed);
        let trace = Trace::generate(&WorkloadSpec::small_flows().with_flows(1024), 60, seed);
        let cfg = NicConfig::default();
        let port = PortConfig::naive();
        let wa = nicsim::profile_workload(&mods[0], &trace, &port, &cfg, |_| {});
        let wb = nicsim::profile_workload(&mods[1], &trace, &port, &cfg, |_| {});
        let solo = nicsim::solve_perf(&wa, &cfg, &port, 30);
        let pair = nicsim::solve_colocated(&[&wa, &wb], &cfg, &[&port, &port], &[30, 30]);
        prop_assert!(pair[0].throughput_mpps <= solo.throughput_mpps * (1.0 + 1e-6));
        prop_assert!(pair[0].latency_us >= solo.latency_us * (1.0 - 1e-6));
    }
}
