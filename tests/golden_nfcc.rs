//! Golden-file test pinning `nfcc::compile_module` output over the full
//! Click corpus.
//!
//! The engine's compile cache assumes compilation is a pure function of
//! the module; this test pins what that function produces — handler
//! block count and per-block issue cycles for every corpus element — so
//! an accidental change to the lowering shows up as a readable diff.
//!
//! Regenerate after an *intentional* compiler change with:
//!
//! ```sh
//! CLARA_BLESS=1 cargo test --test golden_nfcc
//! ```

use std::fmt::Write as _;

fn rendered() -> String {
    let mut out = String::from("# nfcc corpus golden: <element> blocks=<handler blocks> issue=<total> per_block=<cycles,...>\n");
    for e in clara_repro::click::corpus() {
        let nic = clara_repro::nfcc::compile_module(&e.module);
        let h = nic.handler();
        let per_block: Vec<String> = h
            .blocks
            .iter()
            .map(|b| b.issue_cycles().to_string())
            .collect();
        let issue: u32 = h.blocks.iter().map(|b| b.issue_cycles()).sum();
        writeln!(
            out,
            "{} blocks={} issue={} per_block={}",
            e.name(),
            h.blocks.len(),
            issue,
            per_block.join(",")
        )
        .expect("write to string");
    }
    out
}

#[test]
fn compiled_corpus_matches_golden() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/nfcc_corpus.txt");
    let got = rendered();
    if std::env::var("CLARA_BLESS").is_ok() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing; regenerate with CLARA_BLESS=1 cargo test --test golden_nfcc");
    assert_eq!(
        got, want,
        "nfcc output changed; if intentional, regenerate with CLARA_BLESS=1 cargo test --test golden_nfcc"
    );
}
