//! End-to-end coverage of the observability layer.
//!
//! These tests exercise the full telemetry path — spans opened by the
//! engine and substrate crates, the always-on metric counters, report
//! serialization, and the facade's report sinks and versioned model
//! persistence. The obs registry is process-global, so every test here
//! holds [`OBS_LOCK`] and resets the registry before making assertions.

use std::sync::Mutex;

use clara_repro::clara::{engine, Clara, ClaraConfig, ClaraError, MODEL_FORMAT_VERSION};
use clara_repro::ir::Module;
use clara_repro::nicsim::{NicConfig, PortConfig};
use clara_repro::obs;
use clara_repro::trafgen::{Trace, WorkloadSpec};

/// Serializes tests in this binary: obs state and the engine caches are
/// process globals.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn corpus_module(name: &str) -> Module {
    clara_repro::click::corpus()
        .into_iter()
        .find(|e| e.name() == name)
        .expect("known corpus element")
        .module
}

/// The engine's cache counters agree with its own `EngineStats` view, and
/// the single-flight caches make hit/miss counts exact.
#[test]
fn cache_counters_reconcile_with_engine_stats() {
    let _g = OBS_LOCK.lock().unwrap();
    engine::Engine::new().clear_caches();
    obs::reset();

    let module = corpus_module("aggcounter");
    let trace = Trace::generate(&WorkloadSpec::large_flows(), 60, 9);
    let port = PortConfig::naive();
    let cfg = NicConfig::default();
    let a = engine::Engine::new().profile_cached(&module, &trace, &port, &cfg);
    let b = engine::Engine::new().profile_cached(&module, &trace, &port, &cfg);
    assert_eq!(a.compute.to_bits(), b.compute.to_bits());

    // Snapshot first: it touches all four cache counters, registering any
    // (like compile hits) that this workload never incremented.
    let stats = engine::EngineStats::snapshot();
    let report = obs::RunReport::capture();
    assert_eq!(report.counter("engine.profile_cache.misses"), Some(1));
    assert_eq!(report.counter("engine.profile_cache.hits"), Some(1));
    assert_eq!(report.counter("engine.compile_cache.misses"), Some(1));

    assert_eq!(Some(stats.profile_misses), report.counter("engine.profile_cache.misses"));
    assert_eq!(Some(stats.profile_hits), report.counter("engine.profile_cache.hits"));
    assert_eq!(Some(stats.compile_misses), report.counter("engine.compile_cache.misses"));
    assert_eq!(Some(stats.compile_hits), report.counter("engine.compile_cache.hits"));
}

/// Spans opened inside worker threads nest under the dispatching stage
/// span (via `obs::attach`), exactly as they would in a serial run.
#[test]
fn worker_spans_nest_under_the_stage_span() {
    let _g = OBS_LOCK.lock().unwrap();
    engine::set_threads(2);
    engine::Engine::new().clear_caches();
    obs::enable();
    obs::reset();

    let modules = [corpus_module("aggcounter"), corpus_module("cmsketch")];
    let compiled = engine::par_map("obs-test-stage", &modules, |_, m| {
        engine::Engine::new().compile_cached(m).handler().total_compute()
    });
    assert_eq!(compiled.len(), 2);

    let report = obs::RunReport::capture();
    obs::disable();
    engine::set_threads(0);

    let stage = report.find_span("obs-test-stage").expect("stage span recorded");
    let nested = stage
        .children
        .iter()
        .filter(|c| c.name == "nfcc-compile")
        .count();
    assert_eq!(nested, 2, "both worker compiles nest under the stage: {stage:?}");
}

/// Both serializations are valid JSON and round-trip byte-identically
/// through the workspace's JSON parser.
#[test]
fn run_report_json_round_trips() {
    let _g = OBS_LOCK.lock().unwrap();
    obs::enable();
    obs::reset();

    obs::counter("obs_rt.counter").add(3);
    obs::gauge("obs_rt.gauge").set(1.25);
    let h = obs::histogram("obs_rt.hist");
    for v in [4.0, 1.0, 2.5] {
        h.observe(v);
    }
    {
        let _outer = obs::span!("rt-root", "k={}", 1);
        let _inner = obs::span("rt-child");
    }

    let report = obs::RunReport::capture();
    obs::disable();

    for json in [report.to_json(), report.to_json_deterministic()] {
        let value = serde_json::parse_value(&json).expect("report is valid JSON");
        let rendered = serde_json::to_string(&value).expect("value renders");
        assert_eq!(rendered, json, "JSON round-trip must be byte-identical");
    }
}

/// `Clara::train` honours the `CLARA_REPORT` sink and the written report
/// covers every layer: facade spans, engine caches, nfcc, nic-sim and the
/// per-epoch ML counters. The same trained model then exercises the
/// versioned persistence paths, including every error variant.
#[test]
fn train_report_sink_and_versioned_persistence() {
    let _g = OBS_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join("clara_obs_it");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let report_path = dir.join("train.json");

    engine::Engine::new().clear_caches();
    obs::reset();
    std::env::set_var("CLARA_REPORT", &report_path);
    let cfg = ClaraConfig::fast(21)
        .to_builder()
        .predict_programs(8)
        .algid_per_class(6)
        .scaleout_programs(3)
        .epochs(2)
        .build();
    let clara = Clara::train(&cfg).expect("train");
    std::env::remove_var("CLARA_REPORT");
    obs::disable();

    let body = std::fs::read_to_string(&report_path).expect("train report written");
    for needle in [
        "\"name\":\"clara-train\"",
        "train-predict-branch",
        "train-algid-branch",
        "train-scaleout-branch",
        "engine.compile_cache.misses",
        "nfcc.modules_compiled",
        "nicsim.profile_runs",
        "ml.lstm.epochs",
        "ml.gbdt.rounds",
    ] {
        assert!(body.contains(needle), "report missing {needle}");
    }

    // Versioned persistence: happy path first.
    let model_path = dir.join("model.json");
    clara.save(&model_path).expect("model saves");
    let loaded = Clara::load(&model_path).expect("model loads");
    let trace = Trace::generate(&WorkloadSpec::large_flows(), 80, 3);
    let module = corpus_module("aggcounter");
    let a = clara.analyze(&module, &trace).expect("analysis succeeds");
    let b = loaded.analyze(&module, &trace).expect("analysis succeeds");
    assert_eq!(a.suggested_cores, b.suggested_cores);

    // A future format version is rejected, not misread.
    let saved = std::fs::read_to_string(&model_path).expect("saved model readable");
    assert!(saved.contains("\"format_version\":2"), "envelope carries the version");
    let bumped = saved.replacen("\"format_version\":2", "\"format_version\":999", 1);
    std::fs::write(&model_path, bumped).expect("rewrite model");
    match Clara::load(&model_path) {
        Err(ClaraError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 999);
            assert_eq!(supported, MODEL_FORMAT_VERSION);
        }
        Err(other) => panic!("expected UnsupportedVersion, got {other:?}"),
        Ok(_) => panic!("expected UnsupportedVersion, got a loaded model"),
    }

    // Garbage content is a Format error; a missing file is an Io error.
    std::fs::write(&model_path, "{not json").expect("rewrite model");
    assert!(matches!(Clara::load(&model_path), Err(ClaraError::Format { .. })));
    assert!(matches!(
        Clara::load(dir.join("missing.json")),
        Err(ClaraError::Io { .. })
    ));

    let _ = std::fs::remove_dir_all(&dir);
}
