//! The persistent artifact cache is invisible to results and to the
//! deterministic run report.
//!
//! ISSUE acceptance: a warm-cache run must report zero recomputations
//! while its profiles — and its deterministic report rendering — stay
//! byte-identical to the cold run that populated the cache. Corrupt
//! artifacts must silently fall back to recomputation and be named by
//! the explicit verify pass.

use std::path::PathBuf;
use std::sync::Mutex;

use clara_repro::clara::engine::{self, Engine, EngineOptions};
use clara_repro::clara::ClaraError;
use clara_repro::ir::Module;
use clara_repro::nicsim::{NicConfig, PortConfig};
use clara_repro::obs;
use clara_repro::trafgen::WorkloadSpec;

/// Engine configuration, caches, and the obs registry are process
/// globals; tests in this binary serialize on this lock.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clara-cache-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn elements() -> Vec<Module> {
    ["aggcounter", "cmsketch"]
        .iter()
        .map(|name| {
            clara_repro::click::corpus()
                .into_iter()
                .find(|e| e.name() == *name)
                .expect("known corpus element")
                .module
        })
        .collect()
}

#[test]
fn warm_cache_run_recomputes_nothing_and_reports_identically() {
    let _g = ENGINE_LOCK.lock().unwrap();
    let dir = tmp_dir("warm");
    let modules = elements();
    let workloads = [WorkloadSpec::large_flows()];
    let cfg = NicConfig::default();
    let port = PortConfig::naive();
    engine::configure(&EngineOptions::builder().workers(2).cache_dir(&dir).build());

    let run = || {
        Engine::new().clear_caches();
        obs::enable();
        obs::reset();
        let before = engine::EngineStats::snapshot();
        let profiles = engine::profile_matrix(&modules, &workloads, 60, 5, &port, &cfg);
        let after = engine::EngineStats::snapshot();
        let report = obs::RunReport::capture().to_json_deterministic();
        obs::disable();
        (profiles, report, before, after)
    };

    let (cold_profiles, cold_report, cold_before, cold_after) = run();
    assert!(
        cold_after.disk_recomputes > cold_before.disk_recomputes,
        "cold run populates an empty cache by recomputing"
    );
    assert_eq!(
        cold_after.disk_hits, cold_before.disk_hits,
        "nothing to hit on a cold cache"
    );

    let (warm_profiles, warm_report, warm_before, warm_after) = run();
    engine::configure(&EngineOptions::default());
    assert_eq!(
        warm_after.disk_recomputes, warm_before.disk_recomputes,
        "warm run must recompute nothing"
    );
    assert!(
        warm_after.disk_hits > warm_before.disk_hits,
        "warm run must serve from disk"
    );
    assert_eq!(cold_profiles, warm_profiles, "profiles must be bit-identical");
    assert_eq!(
        cold_report, warm_report,
        "deterministic run report must be byte-identical cold vs warm"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Disk-cache isolation across device backends: artifacts stored while
/// profiling under one manifest must never be served to another, even
/// for the same (module, trace, port) — the backend fingerprint is part
/// of the persistent key. Per backend, warm results stay byte-identical
/// to the cold run that populated its slice of the cache.
#[test]
fn disk_cache_isolates_backends() {
    use clara_repro::hal::{self, Backend as _};
    let _g = ENGINE_LOCK.lock().unwrap();
    let dir = tmp_dir("backend-iso");
    let modules = elements();
    let trace = clara_repro::trafgen::Trace::generate(&WorkloadSpec::large_flows(), 50, 5);
    let port = PortConfig::naive();
    engine::configure(&EngineOptions::builder().workers(1).cache_dir(&dir).build());
    let agilio = hal::builtin("agilio-cx").expect("builtin");
    let wimpy = hal::builtin("wimpy-onpath").expect("builtin");

    let run = |b: &'static clara_repro::hal::DeviceBackend| {
        Engine::new().clear_caches(); // memory only; artifacts survive
        let before = engine::EngineStats::snapshot();
        let profiles: Vec<_> = modules
            .iter()
            .map(|m| Engine::new().profile_cached_for(m, &trace, &port, b.nic(), b.fingerprint()))
            .collect();
        let after = engine::EngineStats::snapshot();
        (
            profiles,
            after.disk_hits - before.disk_hits,
            after.disk_recomputes - before.disk_recomputes,
        )
    };

    // Per module, a cold run stores two artifact kinds: the vendor
    // compile (keyed by module alone — compilation is device-independent
    // and legitimately shared across backends) and the costed profile
    // (keyed with the manifest fingerprint — never shared).
    let n = modules.len() as u64;
    let (agilio_cold, hits, recomputes) = run(agilio);
    assert_eq!(hits, 0, "cold cache has nothing to serve");
    assert_eq!(recomputes, 2 * n, "cold run computes compiles and profiles");

    // Same modules, same trace, same port — different manifest. The
    // compile artifacts hit (shared layer); every profile must be
    // recomputed. One extra hit here would mean wimpy-onpath silently
    // consumed an agilio-cx profile.
    let (wimpy_cold, hits, recomputes) = run(wimpy);
    assert_eq!(hits, n, "only the device-independent compiles may hit");
    assert_eq!(recomputes, n, "every profile is recomputed for the new device");

    // Warm re-runs per backend: all hits, no recomputes, bit-identical.
    let (agilio_warm, hits, recomputes) = run(agilio);
    assert_eq!(hits, 2 * n, "agilio-cx compiles and profiles served warm");
    assert_eq!(recomputes, 0, "warm agilio-cx run recomputes nothing");
    assert_eq!(agilio_cold, agilio_warm, "agilio-cx cold vs warm diverged");

    let (wimpy_warm, hits, recomputes) = run(wimpy);
    assert_eq!(hits, 2 * n, "wimpy-onpath compiles and profiles served warm");
    assert_eq!(recomputes, 0, "warm wimpy-onpath run recomputes nothing");
    assert_eq!(wimpy_cold, wimpy_warm, "wimpy-onpath cold vs warm diverged");

    // The two devices really produced different costed profiles (the
    // isolation above is not vacuous): compute-side deltas are nonzero.
    assert!(
        agilio_cold
            .iter()
            .zip(&wimpy_cold)
            .any(|(a, w)| (a.compute - w.compute).abs() > 0.0),
        "backends with different accelerator tables must cost differently"
    );
    engine::configure(&EngineOptions::default());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifacts_recompute_silently_and_fail_verify_loudly() {
    let _g = ENGINE_LOCK.lock().unwrap();
    let dir = tmp_dir("corrupt");
    let modules = elements();
    let workloads = [WorkloadSpec::large_flows()];
    let cfg = NicConfig::default();
    let port = PortConfig::naive();
    engine::configure(&EngineOptions::builder().workers(1).cache_dir(&dir).build());

    Engine::new().clear_caches();
    let cold = engine::profile_matrix(&modules, &workloads, 40, 9, &port, &cfg);

    // Flip one byte in every artifact's body (the header keeps its
    // original checksum, so every file now fails verification).
    let mut artifacts = 0;
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("clc") {
            continue;
        }
        artifacts += 1;
        let raw = std::fs::read_to_string(&path).expect("artifact readable");
        let (header, body) = raw.split_once('\n').expect("artifact has a header");
        let mut bytes = body.as_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] = if bytes[last] == b'}' { b')' } else { b'}' };
        let tampered = format!("{header}\n{}", String::from_utf8_lossy(&bytes));
        std::fs::write(&path, tampered).expect("rewrite artifact");
    }
    assert!(artifacts > 0, "cold run must have stored artifacts");

    // The explicit integrity check names every corrupt file and maps to
    // the dedicated error (CLI exit code 4).
    let summary = Engine::new()
        .verify_disk_cache()
        .expect("directory readable")
        .expect("a cache directory is configured");
    assert_eq!(summary.scanned, artifacts);
    assert_eq!(summary.valid, 0);
    assert_eq!(summary.corrupt.len(), artifacts);
    let err = summary.into_error().expect("corruption becomes an error");
    assert_eq!(err.exit_code(), 4);
    assert!(matches!(err, ClaraError::CacheCorrupt { .. }));

    // The engine itself never fails on corruption: it recomputes (and
    // re-stores) silently, with identical results.
    Engine::new().clear_caches();
    let before = engine::EngineStats::snapshot();
    let recomputed = engine::profile_matrix(&modules, &workloads, 40, 9, &port, &cfg);
    let after = engine::EngineStats::snapshot();
    assert_eq!(cold, recomputed, "recomputed profiles must match");
    assert!(
        after.disk_corrupt > before.disk_corrupt,
        "corruption must be counted"
    );
    assert!(
        after.disk_recomputes > before.disk_recomputes,
        "corrupt artifacts must be recomputed"
    );

    // The re-store healed the cache.
    let healed = Engine::new()
        .verify_disk_cache()
        .expect("directory readable")
        .expect("a cache directory is configured");
    assert_eq!(healed.valid, healed.scanned);
    assert!(healed.corrupt.is_empty());
    engine::configure(&EngineOptions::default());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clara_cache_dir_env_override_reaches_the_engine() {
    let _g = ENGINE_LOCK.lock().unwrap();
    let dir = tmp_dir("env");
    engine::configure(&EngineOptions::default());
    std::env::set_var("CLARA_CACHE_DIR", &dir);
    Engine::new().clear_caches();
    let modules = elements();
    let _ = engine::profile_matrix(
        &modules,
        &[WorkloadSpec::large_flows()],
        30,
        13,
        &PortConfig::naive(),
        &NicConfig::default(),
    );
    let stored = std::fs::read_dir(&dir)
        .map(|d| d.filter_map(Result::ok).count())
        .unwrap_or(0);
    std::env::remove_var("CLARA_CACHE_DIR");
    assert!(stored > 0, "CLARA_CACHE_DIR alone must enable the disk cache");
    std::fs::remove_dir_all(&dir).ok();
}

/// Two independently created handles address the same process-global
/// engine: caches, options, and stats are shared state, not per-handle.
/// (This replaces the deprecated free-function surface, which was removed
/// after its one release of grace.)
#[test]
fn separate_engine_handles_share_the_process_global_caches() {
    let _g = ENGINE_LOCK.lock().unwrap();
    engine::configure(&EngineOptions::default());
    let module = elements().remove(0);
    let trace = clara_repro::trafgen::Trace::generate(&WorkloadSpec::large_flows(), 40, 2);
    let port = PortConfig::naive();
    let cfg = NicConfig::default();
    Engine::new().clear_caches();
    let via_a = Engine::new().compile_cached(&module);
    let via_b = Engine::new().compile_cached(&module);
    assert_eq!(
        via_a.handler().total_compute(),
        via_b.handler().total_compute()
    );
    let wp_a = Engine::new().profile_cached(&module, &trace, &port, &cfg);
    let stats_before = Engine::new().stats();
    let wp_b = Engine::new().profile_cached(&module, &trace, &port, &cfg);
    let stats_after = Engine::new().stats();
    assert_eq!(wp_a, wp_b);
    assert!(
        stats_after.profile_hits > stats_before.profile_hits,
        "the second handle's lookup must hit the first handle's cache entry"
    );
    assert_eq!(stats_after.profile_misses, stats_before.profile_misses);
}
