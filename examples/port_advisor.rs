//! Port advisor: sweep the whole NF corpus and print a porting report.
//!
//! Run with: `cargo run --release --example port_advisor`
//!
//! This is the "SmartNIC team" scenario the paper's introduction
//! motivates: a developer has a directory of legacy Click NFs and wants
//! to know, before porting anything, which NFs will benefit from which
//! porting strategies. The advisor trains Clara once and reports per-NF
//! recommendations plus the projected gain of a Clara port over a naive
//! port.

use clara_repro::clara::{Clara, ClaraConfig};
use clara_repro::nicsim::{self, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

fn main() {
    println!("=== Clara port advisor: full corpus report ===\n");
    let clara = Clara::train(&ClaraConfig::fast(13)).expect("training degraded");
    let spec = WorkloadSpec::small_flows().with_flows(4096);
    let trace = Trace::generate(&spec, 2500, 99);
    let cfg = clara.nic.clone();

    println!(
        "{:<12} {:>9} {:>5} {:>7} {:>6}  {:<28} projected gain",
        "NF", "pred.cyc", "mem", "accel", "cores", "placement"
    );
    for e in clara_repro::click::corpus() {
        let insights = clara
            .analyze(&e.module, &trace)
            .expect("corpus element analyzes cleanly");
        let accel = insights
            .accel
            .as_ref()
            .map_or("-".to_string(), |(c, _)| c.name().to_string());
        let placement: Vec<String> = insights
            .placement
            .iter()
            .filter(|(_, l)| **l != nicsim::MemLevel::Emem)
            .map(|(g, l)| {
                format!(
                    "{}→{}",
                    e.module
                        .global(*g)
                        .map_or("?", |d| &d.name[..d.name.len().min(8)]),
                    l.name()
                )
            })
            .collect();
        let cores = insights.suggested_cores;
        let naive = nicsim::simulate(&e.module, &trace, &PortConfig::naive(), &cfg, cores);
        let tuned = nicsim::simulate(&e.module, &trace, &insights.port_config(), &cfg, cores);
        let gain = tuned.throughput_mpps / naive.throughput_mpps;
        println!(
            "{:<12} {:>9.0} {:>5} {:>7} {:>6}  {:<28} {:.2}x thpt, {:+.0}% lat",
            e.name(),
            insights.predicted_compute,
            insights.counted_mem,
            accel,
            cores,
            placement.join(" "),
            gain,
            (tuned.latency_us / naive.latency_us - 1.0) * 100.0
        );
    }
    println!("\n(projected gain = Clara port vs naive port on the simulated NIC, same cores)");
}
