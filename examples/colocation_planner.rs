//! Colocation planner: pick friendly NF pairs for one SmartNIC.
//!
//! Run with: `cargo run --release --example colocation_planner`
//!
//! Scenario (paper Section 4.5): an operator must deploy four NFs across
//! two SmartNICs, two NFs per NIC. Which pairing minimizes interference?
//! The planner trains Clara's colocation ranker on synthesized NFs, then
//! scores the three possible pairings of the real NFs and validates the
//! choice against colocated simulation.

use clara_repro::clara::coloc::{
    measure_pair, synth_profiles, training_groups, ColocRanker, RankObjective,
};
use clara_repro::nicsim::{NicConfig, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

fn main() {
    println!("=== Clara colocation planner ===\n");
    let cfg = NicConfig {
        emem_cache_bytes: 64 * 1024,
        ..NicConfig::default()
    };

    println!("training the ranking model on synthesized NF pairs...");
    let pool = synth_profiles(48, &cfg, 5);
    let groups = training_groups(&pool, &cfg, RankObjective::TotalThroughput, 160, 5, 6);
    let ranker = ColocRanker::train(&groups, RankObjective::TotalThroughput);

    // The four production NFs.
    let names = ["mazunat", "dnsproxy", "udpcount", "webgen"];
    let spec = WorkloadSpec::small_flows().with_flows(8192);
    let trace = Trace::generate(&spec, 4000, 17);
    let port = PortConfig::naive();
    let wps: Vec<_> = names
        .iter()
        .map(|n| {
            let e = clara_repro::click::corpus()
                .into_iter()
                .find(|e| e.name() == *n)
                .expect("known element");
            clara_repro::nicsim::profile_workload(&e.module, &trace, &port, &cfg, |_| {})
        })
        .collect();

    // Rank all six candidate pairs by friendliness (ranking scores are
    // ordinal: they order pairs but do not add up across deployments).
    let mut pair_rank: std::collections::BTreeMap<(usize, usize), usize> = Default::default();
    {
        let mut scored: Vec<((usize, usize), f64)> = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                scored.push(((i, j), ranker.score(&wps[i], &wps[j], &cfg, &port)));
            }
        }
        scored.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));
        println!("\npairs by predicted friendliness:");
        for (rank, ((i, j), score)) in scored.iter().enumerate() {
            println!("  #{}: {}+{} ({score:+.3})", rank + 1, names[*i], names[*j]);
            pair_rank.insert((*i, *j), rank);
        }
    }

    // Choose the deployment whose *worst* pair ranks best: an unfriendly
    // pair on either NIC drags the whole deployment down.
    let splits = [((0, 1), (2, 3)), ((0, 2), (1, 3)), ((0, 3), (1, 2))];
    println!("\ncandidate deployments (two NICs, two NFs each):");
    let mut best: Option<(usize, usize)> = None;
    for (si, (p1, p2)) in splits.iter().enumerate() {
        let worst = pair_rank[p1].max(pair_rank[p2]);
        let measured = measure_pair(
            &wps[p1.0],
            &wps[p1.1],
            &cfg,
            &port,
            RankObjective::TotalThroughput,
        ) + measure_pair(
            &wps[p2.0],
            &wps[p2.1],
            &cfg,
            &port,
            RankObjective::TotalThroughput,
        );
        println!(
            "  NIC1=({}+{}) NIC2=({}+{}): worst pair rank #{}, measured retention {:.3}",
            names[p1.0],
            names[p1.1],
            names[p2.0],
            names[p2.1],
            worst + 1,
            measured
        );
        if best.is_none_or(|(_, w)| worst < w) {
            best = Some((si, worst));
        }
    }
    let (si, _) = best.expect("three candidates");
    let ((a, b), (c, d)) = splits[si];
    println!(
        "\nClara recommends: NIC1 = {} + {}, NIC2 = {} + {}",
        names[a], names[b], names[c], names[d]
    );
}
