//! NIC explorer: inspect what the substrate layers produce for one NF.
//!
//! Run with: `cargo run --release --example nic_explorer -- [element]`
//!
//! Prints, for the chosen element (default `aggcounter`):
//! - its NIR (the uniform IR Clara analyzes),
//! - the vendor compiler's micro-engine assembly with per-block counts,
//! - an execution trace summary for one packet,
//! - the workload profile the performance model consumes.

use clara_repro::click::Machine;
use clara_repro::nicsim::{self, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "aggcounter".into());
    let e = clara_repro::click::corpus()
        .into_iter()
        .find(|e| e.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown element `{name}`; try one of:");
            for e in clara_repro::click::corpus() {
                eprintln!("  {}", e.name());
            }
            std::process::exit(1);
        });

    println!("=== {} — {} ===\n", e.name(), e.meta.description);

    println!("--- NIR (uniform IR) ---");
    print!("{}", clara_repro::ir::print::module(&e.module));

    println!("\n--- vendor compiler output (micro-engine assembly) ---");
    let nic = clara_repro::nfcc::compile_module(&e.module);
    print!("{}", clara_repro::nfcc::print_asm(nic.handler()));

    println!("\n--- one packet through the interpreter ---");
    let spec = WorkloadSpec::large_flows();
    let trace = Trace::generate(&spec, 1, 3);
    let mut machine = Machine::new(&e.module).expect("verifies");
    let t = machine.run(&trace.pkts[0]).expect("runs");
    println!("interpreted {} IR steps", t.steps);
    println!("block visits: {:?}", t.block_visits());
    println!(
        "stateful accesses: {}, API events: {}",
        t.state_access_count(None),
        t.api_events().count()
    );

    println!("\n--- workload profile (2000 packets, naive port) ---");
    let trace = Trace::generate(&spec, 2000, 3);
    let cfg = nicsim::NicConfig::default();
    let port = PortConfig::naive();
    let wp = nicsim::profile_workload(&e.module, &trace, &port, &cfg, |_| {});
    println!("compute cycles/pkt: {:.1}", wp.compute);
    println!("channel demand/pkt: {:?}", wp.channel_demand(&cfg, &port));
    for (g, a) in &wp.global_access {
        let gname = e.module.global(*g).map_or("?", |d| d.name.as_str());
        println!(
            "  {gname}: {a:.2} accesses/pkt, working set {} B",
            wp.working_set.get(g).copied().unwrap_or(0)
        );
    }
    let p = nicsim::solve_perf(&wp, &cfg, &port, 16);
    println!(
        "\nat 16 cores: {:.2} Mpps, {:.2} us latency",
        p.throughput_mpps, p.latency_us
    );
}
