//! Quickstart: analyze one NF with Clara and act on the insights.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This walks the full paper pipeline on one element:
//! 1. train Clara on synthesized corpora (instruction prediction,
//!    algorithm identification, scale-out model);
//! 2. analyze the *unported* `cmsketch` NF against a workload trace;
//! 3. turn the insights into a port configuration and compare it with a
//!    naive port on the simulated SmartNIC.

use clara_repro::clara::{Clara, ClaraConfig};
use clara_repro::nicsim::{self, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

fn main() {
    println!("=== Clara quickstart ===\n");

    // 1. Train. `fast` keeps this example snappy; benchmarks use `full`.
    println!("training Clara (synthesized corpora)...");
    let clara = Clara::train(&ClaraConfig::fast(7)).expect("training degraded");

    // 2. Analyze an unported NF against a workload.
    let nf = clara_repro::click::elements::cmsketch();
    let spec = WorkloadSpec::large_flows();
    let trace = Trace::generate(&spec, 2000, 42);
    let insights = clara
        .analyze(&nf.module, &trace)
        .expect("corpus element analyzes cleanly");

    println!("\ninsights for `{}`:", nf.name());
    println!(
        "  predicted NIC compute instructions / packet: {:.0}",
        insights.predicted_compute
    );
    println!(
        "  counted memory accesses (IR): {} ({:.1}% fidelity vs vendor compiler)",
        insights.counted_mem, insights.mem_count_accuracy
    );
    match &insights.accel {
        Some((class, region)) => println!(
            "  accelerator opportunity: {} over {} loop blocks",
            class.name(),
            region.len()
        ),
        None => println!("  accelerator opportunity: none"),
    }
    println!("  suggested cores: {}", insights.suggested_cores);
    for (g, level) in &insights.placement {
        let name = nf.module.global(*g).map_or("?", |d| d.name.as_str());
        println!("  place {name} in {}", level.name());
    }

    // 3. Port it both ways and compare on the simulated NIC.
    let cfg = clara.nic.clone();
    let cores = insights.suggested_cores;
    let naive = nicsim::simulate(&nf.module, &trace, &PortConfig::naive(), &cfg, cores);
    let tuned = nicsim::simulate(&nf.module, &trace, &insights.port_config(), &cfg, cores);
    println!("\nsimulated at {cores} cores:");
    println!(
        "  naive port: {:.2} Mpps, {:.2} us",
        naive.throughput_mpps, naive.latency_us
    );
    println!(
        "  Clara port: {:.2} Mpps, {:.2} us  ({:.2}x throughput, {:.0}% lower latency)",
        tuned.throughput_mpps,
        tuned.latency_us,
        tuned.throughput_mpps / naive.throughput_mpps,
        (1.0 - tuned.latency_us / naive.latency_us) * 100.0
    );
}
