//! Service chain: port a whole NF pipeline to one SmartNIC.
//!
//! Run with: `cargo run --release --example service_chain`
//!
//! Scenario: an edge box runs `firewall → mazunat → flowstats` as a
//! pipeline. We push traffic through the chain functionally (header
//! rewrites and drops propagate stage to stage), profile the combined
//! per-packet cost, place every stage's state with Clara's ILP, and
//! compare naive vs tuned chain deployments across core counts.

use clara_repro::clara::partial::{best_split, HostConfig};
use clara_repro::clara::placement::{self, plan::suggest_split};
use clara_repro::click::{elements, Chain};
use clara_repro::nicsim::{self, NicConfig, PortConfig};
use clara_repro::trafgen::{Trace, WorkloadSpec};

fn main() {
    println!("=== service chain: firewall -> mazunat -> flowstats ===\n");
    let fw = elements::firewall();
    let nat = elements::mazunat();
    let stats = elements::flowstats();
    let spec = WorkloadSpec {
        tcp_ratio: 1.0,
        syn_ratio: 0.01,
        ..WorkloadSpec::small_flows().with_flows(64)
    };
    let trace = Trace::generate(&spec, 8000, 11);
    let cfg = NicConfig::default();

    // Functional run: admit every flow at the firewall, then watch the
    // chain behave.
    let mut chain = Chain::new([&fw.module, &nat.module, &stats.module]).expect("verifies");
    let pfx = u64::from(trace.pkts[0].flow.src_ip >> 12);
    chain
        .stage_mut(0)
        .expect("stage 0")
        .state
        .store(nf_ir::GlobalId(1), 0, 0, 4, pfx);
    let mut dropped = 0usize;
    for p in &trace.pkts {
        let r = chain.run(p).expect("runs");
        if r.dropped_at.is_some() {
            dropped += 1;
        }
    }
    println!(
        "functional run: {} packets, {} dropped by the chain",
        trace.pkts.len(),
        dropped
    );
    let exports = chain
        .stage_mut(2)
        .expect("stage 2")
        .state
        .load(nf_ir::GlobalId(2), 0, 0, 4);
    println!("flowstats exported {exports} records\n");

    // Combined profile and per-stage ILP placement.
    let naive = PortConfig::naive();
    let modules = [&fw.module, &nat.module, &stats.module];
    let ports = [&naive, &naive, &naive];
    let install_rule = |chain: &mut Chain| {
        chain
            .stage_mut(0)
            .expect("stage 0")
            .state
            .store(nf_ir::GlobalId(1), 0, 0, 4, pfx);
    };
    let wp = nicsim::profile_chain(&modules, &trace, &ports, &cfg, install_rule);
    println!(
        "chain cost: {:.0} compute cycles/pkt, {:.1} state accesses/pkt",
        wp.compute,
        wp.global_access.values().sum::<f64>()
    );

    // Clara placement per stage (profiled individually).
    // Build a combined port over the chain's namespaced global ids so the
    // performance model maps every stage's state to its chosen level.
    let mut combined = PortConfig::naive();
    for (i, m) in modules.iter().enumerate() {
        let stage_wp = nicsim::profile_workload(m, &trace, &naive, &cfg, |_| {});
        let map = placement::plan::suggest_placement(m, &stage_wp, &cfg).expect("feasible");
        println!(
            "stage {i} ({}) placement: {}",
            m.name,
            map.iter()
                .map(|(g, l)| format!(
                    "{}→{}",
                    m.global(*g).map_or("?", |d| d.name.as_str()),
                    l.name()
                ))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for (g, l) in map {
            combined = combined.place(nicsim::chain_global(i, g), l);
        }
    }

    println!("\ncores   naive Mpps / us      Clara Mpps / us");
    for cores in [8u32, 16, 24, 32, 48, 60] {
        let a = nicsim::solve_perf(&wp, &cfg, &naive, cores);
        let b = nicsim::solve_perf(&wp, &cfg, &combined, cores);
        println!(
            "{cores:>5}   {:>6.2} / {:<6.2}     {:>6.2} / {:<6.2}",
            a.throughput_mpps, a.latency_us, b.throughput_mpps, b.latency_us
        );
    }

    // Partial offloading (paper §6): which chain prefix belongs on the NIC?
    println!("\npartial offloading (NIC prefix | host suffix, 40 NIC cores):");
    let host = HostConfig::default();
    let plans = suggest_split(&modules, &trace, &ports, &cfg, 40, &host, install_rule);
    for p in &plans {
        let (on_nic, on_host) = (
            chain.names()[..p.nic_stages].join("+"),
            chain.names()[p.nic_stages..].join("+"),
        );
        println!(
            "  [{:<28}|{:<28}]  {:>6.2} Mpps  {:>5.2} us  {} host cores",
            on_nic, on_host, p.throughput_mpps, p.latency_us, p.host_cores_needed
        );
    }
    if let Some(best) = best_split(&plans, 0.9) {
        println!(
            "\nClara recommends offloading {} of {} stages (frees {} of {} host cores)",
            best.nic_stages,
            modules.len(),
            host.cores - best.host_cores_needed,
            host.cores
        );
    }
}
